"""Per-span breakdown report over a trace JSONL event log.

Reads the rotated JSONL log a :class:`repro.trace.Tracer` writes
(``REPRO_TRACE_LOG=...`` or ``Tracer(jsonl_path=...)``), aggregates
spans by ``(category, name)`` and prints a breakdown table — count,
total/mean/max wall seconds, total simulated ledger seconds, error
count. ``--chrome out.json`` additionally reconstructs the traces and
writes a Chrome ``trace_event`` document (load in ``about://tracing``
or https://ui.perfetto.dev for a flamegraph).

Usage::

    PYTHONPATH=src python scripts/trace_report.py /tmp/trace.jsonl
    PYTHONPATH=src python scripts/trace_report.py /tmp/trace.jsonl \
        --trace t00000003 --chrome /tmp/flame.json

Rotated backups (``<path>.1`` … ``.N``) next to the given file are
included automatically, oldest first, so the report covers the whole
retained window.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple


def discover_files(path: str) -> List[str]:
    """The log plus its rotated backups, oldest first."""
    backups = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        backups.append(f"{path}.{index}")
        index += 1
    ordered = list(reversed(backups))
    if os.path.exists(path):
        ordered.append(path)
    return ordered


def load_records(path: str) -> List[Dict[str, object]]:
    files = discover_files(path)
    if not files:
        raise FileNotFoundError(f"no trace log at {path!r}")
    records: List[Dict[str, object]] = []
    for name in files:
        with open(name, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def span_records(
    records: List[Dict[str, object]], trace_id: Optional[str]
) -> List[Dict[str, object]]:
    spans = [r for r in records if r.get("type") == "span"]
    if trace_id is not None:
        spans = [r for r in spans if r.get("trace_id") == trace_id]
    return spans


def aggregate(
    spans: List[Dict[str, object]]
) -> "OrderedDict[Tuple[str, str], Dict[str, float]]":
    """Per ``(category, name)`` totals, ordered by total wall seconds."""
    rows: Dict[Tuple[str, str], Dict[str, float]] = {}
    for span in spans:
        key = (str(span.get("category")), str(span.get("name")))
        row = rows.setdefault(key, {
            "count": 0, "seconds": 0.0, "max_seconds": 0.0,
            "sim_seconds": 0.0, "errors": 0,
        })
        duration = float(span.get("duration") or 0.0)
        row["count"] += 1
        row["seconds"] += duration
        row["max_seconds"] = max(row["max_seconds"], duration)
        row["sim_seconds"] += float(span.get("sim_seconds") or 0.0)
        status = str(span.get("status") or "ok")
        if status != "ok":
            row["errors"] += 1
    ordered = OrderedDict(
        sorted(rows.items(), key=lambda item: -item[1]["seconds"]))
    return ordered


def render(rows: "OrderedDict[Tuple[str, str], Dict[str, float]]") -> str:
    header = ("category", "span", "count", "total(s)", "mean(ms)",
              "max(ms)", "sim(s)", "errors")
    table = [header]
    for (category, name), row in rows.items():
        mean_ms = 1e3 * row["seconds"] / max(row["count"], 1)
        table.append((
            category, name, str(int(row["count"])),
            f"{row['seconds']:.3f}", f"{mean_ms:.2f}",
            f"{row['max_seconds'] * 1e3:.2f}",
            f"{row['sim_seconds']:.3f}", str(int(row["errors"])),
        ))
    widths = [
        max(len(line[column]) for line in table)
        for column in range(len(header))
    ]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width) if column < 2 else cell.rjust(width)
            for column, (cell, width) in enumerate(zip(line, widths))))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def rebuild_traces(
    records: List[Dict[str, object]], trace_id: Optional[str]
) -> List[Dict[str, object]]:
    """Regroup span records into ``Trace.to_dict()``-shaped dicts."""
    names = {
        r.get("trace_id"): r.get("name", "trace")
        for r in records if r.get("type") == "trace"
    }
    traces: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    for span in span_records(records, trace_id):
        tid = str(span.get("trace_id"))
        trace = traces.setdefault(tid, {
            "trace_id": tid,
            "name": names.get(tid, "trace"),
            "spans": [],
        })
        trace["spans"].append(span)
    return list(traces.values())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-span breakdown over a repro.trace JSONL log.")
    parser.add_argument("log", help="path to the JSONL trace log")
    parser.add_argument(
        "--trace", default=None, metavar="TRACE_ID",
        help="restrict to one trace id (e.g. t00000003)")
    parser.add_argument(
        "--chrome", default=None, metavar="OUT",
        help="also write a Chrome trace_event JSON document to OUT")
    args = parser.parse_args(argv)

    records = load_records(args.log)
    spans = span_records(records, args.trace)
    if not spans:
        scope = f" for trace {args.trace!r}" if args.trace else ""
        print(f"no span records{scope} in {args.log}", file=sys.stderr)
        return 1

    traces = {s.get("trace_id") for s in spans}
    total = sum(float(s.get("duration") or 0.0) for s in spans
                if s.get("parent_id") is None)
    print(f"{len(spans)} spans across {len(traces)} traces, "
          f"{total:.3f}s of root wall time")
    print()
    print(render(aggregate(spans)))

    if args.chrome:
        from repro.trace import chrome_trace

        document = chrome_trace(rebuild_traces(records, args.trace))
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        print(f"\nchrome trace ({len(document['traceEvents'])} events) "
              f"-> {args.chrome}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
