"""Collect the paper-scale experiment results.

Runs every reproduced table/figure at the recorded scale, writes the
rendered tables to ``results/experiments_output.txt``, and persists
every query report as JSON (``results/reports.json``, via
``QueryReport.to_json``) so later analysis can reload the raw numbers
without re-running the sweeps.

``--workers N`` (or ``REPRO_WORKERS=N``) fans the parameter sweeps
(fig5/6/7/9, table8) across a process pool: Phase 1 is still built
once per video, workers run only Phase 2, and reports are identical
to a serial run up to deterministic-timing normalization.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import List, Optional, Tuple

from repro.experiments import (
    ExperimentScale,
    corpus_federated,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    streaming_latency,
    table7,
    table8,
)
from repro.experiments.runner import ExperimentRecord, counting_videos


def collect_reports(
    section: str, records: Optional[List[ExperimentRecord]], store: list
) -> None:
    """Append the JSON form of every record that kept its full report."""
    for record in records or []:
        if record.report is None:
            continue
        store.append({
            "section": section,
            "method": record.method,
            "report": record.report.to_dict(),
        })


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for the parameter sweeps "
             "(default: REPRO_WORKERS, else serial)")
    args = parser.parse_args()
    workers = args.workers

    scale = ExperimentScale.paper()
    os.makedirs("results", exist_ok=True)
    out_path = os.path.join("results", "experiments_output.txt")
    reports_path = os.path.join("results", "reports.json")

    # Parameter sweeps run on a three-video subset to bound wall time;
    # fig4 / table8 cover all five videos.
    sweep_videos = counting_videos(scale)[:3]

    def records_main(module, **kwargs) -> Tuple[str, list]:
        records = module.run(scale, **kwargs)
        output = module.render(records)
        print(output)
        return output, records

    sections = [
        ("table7", lambda: (table7.main(scale), None)),
        ("fig4", lambda: records_main(fig4)),
        ("table8", lambda: records_main(table8, workers=workers)),
        ("fig5", lambda: records_main(
            fig5, videos=sweep_videos, workers=workers)),
        ("fig6", lambda: records_main(
            fig6, videos=sweep_videos, workers=workers)),
        ("fig7", lambda: records_main(
            fig7, videos=sweep_videos, workers=workers)),
        ("fig8", lambda: records_main(fig8)),
        ("fig9", lambda: records_main(fig9, workers=workers)),
        # Streaming measurements carry their own row type (per-append
        # live-vs-batch cost), so only the rendered table is persisted.
        ("streaming", lambda: (streaming_latency.main(scale), None)),
        # Federated corpus: one global top-k over a fleet of counting
        # videos, with the cross-shard budget allocation per shard.
        ("corpus", lambda: (
            corpus_federated.main(scale, workers=workers), None)),
    ]
    all_reports: list = []
    with open(out_path, "w") as handle:
        for name, runner in sections:
            start = time.time()
            print(f"=== {name} ===", flush=True)
            try:
                output, records = runner()
                collect_reports(name, records, all_reports)
            except Exception as exc:  # keep collecting on failure
                output = f"FAILED: {exc!r}"
                print(output, flush=True)
            elapsed = time.time() - start
            handle.write(f"=== {name} (wall {elapsed:.0f}s) ===\n")
            handle.write(output + "\n\n")
            handle.flush()
            # Rewrite the report dump after every section so an
            # interrupted multi-hour run keeps what it already paid for.
            with open(reports_path, "w") as reports_handle:
                json.dump(all_reports, reports_handle, indent=1)
            print(f"--- {name} done in {elapsed:.0f}s", flush=True)

    print(f"wrote {len(all_reports)} query reports to {reports_path}")


if __name__ == "__main__":
    main()
