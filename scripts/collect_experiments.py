"""Collect the paper-scale experiment results for EXPERIMENTS.md.

Runs every reproduced table/figure at the recorded scale and writes the
rendered tables to ``results/experiments_output.txt``.
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import (
    ExperimentScale,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table7,
    table8,
)


def main() -> None:
    scale = ExperimentScale.paper()
    os.makedirs("results", exist_ok=True)
    out_path = os.path.join("results", "experiments_output.txt")

    # Parameter sweeps run on a three-video subset to bound wall time;
    # fig4 / table8 cover all five videos.
    from repro.experiments.runner import counting_videos

    sweep_videos = None

    def fig5_main(scale):
        output = fig5.render(fig5.run(scale, videos=sweep_videos))
        print(output)
        return output

    def fig6_main(scale):
        output = fig6.render(fig6.run(scale, videos=sweep_videos))
        print(output)
        return output

    def fig7_main(scale):
        output = fig7.render(fig7.run(scale, videos=sweep_videos))
        print(output)
        return output

    sweep_videos = counting_videos(scale)[:3]

    sections = [
        ("table7", table7.main),
        ("fig4", fig4.main),
        ("table8", table8.main),
        ("fig5", fig5_main),
        ("fig6", fig6_main),
        ("fig7", fig7_main),
        ("fig8", fig8.main),
        ("fig9", fig9.main),
    ]
    with open(out_path, "w") as handle:
        for name, runner in sections:
            start = time.time()
            print(f"=== {name} ===", flush=True)
            try:
                output = runner(scale)
            except Exception as exc:  # keep collecting on failure
                output = f"FAILED: {exc!r}"
                print(output, flush=True)
            elapsed = time.time() - start
            handle.write(f"=== {name} (wall {elapsed:.0f}s) ===\n")
            handle.write(output + "\n\n")
            handle.flush()
            print(f"--- {name} done in {elapsed:.0f}s", flush=True)


if __name__ == "__main__":
    main()
