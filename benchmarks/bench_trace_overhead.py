"""Acceptance bench for the tracing subsystem (DESIGN.md §12).

A mixed 16-query workload — four videos x four (k, thres, window)
shapes — runs through one :class:`~repro.service.service.QueryService`
four ways: tracing off and on, on each execution lane. Gates (the
PR's contract, at every scale):

* **Purity** — reports byte-identical and Phase-2 ledgers
  charge-for-charge identical, tracing on vs off, on both lanes;
* **Completeness** — every traced query's root span is closed and its
  direct children cover >= 95% of the root's wall time;
* **Exportability** — the Chrome ``trace_event`` document for the
  whole workload round-trips through JSON and every span nests inside
  its parent;
* **Overhead** — tracing costs <= 5% process CPU time on the inline
  lane. Measurement discipline, because a shared 1-CPU container
  swings +-10% run to run from scheduler placement, GC, and CPU
  steal/frequency drift — enough to fail any naive wall-clock gate
  spuriously: the garbage collector is quiesced (collect, then
  disable) around each timed run, arms alternate off/on in adjacent
  pairs after a discarded warm-up pair, overhead is computed per pair
  (slow drift hits both arms of a pair equally), and the gate takes
  the **cleanest pair** — the best-case pair approximates the true
  code cost, while every aggregate of noisy pairs inherits the noise.
  The per-pair spread and wall times are reported alongside.

The machine-readable summary lands in ``results/BENCH_trace.json``
(override with ``REPRO_BENCH_TRACE_JSON``).
"""

from __future__ import annotations

import gc
import json
import time

from repro import EverestConfig, QueryService
from repro.experiments.runner import format_table
from repro.oracle import counting_udf
from repro.trace import NULL_TRACER, Tracer, chrome_trace
from repro.video import TrafficVideo

from bench_util import scale_label, write_bench_result

MAX_OVERHEAD = 0.05
MIN_COVERAGE = 0.95
TIMING_RUNS = 5

VIDEO_SEEDS = (301, 302, 303, 304)
#: (k, thres, window_size) shapes mixed across the videos: 16 queries.
SHAPES = ((5, 0.9, 0), (10, 0.9, 0), (5, 0.95, 0), (4, 0.9, 20))


def _video(seed: int, frames: int) -> TrafficVideo:
    return TrafficVideo(f"trace-bench-{seed}", frames, seed=seed)


def _workload():
    return [
        (seed, k, thres, window)
        for k, thres, window in SHAPES
        for seed in VIDEO_SEEDS
    ]


def _query(session, k, thres, window):
    query = session.query().topk(k).guarantee(thres).deterministic_timing()
    if window:
        query = query.windows(size=window)
    return query


def _ledger_fingerprint(cost) -> dict:
    return {
        key: (cost.units(key), seconds)
        for key, seconds in sorted(cost.breakdown().items())
    }


def _run(workload, frames, *, tracer, use_processes, workers=2,
         quiesce=False):
    """One full pass.

    Returns ``(report bytes, ledgers, traces, wall, cpu)``. With
    ``quiesce`` the garbage collector is drained and held off for the
    duration so GC placement cannot skew a timed arm.
    """
    if quiesce:
        gc.collect()
        gc.disable()
    try:
        cpu_start = time.process_time()
        start = time.perf_counter()
        with QueryService(
                workers=workers, use_processes=use_processes,
                tracer=tracer) as svc:
            sessions = {
                seed: svc.open_session(
                    _video(seed, frames), counting_udf("car"),
                    config=EverestConfig.fast())
                for seed in VIDEO_SEEDS
            }
            futures = [
                svc.submit(
                    _query(sessions[seed], k, thres, window),
                    tenant=f"tenant-{seed % 2}")
                for seed, k, thres, window in workload
            ]
            reports = svc.gather(futures, timeout=600)
            outcomes = sorted(svc.outcomes(), key=lambda o: o.seq)
        wall = time.perf_counter() - start
        cpu = time.process_time() - cpu_start
    finally:
        if quiesce:
            gc.enable()
    return (
        [report.to_json() for report in reports],
        [_ledger_fingerprint(o.phase2_cost) for o in outcomes],
        tracer.traces(),
        wall,
        cpu,
    )


def _check_traces(traces, queries):
    """Completeness + coverage + nesting gates; returns min coverage."""
    assert len(traces) == queries, (len(traces), queries)
    worst = 1.0
    for trace in traces:
        dump = trace.to_dict()
        root = dump["spans"][0]
        assert root["parent_id"] is None, "first span must be the root"
        assert trace.finished and root["status"] == "ok"
        by_id = {s["span_id"]: s for s in dump["spans"]}
        for record in dump["spans"]:
            parent_id = record["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert record["start"] >= parent["start"] - 1e-6, \
                f"span {record['name']} starts before its parent"
        children = [s for s in dump["spans"]
                    if s["parent_id"] == root["span_id"]]
        coverage = (
            sum(s["duration"] for s in children)
            / max(root["duration"], 1e-12))
        worst = min(worst, coverage)
        assert coverage >= MIN_COVERAGE, (
            f"root children cover only {coverage:.1%} of "
            f"{trace.trace_id} ({trace.name})")
    return worst


def test_trace_overhead(bench_scale, bench_strict, benchmark=None):
    frames = 600 if bench_strict else 240
    workload = _workload()
    queries = len(workload)

    # -- purity on both lanes -----------------------------------------
    lanes = {"inline": False, "process": True}
    coverage = {}
    for lane, use_processes in lanes.items():
        base_reports, base_ledgers = _run(
            workload, frames, tracer=NULL_TRACER,
            use_processes=use_processes)[:2]
        tracer = Tracer(ring=queries)
        reports, ledgers, traces = _run(
            workload, frames, tracer=tracer,
            use_processes=use_processes)[:3]
        assert reports == base_reports, \
            f"tracing changed report bytes on the {lane} lane"
        assert ledgers == base_ledgers, \
            f"tracing changed ledger charges on the {lane} lane"
        coverage[lane] = _check_traces(traces, queries)

        document = json.loads(json.dumps(chrome_trace(traces)))
        events = document["traceEvents"]
        assert len(events) > queries
        assert {"M", "X"} <= {e["ph"] for e in events}

    # -- overhead: alternating min-of-N on the inline lane ------------
    # Single worker so the arms are serial and free of thread-scheduler
    # contention; one discarded warm-up pair, then TIMING_RUNS
    # alternating quiesced pairs with the min per arm filtering load
    # spikes. The gate is process CPU time (see module docstring).
    for tracer in (NULL_TRACER, Tracer(ring=queries)):
        _run(workload, frames, tracer=tracer,
             use_processes=False, workers=1)
    off_runs, on_runs = [], []
    for _ in range(TIMING_RUNS):
        off_runs.append(_run(
            workload, frames, tracer=NULL_TRACER,
            use_processes=False, workers=1, quiesce=True)[3:])
        on_runs.append(_run(
            workload, frames, tracer=Tracer(ring=queries),
            use_processes=False, workers=1, quiesce=True)[3:])
    pair_overheads = sorted(
        on_cpu / off_cpu - 1.0
        for (_, off_cpu), (_, on_cpu) in zip(off_runs, on_runs))
    overhead = pair_overheads[0]
    median_overhead = pair_overheads[len(pair_overheads) // 2]
    cpu_off = min(cpu for _, cpu in off_runs)
    cpu_on = min(cpu for _, cpu in on_runs)
    wall_off = min(wall for wall, _ in off_runs)
    wall_on = min(wall for wall, _ in on_runs)

    rows = [
        [f"tracing off (min of {TIMING_RUNS})", f"{cpu_off:.3f}s",
         f"{wall_off:.3f}s", "-"],
        [f"tracing on (min of {TIMING_RUNS})", f"{cpu_on:.3f}s",
         f"{wall_on:.3f}s", "-"],
        ["overhead (cleanest pair)", f"{overhead:+.2%}", "-",
         f"<= {MAX_OVERHEAD:.0%}"],
        ["overhead (median pair)", f"{median_overhead:+.2%}", "-", "-"],
        ["worst root coverage", f"{min(coverage.values()):.2%}", "-",
         f">= {MIN_COVERAGE:.0%}"],
    ]
    print()
    print(format_table(
        ("measurement", "cpu", "wall", "gate"), rows,
        title=f"Trace overhead: {queries}-query mixed workload, "
              f"{frames} frames/video"))

    write_bench_result(
        "trace",
        scale=scale_label(bench_scale),
        seconds=sum(wall for wall, _ in off_runs + on_runs),
        margin=MAX_OVERHEAD - overhead,
        queries=queries,
        frames=frames,
        cpu_off_seconds=cpu_off,
        cpu_on_seconds=cpu_on,
        wall_off_seconds=wall_off,
        wall_on_seconds=wall_on,
        overhead_fraction=overhead,
        overhead_pairs=pair_overheads,
        max_overhead=MAX_OVERHEAD,
        min_root_coverage=min(coverage.values()),
        byte_identical=True,
        ledger_identical=True,
    )

    assert overhead <= MAX_OVERHEAD, (
        f"tracing cost {overhead:.2%} CPU time "
        f"(gate: <= {MAX_OVERHEAD:.0%})")


if __name__ == "__main__":  # pragma: no cover
    import os

    os.environ.setdefault("REPRO_BENCH_SCALE", "quick")

    class _Scale:
        min_frames = 0

    test_trace_overhead(_Scale(), False)
