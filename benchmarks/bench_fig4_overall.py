"""Bench for Figure 4: the overall comparison under the default setting.

Regenerates all four panels (speedup, precision, rank distance, score
error) for Everest and every baseline on the five counting videos, and
asserts the paper's qualitative shape:

* Everest clearly beats scan-and-test while keeping precision >= 0.9;
* HOG / TinyYOLO / CMDN-only give no guarantee (precision below
  Everest's) or run slower than Everest;
* select-and-topk reaches precision but pays near-scan cost.
"""

import numpy as np

from repro.experiments import fig4

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig4_overall(bench_scale, bench_strict, benchmark):
    records = run_once(benchmark, fig4.run, bench_scale)
    print()
    print(fig4.render(records))
    write_bench_result(
        "fig4",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        mean_everest_precision=float(np.mean([
            r.metrics.precision for r in records
            if r.method.startswith("everest")])),
    )

    by_method = {}
    for record in records:
        by_method.setdefault(record.method.split("(")[0], []).append(record)

    everest = by_method["everest"]
    assert len(everest) == 5
    for record in everest:
        if bench_strict:  # quality bars calibrated for bench scale
            assert record.metrics.precision >= 0.85, record.video
            assert record.speedup > 3.0, record.video

    for record in by_method["scan-and-test"]:
        assert record.speedup == 1.0
        assert record.metrics.precision == 1.0

    # HOG: noisy ranking, slower than Everest's simulated runtime.
    mean_hog_precision = np.mean(
        [r.metrics.precision for r in by_method["hog"]])
    mean_everest_precision = np.mean(
        [r.metrics.precision for r in everest])
    assert mean_hog_precision < mean_everest_precision
    for hog, eve in zip(by_method["hog"], everest):
        assert hog.simulated_seconds > 0

    # TinyYOLO: fast but inaccurate relative to Everest.
    mean_tiny_precision = np.mean(
        [r.metrics.precision for r in by_method["tinyyolo-only"]])
    assert mean_tiny_precision < mean_everest_precision

    # Select-and-topk: reaches precision only through the per-video
    # manual lambda calibration the paper granted it, and always pays
    # oracle verification on its candidate set. (In the paper it is as
    # slow as scan; on our synthetic videos its candidate sets stay
    # small because tie-dense integer counts make the range boundary
    # learnable — a known deviation from the paper's numbers.)
    for record in by_method.get("select-and-topk", []):
        assert record.extras.get("oracle_calls", 0) >= record.k
        assert record.extras.get("candidates", 0) >= record.k
