"""Bench for Figure 9: the depth-estimator (tailgating) scoring UDF.

Runs the paper's four scenarios on both dashcam videos and asserts
high precision with a material speedup in each.
"""

from repro.experiments import fig9

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig9_udf(bench_scale, bench_strict, benchmark):
    records = run_once(benchmark, fig9.run, bench_scale)
    print()
    print(fig9.render(records))
    write_bench_result(
        "fig9",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        scenarios=sorted({r.extras["scenario"] for r in records}),
    )

    assert len(records) >= 4  # 2 videos x at least 2 feasible scenarios
    for record in records:
        assert record.extras["confidence"] >= record.thres - 1e-9
        if bench_strict:  # quality bars calibrated for bench scale
            assert record.metrics.precision >= 0.75, \
                record.extras["scenario"]
            assert record.speedup > 2.0
