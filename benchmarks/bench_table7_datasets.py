"""Bench for Table 7: dataset registry construction and rendering.

Regenerates the dataset-characteristics table and times synthetic
video construction + frame rendering throughput.
"""

import numpy as np

from repro.experiments import table7
from repro.video import build_dataset

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    timed_call,
    write_bench_result,
)


def test_table7_output(bench_scale, benchmark, capsys):
    output = run_once(benchmark, table7.main, bench_scale)
    write_bench_result(
        "table7",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        output_lines=len(output.splitlines()),
    )
    assert "taipei-bus" in output
    assert "dashcam-greenport" in output


def test_video_render_throughput(benchmark):
    video = build_dataset("archie", min_frames=2_000)
    indices = np.arange(0, 1_000)

    def render():
        return video.batch_pixels(indices)

    pixels = benchmark(render)
    _, elapsed = timed_call(render)
    write_bench_result(
        "table7",
        scale=scale_label(),
        seconds=elapsed,
        render_frames_per_second=len(indices) / max(elapsed, 1e-9),
    )
    assert pixels.shape == (1_000, 24, 24)
