"""Bench for Table 7: dataset registry construction and rendering.

Regenerates the dataset-characteristics table and times synthetic
video construction + frame rendering throughput.
"""

import numpy as np

from repro.experiments import table7
from repro.video import build_dataset

from bench_util import run_once


def test_table7_output(bench_scale, benchmark, capsys):
    output = run_once(benchmark, table7.main, bench_scale)
    assert "taipei-bus" in output
    assert "dashcam-greenport" in output


def test_video_render_throughput(benchmark):
    video = build_dataset("archie", min_frames=2_000)
    indices = np.arange(0, 1_000)

    def render():
        return video.batch_pixels(indices)

    pixels = benchmark(render)
    assert pixels.shape == (1_000, 24, 24)
