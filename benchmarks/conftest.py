"""Benchmark-suite fixtures.

Benchmarks run the same experiment harness as
``scripts/collect_experiments.py`` — and therefore the same session /
query-plan path (DESIGN.md §4) — but at ``ExperimentScale.bench()``
(shorter videos, trimmed lambda grids) so the whole suite finishes in
minutes. Each bench prints the paper-style table it regenerates;
``pytest-benchmark`` times a single full run via
``benchmark.pedantic(rounds=1)`` because the workloads are macro-scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return ExperimentScale.bench()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full run of a macro-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0)
