"""Benchmark-suite fixtures.

Benchmarks run the same experiment harness as
``scripts/collect_experiments.py`` — and therefore the same session /
query-plan path (DESIGN.md §4) — but at ``ExperimentScale.bench()``
(shorter videos, trimmed lambda grids) so the whole suite finishes in
minutes. Each bench prints the paper-style table it regenerates;
``pytest-benchmark`` times a single full run via
``benchmark.pedantic(rounds=1)`` because the workloads are macro-scale.

This module holds *fixtures only*. Plain helpers live in
``bench_util.py`` so nothing a pool worker needs ever pickles against
the ambiguous ``conftest`` module name — module-level state here is
never captured by workers (DESIGN.md §6).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Workload scale for the macro benchmarks.

    ``REPRO_BENCH_SCALE=quick`` trims the suite to smoke-test size —
    the CI benchmark job runs it that way on every push so the bench
    scripts cannot rot, while local runs keep the meaningful
    ``bench()`` scale.
    """
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").strip().lower()
    if name == "quick":
        return ExperimentScale.quick()
    if name in ("bench", ""):
        return ExperimentScale.bench()
    raise ValueError(
        f"REPRO_BENCH_SCALE={name!r}; expected 'bench' or 'quick'")


@pytest.fixture(scope="session")
def bench_strict(bench_scale) -> bool:
    """Whether scale-calibrated quality bars apply.

    Precision / speedup / phase-share thresholds are calibrated for
    ``bench()``-scale videos; the quick smoke run only certifies that
    every bench script still executes end to end.
    """
    return bench_scale.min_frames > 2_000
