"""Benchmark-suite fixtures.

Benchmarks run the same experiment harness as
``scripts/collect_experiments.py`` — and therefore the same session /
query-plan path (DESIGN.md §4) — but at ``ExperimentScale.bench()``
(shorter videos, trimmed lambda grids) so the whole suite finishes in
minutes. Each bench prints the paper-style table it regenerates;
``pytest-benchmark`` times a single full run via
``benchmark.pedantic(rounds=1)`` because the workloads are macro-scale.

This module holds *fixtures only*. Plain helpers live in
``bench_util.py`` so nothing a pool worker needs ever pickles against
the ambiguous ``conftest`` module name — module-level state here is
never captured by workers (DESIGN.md §6).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return ExperimentScale.bench()
