"""Bench for Table 8: the runtime breakdown of Everest.

Asserts the paper's shape: Phase 1 dominates (>= 60% of simulated
runtime, paper reports >= 80% at full video length), the
Select-candidate algorithmic overhead is negligible, and only a small
fraction of frames is cleaned.
"""

from repro.experiments import table8

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_table8_breakdown(bench_scale, bench_strict, benchmark):
    records = run_once(benchmark, table8.run, bench_scale)
    print()
    print(table8.render(records))
    write_bench_result(
        "table8",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        cleaned_fractions=[
            float(r.report.cleaned_fraction) for r in records],
    )

    for record in records:
        report = record.report
        fractions = report.breakdown.fractions()
        phase1 = (
            fractions["label_sample"]
            + fractions["cmdn_training"]
            + fractions["populate_d0"]
        )
        if bench_strict:  # share bars calibrated for bench scale
            # Paper: >= 80% at multi-million-frame lengths; at bench
            # scale the fixed labelling floor shrinks Phase 1's share.
            assert phase1 >= 0.35, record.video
            assert fractions["select_candidate"] < 0.05, record.video
            # Paper: < 1% at multi-million-frame lengths; the fraction
            # scales inversely with video length at fixed tail density.
            assert report.cleaned_fraction < 0.25, record.video
        assert report.iterations > 0
