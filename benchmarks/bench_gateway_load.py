"""Bench for the multi-tenant gateway under open-loop load.

A deterministic plan of queries and streaming appends — 1200+
simulated tenants, Zipf-skewed video popularity, a hot tenant pinned
to an abusive quota — is fired open-loop into an in-process
:class:`~repro.gateway.app.Gateway`, then a smaller slice is replayed
over the real asyncio HTTP server. Acceptance (the PR's contract):

* **Zero dropped appends** — every applied append is visible in the
  final stream watermarks (frame-exact accounting), and the
  ``appends_dropped_total`` counter is 0.
* **Byte-identity** — every report the gateway served equals, byte
  for byte, the report from a direct inline ``Session`` /
  ``VideoCorpus`` execution of the same (spec, k, guarantee).
* **Reconciled metrics** — the ``/metrics`` exposition parses and
  every per-tenant counter equals the generator's ground truth.
* **Bounded latency** — p50/p99 submit→complete latency under loose,
  pathology-catching ceilings (they flag a deadlock or a scheduling
  collapse, not a slow machine).
* **Backpressure engaged** — the abusive tenant saw real 429s.

The machine-readable summary lands in ``results/BENCH_gateway.json``
(override with ``REPRO_BENCH_GATEWAY_JSON``).
"""

from __future__ import annotations

import os
import time

from repro.api.registry import resolve_query_spec
from repro.config import EverestConfig
from repro.experiments.runner import format_table
from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayServer,
    QuotaPolicy,
)
from repro.gateway.loadgen import (
    HTTPTransport,
    InProcessTransport,
    LoadSpec,
    build_plan,
    reconcile,
    run_plan,
)

from bench_util import available_cpus, write_bench_result

#: Query specs in popularity order; one corpus spec in the mix so the
#: federated path is exercised on the wire too.
SPECS = (
    "count[car]/traffic",
    "count[person]/traffic",
    "count[car]/dashcam",
    "count[car]@{traffic,dashcam}",
)
STREAM_SPEC = "count[car]/traffic"
VIDEO_KWARGS = {"num_frames": 600, "seed": 23}
INITIAL_FRAMES = 240
APPEND_FRAMES = 30

#: Latency ceilings (seconds): pathology detectors, not speed claims.
P50_CEILING = {"quick": 15.0, "bench": 30.0}
P99_CEILING = {"quick": 60.0, "bench": 180.0}


def _spec_for(scale_name: str) -> LoadSpec:
    quick = scale_name == "quick"
    return LoadSpec(
        specs=SPECS,
        num_tenants=1200 if quick else 2000,
        num_queries=260 if quick else 800,
        duration=2.5 if quick else 6.0,
        video_skew=1.1,
        tenant_skew=1.0,
        k_choices=(3, 5, 10),
        guarantee_choices=(0.9, 0.95),
        streams=(
            ("gw-stream-0", STREAM_SPEC, INITIAL_FRAMES),
            ("gw-stream-1", STREAM_SPEC, INITIAL_FRAMES),
        ),
        appends_per_stream=4 if quick else 8,
        append_frames=APPEND_FRAMES,
        seed=17,
    )


def _busiest_tenant(plan) -> str:
    counts = {}
    for op in plan:
        if op.kind == "query":
            counts[op.tenant] = counts.get(op.tenant, 0) + 1
    return max(counts, key=lambda tenant: (counts[tenant], tenant))


def _reference_reports(report) -> dict:
    """Direct inline execution for every distinct shape served."""
    shapes = sorted({
        (spec, k, guarantee)
        for (_tenant, spec, k, guarantee) in report.accepted.values()
    })
    targets = {}
    references = {}
    for spec, k, guarantee in shapes:
        target = targets.get(spec)
        if target is None:
            target = resolve_query_spec(
                spec, config=EverestConfig.fast(), **VIDEO_KWARGS)
            targets[spec] = target
        references[(spec, k, guarantee)] = (
            target.query().topk(k).guarantee(guarantee)
            .deterministic_timing().run().to_json())
    return references


def test_gateway_load(bench_scale, bench_strict, benchmark=None):
    scale_name = "bench" if bench_strict else "quick"
    spec = _spec_for(scale_name)
    plan = build_plan(spec)
    abusive = _busiest_tenant(plan)

    gateway = Gateway(
        config=GatewayConfig(
            video_kwargs=dict(VIDEO_KWARGS),
            tenant_quotas={
                # The hottest tenant gets an abusive-client quota: its
                # burst drains immediately and the bucket refills far
                # slower than its schedule, so backpressure must fire.
                abusive: QuotaPolicy(rate=0.5, burst=1,
                                     max_inflight=4),
            },
        ),
        workers=min(4, max(2, available_cpus())),
        use_processes=False,
    )
    with gateway:
        transport = InProcessTransport(gateway)
        for stream_id, stream_spec, initial in spec.streams:
            status, body = transport.request("POST", "/stream", {
                "tenant": "t00000" if stream_id.endswith("0")
                else "t00001",
                "stream": stream_id,
                "spec": stream_spec,
                "initial_frames": initial,
                "k": 3,
            })
            assert status == 201, (status, body)

        started = time.perf_counter()
        report = run_plan(transport, plan, guns=4,
                          poll_timeout=300.0)
        wall = time.perf_counter() - started

        # -- metrics reconcile against generator ground truth --------
        status, metrics_text = transport.request("GET", "/metrics")
        assert status == 200
        problems = reconcile(report, metrics_text)
        assert not problems, "\n".join(problems)

        # -- nothing got lost ----------------------------------------
        assert report.fired_ops == report.plan_ops
        assert report.unresolved == 0, (
            f"{report.unresolved} queries never reached a terminal "
            f"state")
        assert report.total(report.failed) == 0

        # -- zero dropped appends: frame-exact watermark accounting --
        applied_frames = {
            stream_id: initial
            for stream_id, _spec, initial in spec.streams
        }
        owner = {"gw-stream-0": "t00000", "gw-stream-1": "t00001"}
        per_stream_applied = {sid: 0 for sid in applied_frames}
        # The generator records the watermark after each applied
        # append; the final watermark must equal initial + 30 * applied
        # appends for that stream (frames are fixed-size).
        for stream_id in applied_frames:
            observed = report.watermarks.get(
                stream_id, applied_frames[stream_id])
            applied = report.appends_applied.get(owner[stream_id], 0)
            per_stream_applied[stream_id] = applied
            expected = applied_frames[stream_id] \
                + APPEND_FRAMES * applied
            assert observed == expected, (
                f"stream {stream_id}: watermark {observed} != "
                f"{expected} (dropped frames?)")
        assert report.appends_errored == 0

        # -- byte-identity vs direct inline execution ----------------
        references = _reference_reports(report)
        mismatched = [
            result_id
            for result_id, served in report.reports.items()
            if served != references[
                (report.accepted[result_id][1],
                 report.accepted[result_id][2],
                 report.accepted[result_id][3])]
        ]
        assert not mismatched, (
            f"{len(mismatched)} gateway reports differ from direct "
            f"inline execution: {mismatched[:5]}")

        # -- backpressure engaged on the abusive tenant --------------
        abusive_rejects = sum(
            count for (tenant, _reason), count in
            report.rejected.items() if tenant == abusive)
        assert abusive_rejects >= 1, (
            f"abusive tenant {abusive} was never rejected; quota "
            f"backpressure is not engaging")

        # -- latency ceilings ----------------------------------------
        p50 = report.latency_quantile(0.5)
        p95 = report.latency_quantile(0.95)
        p99 = report.latency_quantile(0.99)
        assert p50 <= P50_CEILING[scale_name], (
            f"p50 {p50:.2f}s exceeds the {scale_name} ceiling")
        assert p99 <= P99_CEILING[scale_name], (
            f"p99 {p99:.2f}s exceeds the {scale_name} ceiling")

        service_stats = gateway.service.stats()

        # -- a slice replayed over the real HTTP server --------------
        http_spec = LoadSpec(
            specs=SPECS[:2], num_tenants=50, num_queries=20,
            duration=0.5, seed=29)
        http_plan = build_plan(http_spec)
        with GatewayServer(gateway) as server:
            http = HTTPTransport(server.host, server.port,
                                 pool_size=8)
            http_report = run_plan(http, http_plan, guns=2,
                                   poll_timeout=120.0)
            status, http_metrics = http.request("GET", "/metrics")
            http.close()
        assert status == 200
        assert http_report.unresolved == 0
        assert http_report.total(http_report.failed) == 0
        http_references = dict(references)
        http_references.update(_reference_reports(http_report))
        http_mismatched = [
            rid for rid, served in http_report.reports.items()
            if served != http_references[
                (http_report.accepted[rid][1],
                 http_report.accepted[rid][2],
                 http_report.accepted[rid][3])]
        ]
        assert not http_mismatched, (
            f"{len(http_mismatched)} HTTP-served reports differ from "
            f"direct execution")

    completed = report.total(report.completed)
    throughput = completed / wall if wall > 0 else float("nan")
    rows = [
        ["tenants simulated", f"{spec.num_tenants}"],
        ["queries fired / completed",
         f"{report.total(report.submitted)} / {completed}"],
        ["rejected (429)", f"{report.total(report.rejected)}"],
        ["appends applied / frames",
         f"{report.total(report.appends_applied)} / "
         f"{report.total(report.append_frames)}"],
        ["p50 / p95 / p99 latency",
         f"{p50:.3f}s / {p95:.3f}s / {p99:.3f}s"],
        ["throughput", f"{throughput:.1f} q/s"],
        ["phase-1 hit rate",
         f"{service_stats.phase1_hit_rate:.2f}"],
        ["max schedule lateness", f"{report.max_behind:.3f}s"],
        ["HTTP slice", f"{http_report.total(http_report.completed)} "
         f"queries byte-identical over sockets"],
    ]
    print()
    print(format_table(
        ("gateway open-loop load", scale_name), rows,
        title=f"Gateway load: {spec.num_queries} queries, "
              f"{spec.num_tenants} tenants, {available_cpus()} CPUs"))

    out = write_bench_result(
        "gateway",
        scale=scale_name,
        seconds=wall,
        margin=P99_CEILING[scale_name] - p99,
        tenants=spec.num_tenants,
        queries_planned=spec.num_queries,
        queries_submitted=report.total(report.submitted),
        queries_completed=completed,
        queries_rejected=report.total(report.rejected),
        appends_applied=report.total(report.appends_applied),
        append_frames=report.total(report.append_frames),
        appends_rejected=report.total(report.appends_rejected),
        dropped_appends=0,
        p50_seconds=p50,
        p95_seconds=p95,
        p99_seconds=p99,
        throughput_qps=throughput,
        wall_seconds=wall,
        max_behind_seconds=report.max_behind,
        phase1_hit_rate=service_stats.phase1_hit_rate,
        byte_identical=True,
        metrics_reconciled=True,
        http_slice_completed=http_report.total(http_report.completed),
    )
    print(f"wrote {out}")


if __name__ == "__main__":  # pragma: no cover
    class _Scale:
        min_frames = 600

    os.environ.setdefault("REPRO_BENCH_SCALE", "quick")
    test_gateway_load(_Scale(), False)
