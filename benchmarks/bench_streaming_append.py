"""Bench for the streaming subsystem: per-append cost vs batch recompute.

Feeds a counting video in equal chunks to a streaming session with a
live subscription, and after every append also re-runs a from-scratch
batch session over the same prefix. Prints the per-append comparison
and asserts the acceptance contract:

* the live report is byte-identical to the batch re-run at every
  watermark (the equivalence the test suite certifies, re-checked at
  bench scale);
* per-append **fresh oracle work grows with the delta, not the
  watermark**: every append's fresh calls stay below the batch run's
  total, the live total is a small fraction of the batch total, and
  the later appends do not trend upward with the prefix length.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.experiments.runner import (
    config_for,
    counting_videos,
    format_table,
)
from repro.oracle import counting_udf

from bench_util import scale_label, write_bench_result

NUM_APPENDS = 6
BOOTSTRAP_FRACTION = 0.4


def test_streaming_append_cost_tracks_the_delta(bench_scale):
    bench_started = time.perf_counter()
    video = counting_videos(bench_scale)[0]
    config = config_for(bench_scale)
    bootstrap = int(BOOTSTRAP_FRACTION * len(video))
    chunk = (len(video) - bootstrap) // NUM_APPENDS

    stream = Session.open_stream(
        video, counting_udf(video.object_label),
        initial_frames=bootstrap, config=config)
    live = (stream.query().topk(10).guarantee(0.9)
            .deterministic_timing().subscribe())

    rows = []
    fresh_calls = []
    batch_calls = []
    for _ in range(NUM_APPENDS):
        result = stream.append(chunk)

        started = time.perf_counter()
        batch = stream.batch_session()
        reference = (batch.query().topk(10).guarantee(0.9)
                     .deterministic_timing().run())
        batch_seconds = time.perf_counter() - started

        assert reference.to_json() == live.latest.to_json(), \
            f"live report diverged from batch at {result.watermark}"
        fresh_calls.append(result.fresh_oracle_calls)
        batch_calls.append(reference.oracle_calls)
        rows.append([
            f"{result.watermark:,}",
            f"{result.segment.num_frames:,}",
            f"{result.wall_seconds:.2f}s",
            f"{result.fresh_oracle_calls}",
            f"{batch_seconds:.2f}s",
            f"{reference.oracle_calls}",
        ])

    print()
    print(format_table(
        ("watermark", "delta", "live-lat", "live-fresh",
         "batch-lat", "batch-calls"),
        rows,
        title=f"Streaming appends on {video.name} "
              f"({len(video):,} frames, {NUM_APPENDS} chunks)",
    ))

    total_fresh, total_batch = sum(fresh_calls), sum(batch_calls)
    write_bench_result(
        "streaming_append",
        scale=scale_label(bench_scale),
        seconds=time.perf_counter() - bench_started,
        margin=0.5 - total_fresh / max(total_batch, 1),
        appends=NUM_APPENDS,
        fresh_calls=fresh_calls,
        batch_calls=batch_calls,
        byte_identical=True,
    )

    # Delta-sized cost, three ways. (1) No single append re-pays what
    # the batch run pays for the whole prefix.
    assert all(f < b for f, b in zip(fresh_calls, batch_calls)), \
        f"an append re-paid the batch cost: {fresh_calls} vs {batch_calls}"
    # (2) In aggregate the live path pays a small fraction of re-running
    # batch per append.
    assert total_fresh < 0.5 * total_batch, \
        f"live total {total_fresh} not << batch total {total_batch}"
    # (3) Fresh cost does not grow with the watermark: the later half of
    # the appends (largest prefixes) costs no more than the earlier
    # half did — it tracks the (constant) delta, not the video length.
    half = len(fresh_calls) // 2
    early, late = fresh_calls[:half], fresh_calls[half:]
    assert sum(late) / len(late) <= max(sum(early) / len(early), chunk), \
        f"fresh cost trends with the watermark: {fresh_calls}"
