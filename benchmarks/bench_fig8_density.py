"""Bench for Figure 8: object density sweep on Visual-Road-style videos.

Asserts the paper's finding: Everest's speedup and precision are not
materially affected by the number of objects in the scene.
"""

import numpy as np

from repro.experiments import fig8

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig8_density(bench_scale, benchmark):
    records = run_once(
        benchmark, fig8.run, bench_scale, densities=(50, 150, 250))
    print()
    print(fig8.render(records))
    write_bench_result(
        "fig8",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        speedups=[float(r.speedup) for r in records],
    )

    assert len(records) == 3
    speedups = [r.speedup for r in records]
    for record in records:
        assert record.extras["confidence"] >= 0.9
        assert record.metrics.precision >= 0.8, record.video
    # Flat-ish speedup across densities: max within 3x of min.
    assert max(speedups) <= 3.0 * min(speedups)
