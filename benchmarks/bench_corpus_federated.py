"""Bench for the federated corpus engine: fleet answers, pooled shards.

Opens a 4-shard corpus of Table-7 counting videos and answers one
global top-k twice — once with the serial per-shard Phase-1 loop
(``prepare(workers=1)``), once with the builds fanned across a
4-worker process pool — printing the wall-clock speedup and the
cross-shard budget allocation. Asserts the acceptance contract:

* the federated report is byte-identical at every worker count AND to
  a plain single-video execution over the concatenated footage with
  the same merged Phase-1 entry (the DESIGN.md §9 equivalence), and
* at bench scale with at least 4 usable CPUs, the pooled per-shard
  Phase-1 prepare runs >= 2x faster than the serial per-shard loop
  (on fewer CPUs or at quick scale the speedup is reported, not
  asserted).
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.api.executor import QueryExecutor
from repro.corpus import VideoCorpus
from repro.experiments.runner import (
    config_for,
    counting_videos,
    format_table,
)
from repro.oracle import counting_udf
from repro.video.views import ConcatVideo

from bench_util import available_cpus, scale_label, write_bench_result

WORKER_COUNTS = (1, 4)
NUM_SHARDS = 4
TOP_K = 10
THRES = 0.9


def _fresh_corpus(bench_scale) -> VideoCorpus:
    videos = counting_videos(bench_scale)[:NUM_SHARDS]
    return VideoCorpus.open(
        videos, counting_udf("car"), config=config_for(bench_scale))


def test_corpus_federated_speedup(bench_scale, bench_strict):
    prepare_timings = {}
    query_timings = {}
    outcomes = {}
    corpora = {}
    for workers in WORKER_COUNTS:
        corpus = _fresh_corpus(bench_scale)
        start = time.perf_counter()
        corpus.prepare(workers=workers)
        prepare_timings[workers] = time.perf_counter() - start
        start = time.perf_counter()
        outcomes[workers] = (
            corpus.query().topk(TOP_K).guarantee(THRES)
            .deterministic_timing().run_detailed()
        )
        query_timings[workers] = time.perf_counter() - start
        corpora[workers] = corpus

    rows = [
        [
            f"{workers}",
            f"{prepare_timings[workers]:.2f}s",
            f"{prepare_timings[1] / prepare_timings[workers]:.2f}x",
            f"{query_timings[workers]:.2f}s",
        ]
        for workers in WORKER_COUNTS
    ]
    print()
    print(format_table(
        ("shard-workers", "prepare", "prepare-speedup", "query"),
        rows,
        title=f"Federated corpus: {NUM_SHARDS} shards, "
              f"{corpora[1].total_frames:,} frames, "
              f"{available_cpus()} usable CPUs",
    ))
    allocation = outcomes[1].allocation()
    print("budget allocation:", ", ".join(
        f"{name}={confirms}" for name, confirms in allocation.items()))

    # Bit-identical reports at every worker count.
    baseline = outcomes[1].report.to_json()
    for workers in WORKER_COUNTS[1:]:
        assert outcomes[workers].report.to_json() == baseline, \
            f"workers={workers}"

    # ... and to the plain concatenated-execution reference.
    corpus = corpora[1]
    state = corpus.merged_state()
    reference_session = Session(
        ConcatVideo([m.video for m in corpus.members], name=corpus.name),
        corpus.scoring, config=config_for(bench_scale))
    reference_session.adopt_phase1(state.entry, config_for(bench_scale))
    reference = QueryExecutor(reference_session).execute(
        corpus.query().topk(TOP_K).guarantee(THRES)
        .deterministic_timing().plan())
    assert reference.to_json() == baseline

    speedup = prepare_timings[1] / prepare_timings[4]
    write_bench_result(
        "corpus_federated",
        scale=scale_label(bench_scale),
        seconds=sum(prepare_timings.values()) + sum(query_timings.values()),
        margin=speedup - 2.0 if bench_strict else None,
        shards=NUM_SHARDS,
        total_frames=corpora[1].total_frames,
        prepare_seconds={
            str(w): prepare_timings[w] for w in WORKER_COUNTS},
        prepare_speedup=speedup,
        byte_identical=True,
    )

    # Wall-clock acceptance: the pooled per-shard Phase-1 builds beat
    # the serial per-shard loop >= 2x at 4 workers, when the hardware
    # and workload can support it (quick-scale Phase 1 is too small to
    # amortize pool startup; it smoke-tests the path instead).
    if bench_strict and available_cpus() >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x prepare speedup with 4 shard workers on "
            f"{available_cpus()} CPUs, got {speedup:.2f}x")
