"""Bench for the concurrent query service: throughput vs serial.

A mixed 16-query workload — four videos x four (k, thres, window)
shapes, the traffic profile of independent tenants — is executed three
ways:

* **serial-independent** — the no-service reference: each query
  arrives on its own and pays its own Phase 1 (a fresh ``Session``
  per query), executed one after another;
* **serial-shared** — one ``Session`` per video executed serially
  (Phase 1 amortized by hand, no concurrency);
* **service** — one ``QueryService`` at 4 workers: single-flight
  Phase-1 sharing, cross-query score-cache reuse, concurrent Phase 2.

Acceptance (the PR's contract): the service at 4 workers sustains
**>= 2x** the serial-independent throughput on the mixed workload —
on any hardware, because single-flight sharing alone removes 12 of
the 16 Phase-1 builds. With >= 4 usable CPUs the service must *also*
beat the hand-amortized serial-shared baseline (that margin is pure
concurrency, so it is reported but not asserted on fewer CPUs).
Reports are asserted byte-identical across all three executions.
"""

from __future__ import annotations

import time

from repro import EverestConfig, QueryService, Session
from repro.experiments.runner import format_table
from repro.oracle import counting_udf
from repro.video import TrafficVideo

from bench_util import available_cpus, scale_label, write_bench_result

WORKERS = 4
VIDEO_FRAMES = 800
VIDEO_SEEDS = (101, 102, 103, 104)
#: (k, thres, window_size) shapes mixed across the videos.
SHAPES = ((5, 0.9, 0), (10, 0.9, 0), (5, 0.95, 0), (4, 0.9, 20))


def _config() -> EverestConfig:
    return EverestConfig.fast()


def _video(seed: int) -> TrafficVideo:
    return TrafficVideo(f"svc-bench-{seed}", VIDEO_FRAMES, seed=seed)


def _workload():
    """(video seed, k, thres, window) for all 16 queries, interleaved."""
    return [
        (seed, k, thres, window)
        for k, thres, window in SHAPES
        for seed in VIDEO_SEEDS
    ]


def _query(session, k, thres, window):
    query = session.query().topk(k).guarantee(thres).deterministic_timing()
    if window:
        query = query.windows(size=window)
    return query


def _run_serial_independent(workload):
    reports = []
    for seed, k, thres, window in workload:
        session = Session(
            _video(seed), counting_udf("car"), config=_config())
        reports.append(_query(session, k, thres, window).run())
    return reports


def _run_serial_shared(workload):
    sessions = {
        seed: Session(_video(seed), counting_udf("car"), config=_config())
        for seed in VIDEO_SEEDS
    }
    return [
        _query(sessions[seed], k, thres, window).run()
        for seed, k, thres, window in workload
    ]


def _run_service(workload):
    with QueryService(workers=WORKERS) as service:
        sessions = {
            seed: service.open_session(
                _video(seed), counting_udf("car"), config=_config())
            for seed in VIDEO_SEEDS
        }
        futures = [
            service.submit(
                _query(sessions[seed], k, thres, window),
                tenant=f"tenant-{seed % 2}")
            for seed, k, thres, window in workload
        ]
        reports = service.gather(futures, timeout=600)
        stats = service.stats()
    return reports, stats


def test_service_throughput(benchmark=None):
    workload = _workload()

    start = time.perf_counter()
    independent = _run_serial_independent(workload)
    t_independent = time.perf_counter() - start

    start = time.perf_counter()
    shared = _run_serial_shared(workload)
    t_shared = time.perf_counter() - start

    start = time.perf_counter()
    serviced, stats = _run_service(workload)
    t_service = time.perf_counter() - start

    queries = len(workload)
    rows = [
        ["serial-independent", f"{t_independent:.2f}s",
         f"{queries / t_independent:.2f} q/s", "1.00x"],
        ["serial-shared", f"{t_shared:.2f}s",
         f"{queries / t_shared:.2f} q/s",
         f"{t_independent / t_shared:.2f}x"],
        [f"service ({WORKERS} workers)", f"{t_service:.2f}s",
         f"{queries / t_service:.2f} q/s",
         f"{t_independent / t_service:.2f}x"],
    ]
    print()
    print(format_table(
        ("execution", "wall-clock", "throughput", "speedup"),
        rows,
        title=f"Query service: mixed {queries}-query workload over "
              f"{len(VIDEO_SEEDS)} videos, {available_cpus()} usable "
              f"CPUs, lane={'processes' if stats['use_processes'] else 'threads'}",
    ))

    # Same answers everywhere, byte for byte.
    reference = [report.to_json() for report in independent]
    assert [report.to_json() for report in shared] == reference
    assert [report.to_json() for report in serviced] == reference

    # Cross-query sharing did its job: one build per video, and some
    # confirmations came physically free from the shared score cache.
    assert stats["builds"] == len(VIDEO_SEEDS)
    assert stats["completed"] == queries

    # Throughput acceptance: >= 2x over the no-service baseline.
    speedup = t_independent / t_service
    write_bench_result(
        "service_throughput",
        scale=scale_label(),
        seconds=t_independent + t_shared + t_service,
        margin=speedup - 2.0,
        queries=queries,
        serial_independent_seconds=t_independent,
        serial_shared_seconds=t_shared,
        service_seconds=t_service,
        speedup=speedup,
        builds=stats["builds"],
        byte_identical=True,
    )
    assert speedup >= 2.0, (
        f"expected the service to sustain >= 2x serial-independent "
        f"throughput, got {speedup:.2f}x")

    # With real parallel hardware the service must also beat the
    # hand-amortized serial baseline (pure concurrency margin).
    if available_cpus() >= 4:
        concurrency = t_shared / t_service
        assert concurrency >= 1.5, (
            f"expected >= 1.5x over serial-shared on "
            f"{available_cpus()} CPUs, got {concurrency:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    test_service_throughput()
