"""Bench for the declarative query API: sessions and plan compilation.

Asserts the load-bearing property of the session layer: a K-sweep on
one session builds Phase 1 exactly once (the dominant cost), so the
whole sweep costs roughly one engine run plus cheap Phase 2 cleanings.
Plan compilation and ``explain()`` must stay free — no Phase 1 run.
"""

from repro.api import Session
from repro.experiments.runner import config_for, counting_videos
from repro.oracle import counting_udf

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_session_sweep_builds_phase1_once(bench_scale, benchmark):
    video = counting_videos(bench_scale)[0]
    session = Session(
        video, counting_udf(video.object_label),
        config=config_for(bench_scale))

    def sweep():
        base = session.query().guarantee(0.9)
        return [base.topk(k).run() for k in (5, 25, 50)]

    reports = run_once(benchmark, sweep)
    write_bench_result(
        "api_session",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        phase1_runs=session.phase1_runs,
        sweep_reports=len(reports),
    )
    assert session.phase1_runs == 1
    assert len(reports) == 3
    for report in reports:
        assert report.confidence >= 0.9
        # Each report still accounts the full (shared) Phase 1 cost.
        assert report.breakdown.phase1_seconds > 0


def test_plan_compilation_is_free(bench_scale):
    video = counting_videos(bench_scale)[0]
    session = Session(
        video, counting_udf(video.object_label),
        config=config_for(bench_scale))
    plan = session.query().windows(size=30).topk(10).guarantee(0.95).plan()
    assert "tumbling-windows(size=30" in plan.explain()
    # Compiling and explaining must not have triggered Phase 1.
    assert session.phase1_runs == 0
