"""Bench for Figure 6: impact of the confidence threshold.

The paper's key observation: once past 0.5, raising thres to 0.99
costs almost nothing because confidence grows exponentially with the
number of cleaned frames. We assert the cleaned-frame count grows by
far less than the threshold tightening would naively suggest.
"""

from repro.experiments import fig6
from repro.experiments.runner import counting_videos

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig6_impact_of_thres(bench_scale, benchmark):
    videos = counting_videos(bench_scale)[:2]
    records = run_once(
        benchmark, fig6.run, bench_scale,
        thresholds=(0.5, 0.9, 0.99), videos=videos)
    print()
    print(fig6.render(records))
    write_bench_result(
        "fig6",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        thresholds=[0.5, 0.9, 0.99],
    )

    for video in {r.video for r in records}:
        rows = {r.thres: r for r in records if r.video == video}
        cleaned_05 = rows[0.5].extras["cleaned"]
        cleaned_99 = rows[0.99].extras["cleaned"]
        assert cleaned_99 >= cleaned_05
        # Exponential convergence: 49 more percentage points of
        # confidence must cost well under an order of magnitude more
        # cleaning (the paper reports ~1% extra iterations at full
        # video length).
        assert cleaned_99 <= 4.0 * max(cleaned_05, 1)
        # Speedups stay in the same ballpark.
        assert rows[0.99].speedup >= 0.5 * rows[0.5].speedup
        for record in rows.values():
            assert record.metrics.precision >= 0.8
