"""Acceptance bench for the cost-based multi-query optimizer.

A mixed 32-query workload — four videos x eight (k, thres) shapes,
every query arriving on its *own* session (independent tenants who
never hand-share state) — is executed three ways:

* **serial reference** — one session per video executed serially: the
  byte-identity oracle for both services;
* **service-fifo** — ``QueryService(ordering="fifo")`` with a
  2-entry artifact LRU, queries submitted in arrival (interleaved)
  order: every lease misses residency and rebuilds — the thrash a
  cost-blind order pays;
* **service-cost** — the same service with ``ordering="cost"``,
  submissions routed through ``plan_workload()`` / ``submit_plan()``:
  the planner groups same-artifact queries and the scheduler policy
  keeps serving the warm artifact, so each artifact builds once.

Acceptance (the PR's contract), gated at every scale:

* all three executions produce **byte-identical** reports per query —
  the optimizer moves cost, never answers;
* the optimizer pays **one build per video** (4) while FIFO pays one
  per query (32);
* the optimizer's physical simulated cost (builds + cache-missing
  confirmations) beats FIFO by **>= 2x** (structural: ~8x expected).

The machine-readable summary lands in ``results/BENCH_optimizer.json``
(override with ``REPRO_BENCH_OPTIMIZER_JSON``).
"""

from __future__ import annotations

import os
import time

from repro import EverestConfig, QueryService, Session
from repro.experiments.runner import format_table
from repro.oracle import counting_udf
from repro.video import TrafficVideo

from bench_util import write_bench_result

#: Margin the optimizer must clear over FIFO on physical cost.
MIN_PHYSICAL_RATIO = 2.0

VIDEO_SEEDS = (201, 202, 203, 204)
#: (k, thres) shapes mixed across the videos: 8 per video.
SHAPES = tuple(
    (k, thres) for thres in (0.9, 0.95) for k in (3, 5, 8, 10))
#: Artifact LRU small enough that interleaved FIFO order thrashes it.
ARTIFACT_ENTRIES = 2


def _config() -> EverestConfig:
    return EverestConfig.fast()


def _frames(strict: bool) -> int:
    return 600 if strict else 240


def _video(seed: int, frames: int) -> TrafficVideo:
    return TrafficVideo(f"opt-bench-{seed}", frames, seed=seed)


def _workload():
    """(video seed, k, thres) for all 32 queries, video-interleaved."""
    return [
        (seed, k, thres)
        for k, thres in SHAPES
        for seed in VIDEO_SEEDS
    ]


def _query(session, k, thres):
    return session.query().topk(k).guarantee(thres).deterministic_timing()


def _run_serial(workload, frames):
    sessions = {
        seed: Session(
            _video(seed, frames), counting_udf("car"), config=_config())
        for seed in VIDEO_SEEDS
    }
    return [
        _query(sessions[seed], k, thres).run()
        for seed, k, thres in workload
    ]


def _open_sessions(service, workload, frames):
    """One fresh session per query — nobody hand-shares Phase 1."""
    return [
        service.open_session(
            _video(seed, frames), counting_udf("car"), config=_config())
        for seed, _k, _thres in workload
    ]


def _physical_seconds(service):
    """Simulated seconds the run physically paid: builds (including
    every LRU-thrash rebuild) plus cache-missing confirmations."""
    stats = service.stats()
    confirm_seconds = 0.0
    for outcome in service.outcomes():
        fresh = outcome.fresh_confirm_calls
        if fresh is None:
            fresh = outcome.phase2_cost.units("oracle_confirm")
        per_call = (
            outcome.phase2_cost.seconds("oracle_confirm")
            / max(outcome.phase2_cost.units("oracle_confirm"), 1.0))
        confirm_seconds += fresh * per_call
    return stats.build_seconds + confirm_seconds, stats


def _run_fifo(workload, frames):
    with QueryService(
            workers=1, use_processes=False,
            artifact_entries=ARTIFACT_ENTRIES) as service:
        sessions = _open_sessions(service, workload, frames)
        futures = [
            service.submit(_query(session, k, thres), tenant="bench")
            for session, (_seed, k, thres) in zip(sessions, workload)
        ]
        reports = service.gather(futures, timeout=600)
        physical, stats = _physical_seconds(service)
    return reports, physical, stats


def _run_cost(workload, frames):
    with QueryService(
            workers=1, use_processes=False, ordering="cost",
            artifact_entries=ARTIFACT_ENTRIES) as service:
        sessions = _open_sessions(service, workload, frames)
        queries = [
            _query(session, k, thres)
            for session, (_seed, k, thres) in zip(sessions, workload)
        ]
        plan = service.plan_workload(queries)
        reports = service.gather(
            service.submit_plan(plan, tenant="bench"), timeout=600)
        physical, stats = _physical_seconds(service)
    return reports, physical, stats, plan


def test_optimizer_workload(bench_scale, bench_strict, benchmark=None):
    frames = _frames(bench_strict)
    workload = _workload()
    queries = len(workload)

    start = time.perf_counter()
    reference = _run_serial(workload, frames)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    fifo_reports, fifo_physical, fifo_stats = _run_fifo(workload, frames)
    t_fifo = time.perf_counter() - start

    start = time.perf_counter()
    cost_reports, cost_physical, cost_stats, plan = _run_cost(
        workload, frames)
    t_cost = time.perf_counter() - start

    ratio = fifo_physical / cost_physical
    rows = [
        ["serial reference", f"{t_serial:.2f}s", "-", "-", "-"],
        ["service-fifo", f"{t_fifo:.2f}s", str(fifo_stats.builds),
         f"{fifo_physical:.1f}s", "1.00x"],
        ["service-cost", f"{t_cost:.2f}s", str(cost_stats.builds),
         f"{cost_physical:.1f}s", f"{ratio:.2f}x"],
    ]
    print()
    print(format_table(
        ("execution", "wall-clock", "builds", "physical cost", "margin"),
        rows,
        title=f"Optimizer: {queries}-query mixed workload over "
              f"{len(VIDEO_SEEDS)} videos x {len(SHAPES)} shapes, "
              f"artifact LRU={ARTIFACT_ENTRIES}, {frames} frames",
    ))

    # Byte identity: the optimizer moves cost, never answers.
    expected = [report.to_json() for report in reference]
    assert [report.to_json() for report in fifo_reports] == expected
    assert [report.to_json() for report in cost_reports] == expected

    # Structure: FIFO thrashes the 2-entry LRU (one build per query),
    # the planned order builds each artifact exactly once.
    assert fifo_stats.builds == queries
    assert cost_stats.builds == len(VIDEO_SEEDS)
    assert cost_stats.planned == queries
    assert cost_stats.calibration_observed == queries

    # The gated margin.
    assert ratio >= MIN_PHYSICAL_RATIO, (
        f"expected the cost ordering to pay <= 1/{MIN_PHYSICAL_RATIO}x "
        f"FIFO's physical cost, got {ratio:.2f}x")

    out = write_bench_result(
        "optimizer",
        scale="bench" if bench_strict else "quick",
        seconds=t_serial + t_fifo + t_cost,
        margin=ratio - MIN_PHYSICAL_RATIO,
        queries=queries,
        videos=len(VIDEO_SEEDS),
        frames=frames,
        artifact_entries=ARTIFACT_ENTRIES,
        byte_identical=True,
        planned_order=plan.order(),
        fifo={
            "wall_seconds": round(t_fifo, 3),
            "builds": fifo_stats.builds,
            "build_seconds": round(fifo_stats.build_seconds, 3),
            "physical_seconds": round(fifo_physical, 3),
        },
        cost={
            "wall_seconds": round(t_cost, 3),
            "builds": cost_stats.builds,
            "build_seconds": round(cost_stats.build_seconds, 3),
            "physical_seconds": round(cost_physical, 3),
            "estimated_seconds": round(cost_stats.estimated_seconds, 3),
            "actual_seconds": round(cost_stats.actual_seconds, 3),
            "calibration_error": round(cost_stats.calibration_error, 4),
        },
        physical_ratio=round(ratio, 3),
        min_physical_ratio=MIN_PHYSICAL_RATIO,
    )
    print(f"\nsummary -> {out}")


if __name__ == "__main__":  # pragma: no cover
    os.environ.setdefault("REPRO_BENCH_SCALE", "quick")

    class _Scale:
        min_frames = 0

    test_optimizer_workload(_Scale(), False)
