"""Bench for Figure 7: Top-K window queries across window sizes.

Asserts the paper's shape: window queries stay accurate, and speedup
does not *increase* with window size (larger windows mean fewer
choices and more frames confirmed per cleaning).
"""

from repro.experiments import fig7
from repro.experiments.runner import counting_videos

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig7_windows(bench_scale, benchmark):
    videos = counting_videos(bench_scale)[:2]
    records = run_once(
        benchmark, fig7.run, bench_scale,
        window_sizes=(1, 10, 30), k=20, videos=videos)
    print()
    print(fig7.render(records))
    write_bench_result(
        "fig7",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        records=len(records),
        window_sizes=[1, 10, 30],
    )

    assert records, "at least one window configuration must fit"
    for record in records:
        assert record.extras["confidence"] >= 0.9
        assert record.metrics.precision >= 0.6, \
            f"{record.video} w={record.window_size}"

    for video in {r.video for r in records}:
        rows = {r.window_size or 1: r for r in records
                if r.video == video}
        if 1 in rows and 30 in rows:
            assert rows[30].speedup <= 1.5 * rows[1].speedup
