"""Shared benchmark helpers, importable from pool workers.

Benchmarks used to pull :func:`run_once` straight out of
``conftest.py``. That module name is special to pytest and ambiguous
on ``sys.path`` (the tests directory has one too), so anything pickled
by reference against it — exactly what a process-pool worker does —
resolves to the wrong module or none at all. Helpers that benchmark
*code* (rather than fixtures) therefore live here under an
unambiguous module name, keeping every ``bench_*`` module safe to use
with ``ParallelRunner`` / ``REPRO_WORKERS``.
"""

from __future__ import annotations

import os


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full run of a macro-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0)


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
