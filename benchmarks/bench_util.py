"""Shared benchmark helpers, importable from pool workers.

Benchmarks used to pull :func:`run_once` straight out of
``conftest.py``. That module name is special to pytest and ambiguous
on ``sys.path`` (the tests directory has one too), so anything pickled
by reference against it — exactly what a process-pool worker does —
resolves to the wrong module or none at all. Helpers that benchmark
*code* (rather than fixtures) therefore live here under an
unambiguous module name, keeping every ``bench_*`` module safe to use
with ``ParallelRunner`` / ``REPRO_WORKERS``.
"""

from __future__ import annotations

# Re-exported for the bench modules: the affinity-aware CPU count now
# lives in the library (the service's process-lane heuristic uses it).
from repro.parallel.pool import available_cpus  # noqa: F401


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full run of a macro-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0)
