"""Shared benchmark helpers, importable from pool workers.

Benchmarks used to pull :func:`run_once` straight out of
``conftest.py``. That module name is special to pytest and ambiguous
on ``sys.path`` (the tests directory has one too), so anything pickled
by reference against it — exactly what a process-pool worker does —
resolves to the wrong module or none at all. Helpers that benchmark
*code* (rather than fixtures) therefore live here under an
unambiguous module name, keeping every ``bench_*`` module safe to use
with ``ParallelRunner`` / ``REPRO_WORKERS``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Optional

# Re-exported for the bench modules: the affinity-aware CPU count now
# lives in the library (the service's process-lane heuristic uses it).
from repro.parallel.pool import available_cpus  # noqa: F401

#: Where ``BENCH_<name>.json`` summaries land (``results/`` at repo root).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_LAST_RUN_SECONDS: Optional[float] = None

#: Summaries written by *this* process, by bench name. A second write
#: for the same name merges into the in-memory payload instead of the
#: on-disk file, so multi-test bench modules accumulate within one
#: pytest run but a fresh run always starts the file over.
_WRITTEN: Dict[str, dict] = {}


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full run of a macro-benchmark."""
    global _LAST_RUN_SECONDS
    started = time.perf_counter()
    try:
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0)
    finally:
        _LAST_RUN_SECONDS = time.perf_counter() - started


def last_run_seconds() -> Optional[float]:
    """Wall seconds of the most recent :func:`run_once` call."""
    return _LAST_RUN_SECONDS


def timed_call(fn, *args, **kwargs):
    """``(value, wall_seconds)`` for one plain call of ``fn``."""
    started = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - started


def scale_label(bench_scale=None) -> str:
    """``"bench"`` or ``"quick"`` for a summary's ``scale`` field.

    Derived from the scale object when the test has the fixture (the
    same frame-count cut as ``bench_strict``), from the environment
    otherwise.
    """
    if bench_scale is not None:
        return "bench" if bench_scale.min_frames > 2_000 else "quick"
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").strip().lower()
    return "quick" if name == "quick" else "bench"


def bench_out_path(name: str) -> Path:
    """Where ``BENCH_<name>.json`` goes (``REPRO_BENCH_<NAME>_JSON``
    overrides, e.g. ``REPRO_BENCH_GATEWAY_JSON`` for ``gateway``)."""
    env_key = f"REPRO_BENCH_{name.upper()}_JSON"
    override = os.environ.get(env_key, "").strip()
    if override:
        return Path(override)
    return RESULTS_DIR / f"BENCH_{name}.json"


def _env_block() -> Dict[str, object]:
    """The environment stamp shared by every bench summary."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": available_cpus(),
        "workers": os.environ.get("REPRO_WORKERS"),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "bench"),
    }


def write_bench_result(
    name: str,
    *,
    scale: str,
    seconds: Optional[float] = None,
    margin: Optional[float] = None,
    **metrics,
) -> Path:
    """Write ``results/BENCH_<name>.json`` in the shared schema.

    Every summary carries the same spine — ``bench``, ``scale``,
    ``seconds`` (wall time; repeat writes from one process accumulate),
    ``margin`` (the bench's headroom against its tightest gate, when it
    has one) and an ``env`` stamp — plus the bench's own ``metrics``.
    ``scripts/`` tooling and CI can therefore consume every summary
    uniformly.
    """
    payload = _WRITTEN.get(name)
    if payload is None or payload.get("scale") != scale:
        payload = {
            "bench": name,
            "scale": scale,
            "seconds": 0.0,
            "margin": margin,
            "env": _env_block(),
        }
    if seconds is not None:
        payload["seconds"] = float(payload["seconds"]) + float(seconds)
    if margin is not None:
        payload["margin"] = float(margin)
    for key, value in metrics.items():
        payload[key] = value
    _WRITTEN[name] = payload
    out = bench_out_path(name)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return out
