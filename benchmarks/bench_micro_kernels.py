"""Micro-benchmarks and ablations of the core kernels.

These time the pieces Table 8 claims are negligible (Topk-prob,
Select-candidate) and quantify the design choices DESIGN.md calls out:

* incremental Eq. 3 confidence vs naive Eq. 2 recomputation;
* upper-bound early stopping vs exhaustive argmax E[X_f];
* difference-detector and CMDN inference throughput.
"""

import numpy as np
import pytest

from repro.config import SelectCandidateConfig
from repro.core.select_candidate import CandidateSelector
from repro.core.topk_prob import ConfidenceState
from repro.core.uncertain import QuantizationGrid, UncertainRelation
from repro.models import FeatureMDNProxy, extract_features
from repro.video import DifferenceDetector, TrafficVideo

from bench_util import scale_label, timed_call, write_bench_result


def _record(metric: str, elapsed: float) -> None:
    """Fold one kernel's wall seconds into ``BENCH_micro_kernels.json``."""
    write_bench_result(
        "micro_kernels", scale=scale_label(), seconds=elapsed,
        **{f"{metric}_seconds": elapsed})


def build_relation(num_tuples=20_000, levels=16, certain=60, seed=0):
    rng = np.random.default_rng(seed)
    # Realistic shape: most frames concentrated at low scores.
    mus = rng.gamma(2.0, 1.2, size=num_tuples)
    pmf = np.zeros((num_tuples, levels))
    grid_scores = np.arange(levels)
    for start in range(0, num_tuples, 4_096):
        chunk = slice(start, min(start + 4_096, num_tuples))
        z = (grid_scores[None, :] - mus[chunk, None]) / 1.0
        w = np.exp(-0.5 * z * z)
        w[np.abs(z) > 3.0] = 0.0
        pmf[chunk] = w / w.sum(axis=1, keepdims=True)
    grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=levels)
    relation = UncertainRelation(np.arange(num_tuples), pmf, grid)
    top = np.argsort(-mus)[:certain]
    for position in top:
        relation.mark_certain(int(position), float(round(mus[position])))
    return relation


@pytest.fixture(scope="module")
def big_relation():
    return build_relation()


def test_topk_prob_incremental(benchmark, big_relation):
    """Eq. 3: O(1) confidence after O(L) updates."""
    state = ConfidenceState(big_relation)

    def run():
        return state.topk_prob(10)

    value = benchmark(run)
    _record("topk_prob_incremental", timed_call(run)[1])
    assert 0.0 <= value <= 1.0


def test_topk_prob_naive_recompute(benchmark, big_relation):
    """Ablation: recomputing Eq. 2 from scratch per iteration."""
    state = ConfidenceState(big_relation)

    def run():
        return state.topk_prob_direct(10)

    value = benchmark(run)
    _record("topk_prob_naive", timed_call(run)[1])
    assert 0.0 <= value <= 1.0


def test_select_candidate_early_stopping(benchmark, big_relation):
    relation = big_relation.copy()
    state = ConfidenceState(relation)
    selector = CandidateSelector(
        relation, state, SelectCandidateConfig(use_upper_bound=True))

    def run():
        return selector.select(0, 10, 11, batch_size=8)

    picked = benchmark(run)
    _record("select_candidate_early_stop", timed_call(run)[1])
    assert picked.size == 8
    # The whole point: only a small fraction of frames is examined.
    assert selector.stats.examine_fraction < 0.5


def test_select_candidate_exhaustive(benchmark, big_relation):
    """Ablation: computing E[X_f] for every uncertain frame."""
    relation = big_relation.copy()
    state = ConfidenceState(relation)
    selector = CandidateSelector(
        relation, state, SelectCandidateConfig(use_upper_bound=False))

    def run():
        return selector.select(0, 10, 11, batch_size=8)

    picked = benchmark(run)
    _record("select_candidate_exhaustive", timed_call(run)[1])
    assert picked.size == 8


def test_diff_detector_throughput(benchmark):
    video = TrafficVideo("bench-diff", 3_000, seed=1)

    def run():
        return DifferenceDetector().run(video)

    result, elapsed = timed_call(run)
    benchmark.pedantic(run, rounds=1, iterations=1)
    _record("diff_detector", elapsed)
    assert result.num_frames == 3_000


def test_feature_extraction_throughput(benchmark):
    video = TrafficVideo("bench-feat", 512, seed=2)
    pixels = video.batch_pixels(np.arange(512))

    def run():
        return extract_features(pixels)

    features = benchmark(run)
    _record("feature_extraction", timed_call(run)[1])
    assert features.shape[0] == 512


def test_mdn_inference_throughput(benchmark, trained_bench_proxy=None):
    video = TrafficVideo("bench-mdn", 2_000, seed=3)
    rng = np.random.default_rng(0)
    idx = rng.choice(2_000, 200, replace=False)
    proxy = FeatureMDNProxy(num_gaussians=4, num_hypotheses=16, seed=0)
    from repro.models import train_network
    train_network(
        proxy, video.batch_pixels(idx), video.counts[idx],
        epochs=5, batch_size=64, learning_rate=2e-3)
    pixels = video.batch_pixels(np.arange(1_000))

    def run():
        return proxy.predict_mixtures(pixels)

    mix = benchmark(run)
    _record("mdn_inference", timed_call(run)[1])
    assert mix.pi.shape[0] == 1_000
