"""Bench for Figure 5: impact of K.

Sweeps K over the paper's values on two videos and asserts the shape:
high precision throughout and broadly similar speedups, with small K
never slower than large K by a wide margin.
"""

import numpy as np

from repro.experiments import fig5
from repro.experiments.runner import counting_videos

from bench_util import (
    last_run_seconds,
    run_once,
    scale_label,
    write_bench_result,
)


def test_fig5_impact_of_k(bench_scale, benchmark):
    videos = counting_videos(bench_scale)[:2]
    records = run_once(
        benchmark, fig5.run, bench_scale,
        ks=(5, 25, 50, 100), videos=videos)
    print()
    print(fig5.render(records))
    write_bench_result(
        "fig5",
        scale=scale_label(bench_scale),
        seconds=last_run_seconds(),
        margin=float(min(
            r.metrics.precision for r in records)) - 0.7,
        records=len(records),
        mean_speedup=float(np.mean([r.speedup for r in records])),
    )

    assert len(records) == 8
    for record in records:
        assert record.extras["confidence"] >= 0.9
        assert record.metrics.precision >= 0.7, \
            f"{record.video} K={record.k}"

    for video in {r.video for r in records}:
        speeds = {r.k: r.speedup for r in records if r.video == video}
        # Small K tends to stop earlier (higher threshold scores).
        assert speeds[5] >= 0.7 * speeds[100]
