"""Bench for sliding-window maintenance: per-event cost vs window size.

Runs the *same* insert/expiry schedule against two windowed streams —
one window a quarter of the video, one three quarters — re-running a
from-scratch batch session over the window snapshot after every event.
Prints the per-event comparison and asserts the acceptance contract:

* every windowed report is byte-identical to the batch re-run over its
  window snapshot, at both window sizes (the equivalence the test
  suite certifies, re-checked at bench scale, where windows span
  multiple inference blocks);
* per-event **fresh oracle work tracks the delta, not the window
  length**: tripling the window must not meaningfully change the
  per-event fresh-confirmation cost;
* pure expiry ticks run zero fresh proxy inference (retraction is
  cache eviction, not recompute).
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.experiments.runner import (
    config_for,
    counting_videos,
    format_table,
)
from repro.oracle import counting_udf

from bench_util import scale_label, write_bench_result

NUM_ROUNDS = 3  # each round is one append followed by one tick
BOOTSTRAP_FRACTION = 0.4
WINDOW_FRACTIONS = (0.25, 0.75)


def _run_schedule(video, config, window_frames, schedule):
    """One windowed stream through ``schedule``; returns cost rows."""
    stream = Session.open_stream(
        video, counting_udf(video.object_label),
        initial_frames=int(BOOTSTRAP_FRACTION * len(video)),
        window_seconds=window_frames / video.fps, config=config)
    live = (stream.query().topk(10).guarantee(0.9)
            .deterministic_timing().subscribe())
    events = []
    for kind, size in schedule:
        started = time.perf_counter()
        result = stream.append(size) if kind == "append" \
            else stream.tick(size)
        live_seconds = time.perf_counter() - started

        batch = stream.batch_session()
        reference = (batch.query().topk(10).guarantee(0.9)
                     .deterministic_timing().run())
        assert reference.to_json() == live.latest.to_json(), (
            f"windowed report diverged from batch at watermark "
            f"{stream.watermark}, horizon {stream.horizon}, "
            f"window {window_frames}")
        if kind == "tick":
            assert result.fresh_inferred_frames == 0, (
                f"expiry ran fresh inference: "
                f"{result.fresh_inferred_frames} frames")
        events.append({
            "kind": kind,
            "size": size,
            "window_lo": stream.window_lo,
            "watermark": stream.watermark,
            "fresh_confirms": result.fresh_confirm_calls,
            "batch_calls": reference.oracle_calls,
            "live_seconds": live_seconds,
        })
    return events


def test_window_slide_cost_tracks_delta_not_window(bench_scale):
    bench_started = time.perf_counter()
    video = counting_videos(bench_scale)[0]
    config = config_for(bench_scale)
    bootstrap = int(BOOTSTRAP_FRACTION * len(video))
    chunk = (len(video) - bootstrap) // NUM_ROUNDS
    tick = chunk // 2
    schedule = [("append", chunk), ("tick", tick)] * NUM_ROUNDS

    windows = [
        max(int(fraction * len(video)), tick + 1)
        for fraction in WINDOW_FRACTIONS
    ]
    runs = {
        wf: _run_schedule(video, config, wf, schedule)
        for wf in windows
    }

    small, large = windows
    rows = [
        [
            f"{e_small['kind']}({e_small['size']})",
            f"{e_small['watermark']:,}",
            f"{e_small['fresh_confirms']}",
            f"{e_large['fresh_confirms']}",
            f"{e_small['batch_calls']}",
            f"{e_small['live_seconds']:.2f}s",
        ]
        for e_small, e_large in zip(runs[small], runs[large])
    ]
    print()
    print(format_table(
        ("event", "watermark", f"fresh(w={small})",
         f"fresh(w={large})", "batch-calls", "live-lat"),
        rows,
        title=f"Sliding window on {video.name} ({len(video):,} frames, "
              f"windows {small:,}/{large:,})",
    ))

    fresh_small = [e["fresh_confirms"] for e in runs[small]]
    fresh_large = [e["fresh_confirms"] for e in runs[large]]
    mean_small = sum(fresh_small) / len(fresh_small)
    mean_large = sum(fresh_large) / len(fresh_large)
    # Tripling the window may surface a few more candidates, but the
    # per-event physical spend must stay delta-shaped — far from the
    # 3x a window-proportional refresh would cost.
    bound = max(2.0 * mean_small, float(chunk))
    write_bench_result(
        "window",
        scale=scale_label(bench_scale),
        seconds=time.perf_counter() - bench_started,
        margin=1.0 - mean_large / max(bound, 1.0),
        rounds=NUM_ROUNDS,
        window_frames=windows,
        fresh_small=fresh_small,
        fresh_large=fresh_large,
        batch_calls=[e["batch_calls"] for e in runs[small]],
        byte_identical=True,
    )
    assert mean_large <= bound, (
        f"per-event fresh work scales with the window: "
        f"{fresh_large} (w={large}) vs {fresh_small} (w={small})")
