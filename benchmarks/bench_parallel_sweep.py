"""Bench for the parallel sweep executor: speedup vs. worker count.

Runs a fig5-style K sweep (two videos x four Ks) with Phase 1
prebuilt — the regime the pool accelerates — at 1, 2 and 4 workers,
printing the wall-clock speedup curve. Asserts the two halves of the
acceptance contract:

* reports are byte-identical (``QueryReport.to_json``) at every
  worker count, and
* with at least 4 usable CPUs, 4 workers run the sweep >= 2x faster
  than 1 worker (on fewer CPUs the speedup is reported, not asserted —
  a pool cannot beat the hardware).
"""

from __future__ import annotations

import time

from repro.experiments.runner import (
    config_for,
    counting_videos,
    format_table,
)
from repro.api import Session
from repro.oracle import counting_udf
from repro.parallel import ParallelRunner

from bench_util import available_cpus, scale_label, write_bench_result

WORKER_COUNTS = (1, 2, 4)
SWEEP_KS = (5, 25, 50, 100)


def _sweep_grid(bench_scale):
    grid = []
    for video in counting_videos(bench_scale)[:2]:
        session = Session(
            video, counting_udf(video.object_label),
            config=config_for(bench_scale))
        # Prebuild (and cache) Phase 1 so every timed run measures the
        # fanned Phase 2 work, not a shared one-off build.
        session.phase1()
        base = session.query().guarantee(0.9)
        grid.extend(
            (session, base.topk(k).plan()) for k in SWEEP_KS)
    return grid


def test_parallel_sweep_speedup(bench_scale):
    grid = _sweep_grid(bench_scale)

    timings = {}
    jsons = {}
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        reports = ParallelRunner(workers).run_grid(grid)
        timings[workers] = time.perf_counter() - start
        jsons[workers] = [report.to_json() for report in reports]

    rows = [
        [
            f"{workers}",
            f"{timings[workers]:.2f}s",
            f"{timings[1] / timings[workers]:.2f}x",
        ]
        for workers in WORKER_COUNTS
    ]
    print()
    print(format_table(
        ("workers", "wall-clock", "speedup"),
        rows,
        title=f"Parallel sweep: {len(grid)} grid points, "
              f"{available_cpus()} usable CPUs",
    ))

    speedup = timings[1] / timings[4]
    write_bench_result(
        "parallel_sweep",
        scale=scale_label(bench_scale),
        seconds=sum(timings.values()),
        margin=speedup - 2.0 if available_cpus() >= 4 else None,
        grid_points=len(grid),
        wall_seconds={str(w): timings[w] for w in WORKER_COUNTS},
        speedup_4=speedup,
        byte_identical=True,
    )

    # Bit-identical reports at every worker count.
    for workers in WORKER_COUNTS[1:]:
        assert jsons[workers] == jsons[1], f"workers={workers}"

    # Wall-clock acceptance: >= 2x at 4 workers, when the hardware can.
    if available_cpus() >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with 4 workers on "
            f"{available_cpus()} CPUs, got {speedup:.2f}x")
