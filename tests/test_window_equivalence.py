"""Equivalence certification for sliding-window standing queries.

The acceptance contract (mirroring ``test_streaming_equivalence.py``):
after *any* interleaving of inserts (``append``) and expiries
(``tick``), a windowed subscription's report — answer, confidence,
*and* deterministic-timing ledgers — is byte-identical
(``QueryReport.to_json``) to a from-scratch batch run over the window
snapshot. Schedules are drawn by hypothesis; batch references are
cached per ``(watermark, horizon, window)`` state so repeated states
certify against the same bytes.

Also pinned here: the window == full-history and window < one
inference block corners, the inline/process execution lanes, the
service-hosted lane, checkpoint/resume of window state, and the
``StreamingConfig.max_history`` interaction — history pruning must
never evict frames still inside an open window (DESIGN.md §13).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EverestConfig, Session, WindowedSession, WindowedVideo
from repro.config import Phase1Config
from repro.errors import ConfigurationError, QueryError, VideoError
from repro.oracle import counting_udf
from repro.streaming import StreamingConfig
from repro.video import TrafficVideo

NUM_FRAMES = 480
BOOTSTRAP = 240
FPS = 30.0  # TrafficVideo's frame rate
WINDOW_FRAMES = 200
WINDOW_SECONDS = WINDOW_FRAMES / FPS

#: Small-but-real engine configuration so each example stays fast.
STREAM_CONFIG = EverestConfig(
    phase1=Phase1Config(
        sample_fraction=0.05,
        min_train_samples=96,
        holdout_samples=48,
        cmdn_grid=((3, 12),),
        epochs=15,
    ),
)


def make_source() -> TrafficVideo:
    return TrafficVideo("window-eq", NUM_FRAMES, seed=17)


def open_window_stream(window_frames: int = WINDOW_FRAMES,
                       **kwargs) -> WindowedSession:
    return Session.open_stream(
        make_source(), counting_udf("car"), initial_frames=BOOTSTRAP,
        window_seconds=window_frames / FPS, config=STREAM_CONFIG,
        **kwargs)


def build_query(session):
    return session.query().topk(3).guarantee(0.85).deterministic_timing()


#: Batch reference reports, one per distinct window snapshot.
_BATCH_REF: Dict[Tuple[int, int, int], str] = {}


def batch_reference(stream) -> str:
    """The from-scratch batch bytes for the stream's current window.

    ``batch_session()`` seals the prefix (horizon included), and a
    plain batch query over the sealed :class:`WindowedVideo` compiles
    to the same window-restricted plan — no streaming machinery on
    the reference side at all.
    """
    key = (stream.watermark, stream.horizon, stream.window_frames)
    if key not in _BATCH_REF:
        batch = stream.batch_session()
        _BATCH_REF[key] = build_query(batch).run().to_json()
    return _BATCH_REF[key]


def random_events(seed: int,
                  window_frames: int) -> List[Tuple[str, int]]:
    """Draw 2..5 interleaved append/tick events that stay legal."""
    rng = np.random.default_rng(seed)
    events: List[Tuple[str, int]] = []
    watermark, horizon = BOOTSTRAP, BOOTSTRAP
    for _ in range(int(rng.integers(2, 6))):
        remaining = NUM_FRAMES - watermark
        # tick() refuses to empty the window: keep at least one frame.
        max_tick = watermark + window_frames - horizon - 1
        kinds = []
        if remaining > 0:
            kinds.append("append")
        if max_tick >= 1:
            kinds.append("tick")
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "append":
            size = int(rng.integers(1, remaining + 1))
            watermark += size
            horizon = max(horizon, watermark)
        else:
            size = int(rng.integers(1, max_tick + 1))
            horizon += size
        events.append((kind, size))
    return events


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10**9))
def test_windowed_reports_bit_identical_for_any_schedule(seed):
    events = random_events(seed, WINDOW_FRAMES)
    stream = open_window_stream()
    live = build_query(stream).subscribe()
    assert live.latest.to_json() == batch_reference(stream)
    for kind, size in events:
        result = stream.append(size) if kind == "append" \
            else stream.tick(size)
        # One report per event — delivered AND identical to a fresh
        # batch run over the window snapshot, byte for byte.
        assert len(result.reports) == 1
        assert result.reports[0].to_json() == live.latest.to_json()
        assert live.latest.to_json() == batch_reference(stream)
    assert len(live.reports) == len(events) + 1
    assert stream.window_lo == max(0, stream.horizon - WINDOW_FRAMES)


def test_every_event_matches_batch_ledger_charge_for_charge():
    stream = open_window_stream()
    live = build_query(stream).subscribe()
    for kind, size in [("append", 90), ("tick", 40), ("append", 150),
                       ("tick", 120)]:
        stream.append(size) if kind == "append" else stream.tick(size)
        batch = stream.batch_session()
        reference = build_query(batch).run()
        assert live.latest.to_json() == reference.to_json()
        # The Phase-1 ledgers agree charge for charge, not just in the
        # report projection: same units and the same float seconds.
        live_ledger = stream.phase1_cost_model()
        batch_ledger = batch.phase1_cost_model()
        assert live_ledger.breakdown() == batch_ledger.breakdown()
        for key in live_ledger.breakdown():
            assert live_ledger.units(key) == batch_ledger.units(key)


def test_window_spanning_full_history_keeps_every_frame():
    # A window as long as the whole source never expires anything:
    # the windowed answer must equal the unwindowed one.
    stream = open_window_stream(window_frames=NUM_FRAMES)
    live = build_query(stream).subscribe()
    stream.append(140)
    stream.tick(50)
    stream.append(100)
    assert stream.window_lo == 0
    assert live.latest.to_json() == batch_reference(stream)
    plain = Session.open_stream(
        make_source(), counting_udf("car"), initial_frames=BOOTSTRAP,
        config=STREAM_CONFIG)
    plain.append(140)
    plain.append(100)
    reference = build_query(plain.batch_session()).run()
    assert live.latest.answer_ids == reference.answer_ids
    assert live.latest.answer_scores == reference.answer_scores
    assert live.latest.num_tuples == reference.num_tuples


def test_window_smaller_than_one_inference_block():
    # 64 frames is far below the 512-frame inference block: eviction
    # and rebuild operate inside a single block.
    stream = open_window_stream(window_frames=64)
    live = build_query(stream).subscribe()
    assert stream.window_lo == BOOTSTRAP - 64
    for kind, size in [("append", 80), ("tick", 30), ("append", 160),
                       ("tick", 60)]:
        stream.append(size) if kind == "append" else stream.tick(size)
        assert live.latest.to_json() == batch_reference(stream)
        # The diff detector may drop near-duplicates, so the relation
        # holds at most (never more than) the window's frames.
        assert live.latest.num_tuples <= stream.video.window_size


def test_windowed_process_lane_matches_inline():
    stream = open_window_stream()
    stream.append(120)
    stream.tick(60)
    inline = build_query(stream).run()
    # Streaming state is single-process, so the sweep lane runs on the
    # batch side: a pooled run over the window snapshot must land on
    # the same bytes as the live windowed answer.
    serial_sweep = build_query(stream).run(parallel=True)
    process = build_query(stream.batch_session()).run(
        parallel=True, workers=2)
    assert inline.to_json() == serial_sweep.to_json()
    assert inline.to_json() == process.to_json()
    assert inline.to_json() == batch_reference(stream)


def test_service_hosted_windowed_stream_round_trip():
    from repro import QueryService

    with QueryService() as service:
        stream = service.open_stream(
            make_source(), counting_udf("car"),
            initial_frames=BOOTSTRAP, window_seconds=WINDOW_SECONDS,
            config=STREAM_CONFIG)
        assert isinstance(stream, WindowedSession)
        live = build_query(stream).subscribe()
        stream.append(120)
        result = stream.tick(80)
        # The expiry refresh went through the scheduler dispatcher and
        # still produced the exact batch bytes.
        assert len(result.reports) == 1
        assert live.latest.to_json() == batch_reference(stream)


def test_max_history_pruning_composes_with_window_expiry():
    # Satellite: history pruning bounds *delivered* results only; it
    # must never evict frames still inside the open window or disturb
    # the maintained answer.
    stream = open_window_stream(
        streaming=StreamingConfig(max_history=1))
    live = build_query(stream).subscribe()
    for kind, size in [("append", 120), ("tick", 60), ("append", 120),
                       ("tick", 60)]:
        stream.append(size) if kind == "append" else stream.tick(size)
        assert live.latest.to_json() == batch_reference(stream)
    assert len(stream.append_log) == 1
    assert len(stream.expiry_log) == 1
    assert len(live.reports) == 1
    assert stream.window_lo == stream.horizon - WINDOW_FRAMES
    assert stream.video.window_size == \
        stream.watermark - stream.window_lo


def test_resume_restores_window_state_and_equivalence(tmp_path):
    path = tmp_path / "store"
    stream = open_window_stream()
    live = build_query(stream).subscribe()
    stream.append(120)
    stream.tick(60)
    stream.checkpoint(path)

    resumed = Session.resume(path)
    assert isinstance(resumed, WindowedSession)
    assert resumed.horizon == stream.horizon
    assert resumed.window_frames == stream.window_frames
    assert len(resumed.expiry_log) == 1
    re_live = build_query(resumed).subscribe()
    assert re_live.latest.to_json() == live.latest.to_json()

    # Events after resume continue the equivalence.
    resumed.append(60)
    resumed.tick(40)
    assert re_live.latest.to_json() == batch_reference(resumed)


# ----------------------------------------------------------------------
# Validation corners
# ----------------------------------------------------------------------
def test_windowed_video_tick_and_snapshot_validation():
    video = WindowedVideo(
        make_source(), BOOTSTRAP, window_seconds=WINDOW_SECONDS)
    with pytest.raises(ConfigurationError):
        video.tick(0)
    with pytest.raises(ConfigurationError):
        video.tick(2.5)
    # Advancing the clock until no arrived frame remains in the window
    # is refused (an empty window has no Top-K answer)...
    with pytest.raises(VideoError):
        video.tick(WINDOW_FRAMES)
    # ...but one frame short of that is fine.
    assert video.tick(WINDOW_FRAMES - 1) == BOOTSTRAP + WINDOW_FRAMES - 1
    assert video.window_lo == BOOTSTRAP - 1

    snap = video.snapshot()
    assert snap.sealed
    assert snap.horizon == video.horizon
    assert snap.window_lo == video.window_lo
    with pytest.raises(VideoError):
        snap.tick(1)


def test_window_clause_validation_and_narrower_windows():
    stream = open_window_stream()
    query = stream.query().topk(3).guarantee(0.85)
    with pytest.raises(QueryError):
        query.window(seconds=0)
    with pytest.raises(QueryError):
        query.window(seconds=float("inf"))
    with pytest.raises(QueryError):
        query.windows(size=25).window(seconds=1.0)
    with pytest.raises(QueryError):
        query.window(seconds=1.0).windows(size=25)
    # Wider than the session's window: those frames are gone.
    with pytest.raises(QueryError):
        query.window(seconds=WINDOW_SECONDS * 4).plan()
    # Narrower is a legitimate refinement, still batch-equivalent.
    narrower = query.deterministic_timing() \
        .window(seconds=100 / FPS)
    batch = stream.batch_session()
    reference = batch.query().topk(3).guarantee(0.85) \
        .deterministic_timing().window(seconds=100 / FPS).run()
    assert narrower.run().to_json() == reference.to_json()


def test_fully_expired_window_is_a_clean_error():
    stream = open_window_stream()
    stream.tick(150)  # horizon 390, watermark still 240
    # An explicit 100-frame window would start at 290 >= 240: expired.
    query = stream.query().topk(3).guarantee(0.85) \
        .window(seconds=100 / FPS)
    with pytest.raises(QueryError):
        query.plan()


def test_windowed_session_constructor_guards():
    udf = counting_udf("car")
    with pytest.raises(QueryError):
        WindowedSession(make_source(), udf, initial_frames=BOOTSTRAP)
    with pytest.raises(QueryError):
        WindowedSession(make_source(), udf,
                        window_seconds=WINDOW_SECONDS)
    from repro.video.streaming import StreamingVideo
    with pytest.raises(QueryError):
        WindowedSession(StreamingVideo(make_source(), BOOTSTRAP), udf,
                        window_seconds=WINDOW_SECONDS)
    video = WindowedVideo(
        make_source(), BOOTSTRAP, window_seconds=WINDOW_SECONDS)
    with pytest.raises(QueryError):
        WindowedSession(video, udf, window_seconds=WINDOW_SECONDS * 2)
