"""Tests for the Section 4 baselines."""

import numpy as np
import pytest

from repro.baselines import (
    calibrated_select_and_topk,
    cmdn_only_topk,
    hog_topk,
    scan_and_test,
    select_and_topk,
    tiny_topk,
)
from repro.baselines.hog import HogCounter, hog_cells, window_descriptors
from repro.errors import ConfigurationError, NotFittedError
from repro.metrics import evaluate_answer
from repro.oracle import counting_udf


class TestScanAndTest:
    def test_answer_is_exact(self, traffic_video):
        result = scan_and_test(traffic_video, counting_udf("car"), 5)
        truth = traffic_video.counts.astype(float)
        metrics = evaluate_answer(result.answer_ids, truth, 5)
        assert metrics.precision == 1.0
        assert metrics.score_error == 0.0

    def test_cost_is_full_scan(self, traffic_video):
        result = scan_and_test(traffic_video, counting_udf("car"), 5)
        expected = len(traffic_video) * (0.2 + 0.0003)
        assert result.simulated_seconds == pytest.approx(expected)

    def test_descending_scores(self, traffic_video):
        result = scan_and_test(traffic_video, counting_udf("car"), 10)
        assert result.answer_scores == sorted(
            result.answer_scores, reverse=True)


class TestHog:
    def test_cells_shape(self, traffic_video):
        cells = hog_cells(traffic_video.batch_pixels([0, 1]))
        assert cells.shape == (2, 6, 6, 9)

    def test_descriptors_normalized(self, traffic_video):
        descriptors, centers = window_descriptors(
            traffic_video.batch_pixels([0]))
        norms = np.linalg.norm(descriptors[0], axis=1)
        assert (norms <= 1.0 + 1e-9).all()
        assert centers.shape[0] == descriptors.shape[1]

    def test_counter_requires_fit(self, traffic_video):
        with pytest.raises(NotFittedError):
            HogCounter().count_batch(traffic_video.batch_pixels([0]))

    def test_hog_counts_correlate_weakly(self, traffic_video):
        """HOG should carry *some* signal but be visibly noisy."""
        rng = np.random.default_rng(0)
        train = rng.choice(len(traffic_video), 150, replace=False)
        counter = HogCounter()
        counter.fit(traffic_video, train)
        idx = np.arange(0, len(traffic_video), 10)
        counts = counter.count_batch(traffic_video.batch_pixels(idx))
        errors = counts - traffic_video.counts[idx]
        assert np.abs(errors).mean() > 0.3, "HOG should be noticeably noisy"

    def test_topk_runs_and_is_slower_than_everest_cost(self, traffic_video):
        result = hog_topk(traffic_video, 5, min_train=100)
        assert len(result.answer_ids) == 5
        # 0.08s per frame + decode.
        assert result.simulated_seconds == pytest.approx(
            len(traffic_video) * 0.0803)

    def test_rejects_bad_fraction(self, traffic_video):
        with pytest.raises(ConfigurationError):
            hog_topk(traffic_video, 5, train_fraction=0.0)


class TestTiny:
    def test_fast_but_inaccurate(self, traffic_video):
        result = tiny_topk(traffic_video, 10, object_label="car")
        truth = traffic_video.counts.astype(float)
        metrics = evaluate_answer(result.answer_ids, truth, 10)
        # Cheap: 0.01s + decode per frame.
        assert result.simulated_seconds == pytest.approx(
            len(traffic_video) * 0.0103)
        # Noisy: never better than oracle, typically much worse.
        assert metrics.score_error > 0.0

    def test_deterministic(self, traffic_video):
        a = tiny_topk(traffic_video, 5, object_label="car")
        b = tiny_topk(traffic_video, 5, object_label="car")
        assert a.answer_ids == b.answer_ids


class TestCmdnOnly:
    def test_runs_and_is_cheap(self, traffic_video, fast_config):
        result = cmdn_only_topk(
            traffic_video, counting_udf("car"), 5, config=fast_config)
        assert len(result.answer_ids) == 5
        scan = len(traffic_video) * 0.2003
        assert result.simulated_seconds < scan

    def test_ranked_by_expected_score(self, traffic_video, fast_config):
        result = cmdn_only_topk(
            traffic_video, counting_udf("car"), 5, config=fast_config)
        assert result.answer_scores == sorted(
            result.answer_scores, reverse=True)
        assert all(0 <= i < len(traffic_video) for i in result.answer_ids)


class TestSelectAndTopk:
    def test_single_lambda_run(self, traffic_video):
        result = select_and_topk(
            traffic_video, counting_udf("car"), 5, lam=0.6, min_train=200)
        if result is not None:
            assert len(result.answer_ids) == 5
            assert result.extras["candidates"] >= 5
            # Verified scores are oracle-exact.
            for frame, score in zip(result.answer_ids,
                                    result.answer_scores):
                assert score == traffic_video.true_count(frame)

    def test_infeasible_lambda_returns_none(self, traffic_video):
        # lambda = 1.0 selects only frames at the sample max; the
        # classifier threshold usually leaves < K candidates.
        result = select_and_topk(
            traffic_video, counting_udf("car"), 1000, lam=1.0,
            min_train=100)
        assert result is None

    def test_invalid_lambda(self, traffic_video):
        with pytest.raises(ConfigurationError):
            select_and_topk(
                traffic_video, counting_udf("car"), 5, lam=1.5)

    def test_calibration_prefers_precise_runs(self, traffic_video):
        truth = traffic_video.counts.astype(float)
        result = calibrated_select_and_topk(
            traffic_video, counting_udf("car"), 5, truth,
            lambdas=(0.9, 0.6), precision_target=0.9)
        if result is not None:
            assert "precision" in result.extras
