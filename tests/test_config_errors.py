"""Tests for configuration validation and the error hierarchy."""

import pytest

from repro import errors
from repro.config import (
    DiffDetectorConfig,
    EverestConfig,
    PAPER_CMDN_GRID,
    Phase1Config,
    Phase2Config,
    SelectCandidateConfig,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.ConfigurationError,
            errors.VideoError,
            errors.FrameIndexError,
            errors.ModelError,
            errors.NotFittedError,
            errors.ShapeError,
            errors.OracleError,
            errors.OracleBudgetExceededError,
            errors.UncertainRelationError,
            errors.QueryError,
            errors.GuaranteeUnreachableError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_frame_index_error_is_index_error(self):
        error = errors.FrameIndexError(10, 5)
        assert isinstance(error, IndexError)
        assert error.index == 10 and error.num_frames == 5

    def test_budget_error_carries_budget(self):
        error = errors.OracleBudgetExceededError(17)
        assert error.budget == 17
        assert "17" in str(error)


class TestPhase1Config:
    def test_paper_grid_has_twelve_models(self):
        assert len(PAPER_CMDN_GRID) == 12
        assert (5, 20) in PAPER_CMDN_GRID
        assert (15, 40) in PAPER_CMDN_GRID

    def test_train_sample_size_formula(self):
        config = Phase1Config(
            sample_fraction=0.005, min_train_samples=500,
            max_train_samples=30_000)
        # Cap binds for very long videos.
        assert config.train_sample_size(10_000_000) == 30_000
        # Floor binds for short videos.
        assert config.train_sample_size(20_000) == 500
        # Proportional in between.
        assert config.train_sample_size(1_000_000) == 5_000
        # Never exceeds the video.
        assert config.train_sample_size(100) == 100

    def test_holdout_capped_by_video_length(self):
        config = Phase1Config(holdout_samples=300)
        assert config.holdout_sample_size(90) == 30
        assert config.holdout_sample_size(100_000) == 300

    def test_validation(self):
        with pytest.raises(errors.ConfigurationError):
            Phase1Config(sample_fraction=0.0)
        with pytest.raises(errors.ConfigurationError):
            Phase1Config(cmdn_grid=())
        with pytest.raises(errors.ConfigurationError):
            Phase1Config(epochs=0)
        with pytest.raises(errors.ConfigurationError):
            Phase1Config(truncate_sigmas=0.0)


class TestOtherConfigs:
    def test_diff_validation(self):
        with pytest.raises(errors.ConfigurationError):
            DiffDetectorConfig(mse_threshold=-1.0)
        with pytest.raises(errors.ConfigurationError):
            DiffDetectorConfig(clip_size=0)

    def test_phase2_validation(self):
        with pytest.raises(errors.ConfigurationError):
            Phase2Config(batch_size=0)
        with pytest.raises(errors.ConfigurationError):
            Phase2Config(oracle_budget=0)
        with pytest.raises(errors.ConfigurationError):
            Phase2Config(window_sample_fraction=0.0)

    def test_select_candidate_validation(self):
        with pytest.raises(errors.ConfigurationError):
            SelectCandidateConfig(resort_every=0)
        with pytest.raises(errors.ConfigurationError):
            SelectCandidateConfig(resort_warmup=-1)

    def test_fast_preset_is_valid(self):
        config = EverestConfig.fast()
        assert config.phase1.epochs >= 1
        assert config.phase2.batch_size >= 1

    def test_paper_defaults(self):
        config = EverestConfig()
        assert config.phase2.batch_size == 8  # paper Section 3.5
        assert config.diff.clip_size == 30    # paper Section 4
        assert config.diff.mse_threshold == 1e-4
        assert config.phase2.window_sample_fraction == 0.1
        assert config.phase1.truncate_sigmas == 3.0
