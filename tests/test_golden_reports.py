"""Golden-report fixtures: small fig5/6/7/9-style sweeps, checked in.

The checked-in JSON under ``tests/data/`` pins the exact
`QueryReport` output of four deterministic sweeps — the K sweep
(fig5), the threshold sweep (fig6), the window sweep (fig7), and the
depth-UDF scenarios (fig9). The tests assert

* a fresh serial run reproduces the fixtures byte-for-byte,
* process-pool runs at several worker counts reproduce the same bytes
  (worker count cannot leak into a report), and
* ``QueryReport.from_json`` round-trips every fixture byte-for-byte.

Regenerate after an intentional report change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_reports.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import EverestConfig, ParallelRunner, Session, VideoCorpus
from repro.core.result import QueryReport
from repro.oracle import counting_udf
from repro.oracle.depth import tailgating_udf
from repro.video import DashcamVideo, TrafficVideo

GOLDEN_DIR = pathlib.Path(__file__).parent / "data"

#: The recorded sweeps: fig5-style (K sweep), fig6-style (threshold
#: sweep), fig7-style (window-size sweep) and fig9-style (depth-UDF
#: scenarios), all deterministic by construction.
SWEEPS = ("fig5_quick", "fig6_quick", "fig7_quick", "fig9_quick")

#: Every recorded fixture, including the 3-shard federated corpus
#: sweep and the sliding-window stream (which run through their own
#: engines, not ParallelRunner).
ALL_FIXTURES = SWEEPS + ("corpus_quick", "window_quick")


def _dump(reports) -> str:
    return json.dumps([r.to_dict() for r in reports], indent=1) + "\n"


@pytest.fixture(scope="module")
def golden_session():
    video = TrafficVideo("golden", 700, seed=11)
    return Session(video, counting_udf("car"), config=EverestConfig.fast())


@pytest.fixture(scope="module")
def golden_dashcam_session():
    video = DashcamVideo("golden-dash", 700, seed=12)
    return Session(video, tailgating_udf(), config=EverestConfig.fast())


@pytest.fixture(scope="module")
def golden_plans(golden_session, golden_dashcam_session):
    """name -> (session, plans): each sweep runs on its own session."""
    base = golden_session.query().guarantee(0.9).deterministic_timing()
    dash = golden_dashcam_session.query().deterministic_timing()
    return {
        "fig5_quick": (golden_session, [
            base.topk(k).plan() for k in (3, 5)]),
        "fig6_quick": (golden_session, [
            base.topk(4).guarantee(thres).plan()
            for thres in (0.5, 0.9, 0.99)]),
        "fig7_quick": (golden_session, [
            base.topk(4).plan(),
            base.topk(4).windows(size=20).plan(),
        ]),
        "fig9_quick": (golden_dashcam_session, [
            dash.topk(3).guarantee(0.9).plan(),
            dash.topk(5).guarantee(0.9).plan(),
            dash.topk(3).guarantee(0.75).plan(),
            dash.topk(3).guarantee(0.9).windows(size=20).plan(),
        ]),
    }


@pytest.fixture(scope="module")
def serial_reports(golden_plans):
    reports = {
        name: ParallelRunner(1).run_sweep(session, plans)
        for name, (session, plans) in golden_plans.items()
    }
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, sweep in reports.items():
            (GOLDEN_DIR / f"{name}.json").write_text(_dump(sweep))
    return reports


@pytest.mark.parametrize("name", SWEEPS)
def test_serial_sweep_matches_golden_fixture(serial_reports, name):
    fixture = (GOLDEN_DIR / f"{name}.json").read_text()
    assert _dump(serial_reports[name]) == fixture


@pytest.mark.parametrize("workers", [2, 3])
def test_pooled_sweeps_match_golden_fixtures(golden_plans, workers):
    for name, (session, plans) in golden_plans.items():
        pooled = ParallelRunner(workers).run_sweep(session, plans)
        fixture = (GOLDEN_DIR / f"{name}.json").read_text()
        assert _dump(pooled) == fixture, f"{name} workers={workers}"


@pytest.mark.parametrize("name", ALL_FIXTURES)
def test_from_json_round_trips_byte_for_byte(name):
    payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert payload, "fixture must contain reports"
    for entry in payload:
        text = json.dumps(entry)
        report = QueryReport.from_json(text)
        assert report.to_json() == text
        # And a second decode/encode cycle is a fixed point.
        again = QueryReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()
        assert again == report


def test_golden_reports_answer_their_queries():
    for name in ALL_FIXTURES:
        payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        for entry in payload:
            report = QueryReport.from_dict(entry)
            assert report.confidence >= report.thres
            assert len(report.answer_ids) == report.k


# ----------------------------------------------------------------------
# The 3-shard federated corpus sweep (DESIGN.md §9).


@pytest.fixture(scope="module")
def golden_corpus():
    videos = [
        TrafficVideo(f"golden-shard{i}", 300, seed=21 + i)
        for i in range(3)
    ]
    corpus = VideoCorpus.open(
        videos, counting_udf("car"), config=EverestConfig.fast())
    return corpus, videos


def _corpus_queries(corpus):
    base = corpus.query().guarantee(0.9).deterministic_timing()
    return [
        base.topk(3),
        base.topk(5),
        base.topk(3).guarantee(0.99),
        base.topk(4).oracle_budget(400),
    ]


@pytest.fixture(scope="module")
def corpus_reports(golden_corpus):
    corpus, _ = golden_corpus
    reports = [query.run() for query in _corpus_queries(corpus)]
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        (GOLDEN_DIR / "corpus_quick.json").write_text(_dump(reports))
    return reports


def test_federated_corpus_matches_golden_fixture(corpus_reports):
    fixture = (GOLDEN_DIR / "corpus_quick.json").read_text()
    assert _dump(corpus_reports) == fixture


def test_corpus_golden_equals_concatenated_reference(golden_corpus):
    """The recorded federated bytes double as an equivalence pin: a
    plain executor over the concat view with the merged entry lands on
    the same fixture."""
    from repro.api.executor import QueryExecutor
    from repro.video.views import ConcatVideo

    corpus, videos = golden_corpus
    state = corpus.merged_state()
    session = Session(
        ConcatVideo(videos, name=corpus.name),
        counting_udf("car"), config=EverestConfig.fast())
    session.adopt_phase1(state.entry, EverestConfig.fast())
    executor = QueryExecutor(session)
    reports = [
        executor.execute(query.plan()) for query in _corpus_queries(corpus)
    ]
    fixture = (GOLDEN_DIR / "corpus_quick.json").read_text()
    assert _dump(reports) == fixture


# ----------------------------------------------------------------------
# The sliding-window stream (DESIGN.md §13): one report per insert
# (append) and per expiry (tick), recorded in event order.

WINDOW_EVENTS = (
    ("append", 150), ("tick", 64), ("append", 150), ("tick", 64))


@pytest.fixture(scope="module")
def window_reports():
    stream = Session.open_stream(
        TrafficVideo("golden-win", 600, seed=13), counting_udf("car"),
        initial_frames=300, window_seconds=256 / 30.0,
        config=EverestConfig.fast())
    live = stream.query().topk(4).guarantee(0.9) \
        .deterministic_timing().subscribe()
    for kind, size in WINDOW_EVENTS:
        if kind == "append":
            stream.append(size)
        else:
            stream.tick(size)
    reports = list(live.reports)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        (GOLDEN_DIR / "window_quick.json").write_text(_dump(reports))
    return reports


def test_windowed_stream_matches_golden_fixture(window_reports):
    fixture = (GOLDEN_DIR / "window_quick.json").read_text()
    assert len(window_reports) == len(WINDOW_EVENTS) + 1
    assert _dump(window_reports) == fixture


def test_query_service_reproduces_golden_fixtures(golden_plans):
    """Concurrent service execution lands on the same recorded bytes."""
    from repro import QueryService

    sessions = {session for session, _ in golden_plans.values()}
    try:
        with QueryService(workers=3, use_processes=False) as service:
            futures = {}
            for name, (session, plans) in golden_plans.items():
                service.adopt_session(session)
                futures[name] = [
                    service.submit(plan, session=session) for plan in plans]
            for name, sweep in futures.items():
                fixture = (GOLDEN_DIR / f"{name}.json").read_text()
                reports = service.gather(sweep, timeout=120)
                assert _dump(reports) == fixture, name
    finally:
        # The module-scoped sessions outlive this service: unbind them.
        for session in sessions:
            session.bind_service(None, None)
