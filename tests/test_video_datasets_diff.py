"""Tests for the dataset registry, Visual Road suite, difference
detector, and prefetching reader."""

import numpy as np
import pytest

from repro.config import DiffDetectorConfig
from repro.errors import ConfigurationError
from repro.oracle import CostModel
from repro.video import (
    DATASETS,
    DifferenceDetector,
    TrafficVideo,
    VideoReader,
    build_dataset,
    dataset_table,
    visual_road_suite,
    visual_road_video,
)
from repro.video.datasets import COUNTING_DATASETS, DASHCAM_DATASETS


class TestDatasets:
    def test_registry_mirrors_table7(self):
        assert len(COUNTING_DATASETS) == 5
        assert len(DASHCAM_DATASETS) == 2
        assert set(DATASETS) == set(COUNTING_DATASETS) | set(DASHCAM_DATASETS)

    def test_paper_metadata(self):
        taipei = DATASETS["taipei-bus"]
        assert taipei.paper_frames == 32_488_000
        assert taipei.paper_hours == 300.8
        assert taipei.object_of_interest == "car"

    def test_build_counting(self):
        video = build_dataset("archie", 1 / 1000, min_frames=1_000)
        assert video.name == "archie"
        assert len(video) == 2_130
        assert video.object_label == "car"

    def test_build_dashcam(self):
        video = build_dataset(
            "dashcam-california", 1 / 500, min_frames=100)
        assert hasattr(video, "distances")
        assert len(video) == 648

    def test_min_frames_floor(self):
        video = build_dataset("archie", 1e-9, min_frames=500)
        assert len(video) == 500

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            build_dataset("nope")

    def test_relative_sizes_preserved(self):
        scale = 1 / 500
        taipei = DATASETS["taipei-bus"].scaled_frames(scale, 1)
        archie = DATASETS["archie"].scaled_frames(scale, 1)
        ratio = taipei / archie
        paper_ratio = 32_488_000 / 2_130_000
        assert abs(ratio - paper_ratio) / paper_ratio < 0.01

    def test_dataset_table_renders(self):
        table = dataset_table()
        assert "taipei-bus" in table
        assert "1920x1080" in table
        assert len(table.splitlines()) == 2 + len(DATASETS)


class TestVisualRoad:
    def test_suite_shares_scene(self):
        suite = visual_road_suite((50, 250), num_frames=600)
        assert [v.name for v in suite] == \
            ["visual-road-50", "visual-road-250"]
        # Same camera/scene: identical trajectory parameters.
        assert np.array_equal(suite[0]._speed_x[:4], suite[1]._speed_x[:4])

    def test_density_scales_visible_counts(self):
        low = visual_road_video(50, num_frames=4_000)
        high = visual_road_video(250, num_frames=4_000)
        assert high.counts.mean() > 2 * low.counts.mean()

    def test_concatenated_clips(self):
        video = visual_road_video(100, num_frames=1_000, num_clips=4)
        assert len(video) == 1_000

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            visual_road_video(0)


class TestDifferenceDetector:
    def test_static_video_collapses(self):
        video = TrafficVideo(
            "static", 300, seed=1, noise_level=0.0,
            base_level=0.0, burst_amplitude=0.0, noise_scale=0.0,
            illumination_amplitude=0.0, distractor_mean=0.0)
        result = DifferenceDetector().run(video)
        # One retained representative per clip of 30 frames.
        assert result.num_retained == 300 // 30

    def test_zero_threshold_retains_everything(self, traffic_video):
        config = DiffDetectorConfig(mse_threshold=0.0)
        result = DifferenceDetector(config).run(traffic_video)
        assert result.num_retained == len(traffic_video)
        assert result.reduction_ratio == 0.0

    def test_representative_is_retained(self, traffic_video):
        result = DifferenceDetector().run(traffic_video)
        retained = set(result.retained.tolist())
        for i in range(0, len(traffic_video), 37):
            assert int(result.representative[i]) in retained

    def test_retained_map_to_themselves(self, traffic_video):
        result = DifferenceDetector().run(traffic_video)
        for frame in result.retained[:50]:
            assert result.representative[frame] == frame

    def test_segments_partition_video(self, traffic_video):
        result = DifferenceDetector().run(traffic_video)
        segments = result.segments()
        joined = np.concatenate(segments)
        assert np.array_equal(joined, np.arange(len(traffic_video)))
        for segment in segments:
            reps = result.representative[segment]
            assert np.unique(reps).size == 1

    def test_mse_symmetric_zero(self):
        detector = DifferenceDetector()
        frame = np.random.default_rng(0).random((8, 8))
        assert detector.mse(frame, frame) == 0.0
        other = frame + 0.1
        assert detector.mse(frame, other) == pytest.approx(0.01)

    def test_discards_near_duplicates(self, traffic_video):
        result = DifferenceDetector().run(traffic_video)
        assert 0.0 < result.reduction_ratio < 1.0


class TestVideoReader:
    def test_cold_read_charges_decode(self, traffic_video):
        cost = CostModel()
        reader = VideoReader(traffic_video, cost_model=cost)
        reader.read(5)
        assert cost.units("decode") == 1
        reader.read(5)  # cache hit
        assert cost.units("decode") == 1
        assert reader.cache_hits == 1

    def test_prefetch_warms_cache(self, traffic_video):
        cost = CostModel()
        reader = VideoReader(traffic_video, cost_model=cost)
        reader.set_priority_order([10, 20, 30])
        assert reader.prefetch(2) == 2
        assert cost.units("decode") == 2
        reader.read(10)
        reader.read(20)
        assert reader.cache_hits == 2

    def test_prefetch_skips_cached(self, traffic_video):
        reader = VideoReader(traffic_video)
        reader.read(7)
        reader.set_priority_order([7, 8])
        assert reader.prefetch(1) == 1  # 7 skipped, 8 fetched
        assert reader.read(8) is not None
        assert reader.cache_hits == 1

    def test_lru_eviction(self, traffic_video):
        reader = VideoReader(traffic_video, cache_size=2)
        reader.read(1)
        reader.read(2)
        reader.read(3)  # evicts 1
        cold_before = reader.cold_reads
        reader.read(1)
        assert reader.cold_reads == cold_before + 1

    def test_read_batch(self, traffic_video):
        reader = VideoReader(traffic_video)
        batch = reader.read_batch([0, 1, 2])
        assert batch.shape == (3, 24, 24)
        assert reader.read_batch([]).shape == (0, 24, 24)

    def test_matches_direct_pixels(self, traffic_video):
        reader = VideoReader(traffic_video)
        assert np.array_equal(reader.read(11), traffic_video.pixels(11))

    def test_rejects_bad_cache_size(self, traffic_video):
        with pytest.raises(ConfigurationError):
            VideoReader(traffic_video, cache_size=0)
