"""Tests for the oracle substrate: cost model, UDFs, detectors,
tracker, and the video relation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OracleBudgetExceededError
from repro.oracle import (
    CostModel,
    DetectorErrorModel,
    IoUTracker,
    Oracle,
    SimulatedDepthEstimator,
    SimulatedObjectDetector,
    SimulatedSentimentalizer,
    counting_udf,
    materialize_relation,
    scan_cost_seconds,
    sentiment_udf,
    tailgating_udf,
)
from repro.oracle.base import exact_scores
from repro.video import BoundingBox


class TestCostModel:
    def test_charge_accumulates(self):
        cost = CostModel()
        cost.charge("oracle_infer", 10)
        assert cost.units("oracle_infer") == 10
        assert cost.seconds("oracle_infer") == pytest.approx(2.0)

    def test_unknown_key_free(self):
        cost = CostModel()
        assert cost.charge("unknown_key", 5) == 0.0

    def test_overrides(self):
        cost = CostModel({"oracle_infer": 1.0})
        cost.charge("oracle_infer", 3)
        assert cost.total_seconds() == pytest.approx(3.0)

    def test_add_seconds_and_timer(self):
        cost = CostModel()
        cost.add_seconds("algo", 1.5)
        with cost.timer("algo"):
            pass
        assert cost.seconds("algo") >= 1.5

    def test_breakdown_sorted(self):
        cost = CostModel()
        cost.charge("decode", 10)
        cost.charge("oracle_infer", 10)
        keys = list(cost.breakdown())
        assert keys[0] == "oracle_infer"

    def test_fractions_sum_to_one(self):
        cost = CostModel()
        cost.charge("decode", 5)
        cost.charge("oracle_infer", 5)
        assert sum(cost.fractions().values()) == pytest.approx(1.0)
        assert CostModel().fractions() == {}

    def test_reset_and_copy(self):
        cost = CostModel()
        cost.charge("decode", 5)
        clone = cost.copy()
        cost.reset()
        assert cost.total_seconds() == 0.0
        assert clone.units("decode") == 5

    def test_negative_rejected(self):
        cost = CostModel()
        with pytest.raises(ConfigurationError):
            cost.charge("decode", -1)
        with pytest.raises(ConfigurationError):
            CostModel({"decode": -0.1})

    def test_scan_cost(self):
        seconds = scan_cost_seconds(1_000)
        assert seconds == pytest.approx(1_000 * 0.2003)


class TestOracle:
    def test_scores_match_truth(self, traffic_video):
        oracle = Oracle(counting_udf("car"), CostModel())
        indices = [3, 99, 500]
        scores = oracle.score(traffic_video, indices)
        expected = [traffic_video.true_count(i) for i in indices]
        assert scores.tolist() == expected

    def test_charges_per_frame(self, traffic_video):
        cost = CostModel()
        oracle = Oracle(counting_udf("car"), cost)
        oracle.score(traffic_video, [1, 2, 3, 4])
        assert cost.units("oracle_infer") == 4
        assert oracle.calls == 4

    def test_cost_key_override(self, traffic_video):
        cost = CostModel({"oracle_label": 0.5})
        oracle = Oracle(counting_udf("car"), cost, cost_key="oracle_label")
        oracle.score(traffic_video, [0])
        assert cost.seconds("oracle_label") == pytest.approx(0.5)
        assert cost.units("oracle_infer") == 0

    def test_budget_enforced(self, traffic_video):
        oracle = Oracle(counting_udf("car"), CostModel(), budget=3)
        oracle.score(traffic_video, [0, 1])
        with pytest.raises(OracleBudgetExceededError):
            oracle.score(traffic_video, [2, 3])

    def test_exact_scores_fast_path(self, traffic_video):
        scoring = counting_udf("car")
        fast = exact_scores(scoring, traffic_video)
        assert np.array_equal(fast, traffic_video.counts.astype(float))

    def test_exact_scores_label_mismatch(self, traffic_video):
        scoring = counting_udf("giraffe")
        assert exact_scores(scoring, traffic_video).sum() == 0.0


class TestDetector:
    def test_perfect_detection(self, traffic_video):
        detector = SimulatedObjectDetector("car")
        frame = traffic_video.frame(200)
        assert detector.count(frame) == traffic_video.true_count(200)

    def test_label_filtering(self, traffic_video):
        detector = SimulatedObjectDetector("person")
        frame = traffic_video.frame(200)
        persons = [b for b in frame.objects if b.label == "person"]
        assert detector.count(frame) == len(persons)

    def test_miss_rate_reduces_counts(self, traffic_video):
        lossy = SimulatedObjectDetector(
            "car", DetectorErrorModel(miss_rate=0.9, seed=1))
        exact = SimulatedObjectDetector("car")
        frames = [traffic_video.frame(i) for i in range(0, 600, 10)]
        lossy_total = sum(lossy.count(f) for f in frames)
        exact_total = sum(exact.count(f) for f in frames)
        assert lossy_total < exact_total * 0.5

    def test_false_positives_add_counts(self):
        from repro.video import TrafficVideo
        empty = TrafficVideo(
            "empty", 200, seed=1, base_level=0.0, burst_amplitude=0.0,
            distractor_mean=0.0)
        noisy = SimulatedObjectDetector(
            "car", DetectorErrorModel(false_positive_rate=2.0, seed=2))
        total = sum(noisy.count(empty.frame(i)) for i in range(100))
        assert total > 50

    def test_deterministic_noise(self, traffic_video):
        model = DetectorErrorModel(miss_rate=0.5, seed=5)
        a = SimulatedObjectDetector("car", model)
        b = SimulatedObjectDetector("car", model)
        frame = traffic_video.frame(100)
        assert len(a.detect(frame)) == len(b.detect(frame))

    def test_invalid_error_model(self):
        with pytest.raises(ConfigurationError):
            DetectorErrorModel(miss_rate=1.5)
        with pytest.raises(ConfigurationError):
            DetectorErrorModel(false_positive_rate=-1)


class TestDepthAndSentiment:
    def test_depth_reads_truth(self, dashcam_video):
        estimator = SimulatedDepthEstimator()
        frame = dashcam_video.frame(42)
        assert estimator.distance(frame) == dashcam_video.true_distance(42)

    def test_tailgating_udf_inverts_distance(self, dashcam_video):
        scoring = tailgating_udf(max_distance=60.0)
        scores = exact_scores(scoring, dashcam_video)
        # Most dangerous frame = closest approach.
        assert int(np.argmax(scores)) == int(np.argmin(
            dashcam_video.distances))

    def test_tailgating_quantization_metadata(self):
        scoring = tailgating_udf(quantization_step=0.5)
        assert scoring.quantization_step == 0.5
        assert not scoring.integer_valued
        assert scoring.step == 0.5

    def test_counting_udf_is_integer_valued(self):
        scoring = counting_udf("car")
        assert scoring.integer_valued
        assert scoring.step == 1.0

    def test_sentiment_udf(self, sentiment_video):
        scoring = sentiment_udf()
        scores = exact_scores(scoring, sentiment_video)
        assert np.allclose(scores, sentiment_video.happiness)

    def test_sentimentalizer_clips_noise(self, sentiment_video):
        noisy = SimulatedSentimentalizer(noise_std=5.0, seed=1)
        values = [noisy.happiness(sentiment_video.frame(i))
                  for i in range(50)]
        assert all(0.0 <= v <= 1.0 for v in values)


class TestTracker:
    def _box(self, x, y, label="car"):
        return BoundingBox(x=x, y=y, width=4, height=4, label=label)

    def test_stable_id_across_frames(self):
        tracker = IoUTracker()
        first = tracker.update(0, [self._box(0, 0)])
        second = tracker.update(1, [self._box(1, 0)])
        assert first[0][0] == second[0][0]

    def test_new_object_gets_new_id(self):
        tracker = IoUTracker()
        tracker.update(0, [self._box(0, 0)])
        second = tracker.update(1, [self._box(0, 0), self._box(15, 15)])
        ids = [obj_id for obj_id, _ in second]
        assert len(set(ids)) == 2

    def test_track_expires_after_max_age(self):
        tracker = IoUTracker(max_age=1)
        tracker.update(0, [self._box(0, 0)])
        tracker.update(1, [])
        tracker.update(2, [])
        reborn = tracker.update(3, [self._box(0, 0)])
        assert reborn[0][0] == 1  # old track expired, new id assigned

    def test_label_mismatch_not_matched(self):
        tracker = IoUTracker()
        tracker.update(0, [self._box(0, 0, label="car")])
        second = tracker.update(1, [self._box(0, 0, label="person")])
        assert second[0][0] == 1

    def test_greedy_matches_best_iou(self):
        tracker = IoUTracker()
        tracker.update(0, [self._box(0, 0), self._box(10, 0)])
        assignments = tracker.update(
            1, [self._box(10.5, 0), self._box(0.5, 0)])
        by_id = dict(assignments)
        assert by_id[0].x == 0.5
        assert by_id[1].x == 10.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IoUTracker(iou_threshold=0.0)
        with pytest.raises(ConfigurationError):
            IoUTracker(max_age=-1)


class TestVideoRelation:
    def test_counts_match_ground_truth(self, traffic_video):
        relation = materialize_relation(
            traffic_video, indices=range(0, 60))
        counts = relation.count_per_frame("car")
        for i in range(60):
            assert counts[i] == traffic_video.true_count(i)

    def test_charges_oracle_per_frame(self, traffic_video):
        cost = CostModel()
        materialize_relation(
            traffic_video, indices=range(10), cost_model=cost)
        assert cost.units("oracle_infer") == 10

    def test_object_ids_persist(self, traffic_video):
        relation = materialize_relation(
            traffic_video, indices=range(0, 30))
        lifetimes = relation.object_lifetimes()
        assert max(lifetimes.values()) > 1, \
            "objects should persist across frames"

    def test_distinct_objects_bounded(self, traffic_video):
        relation = materialize_relation(
            traffic_video, indices=range(0, 30))
        assert relation.distinct_objects() <= len(relation)
        assert relation.frames_materialized == 30
