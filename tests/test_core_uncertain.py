"""Tests for x-tuples, quantization, and the uncertain relation."""

import numpy as np
import pytest

from repro.core.uncertain import (
    QuantizationGrid,
    UncertainRelation,
    build_relation,
    grid_for,
    quantize_mixtures,
)
from repro.errors import ConfigurationError, UncertainRelationError
from repro.models import GaussianMixture

from conftest import make_relation


def mixture(mus, sigmas, pis=None):
    mus = np.atleast_2d(np.asarray(mus, dtype=float))
    sigmas = np.atleast_2d(np.asarray(sigmas, dtype=float))
    if pis is None:
        pis = np.ones_like(mus) / mus.shape[1]
    else:
        pis = np.atleast_2d(np.asarray(pis, dtype=float))
    return GaussianMixture(pi=pis, mu=mus, sigma=sigmas)


class TestQuantizationGrid:
    def test_level_roundtrip(self):
        grid = QuantizationGrid(floor=0.0, step=0.5, num_levels=10)
        for level in range(10):
            score = grid.score_of(level)
            assert grid.level_of(score) == level

    def test_clipping(self):
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=5)
        assert grid.level_of(-3.0) == 0
        assert grid.level_of(100.0) == 4

    def test_nearest_rounding(self):
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=10)
        assert grid.level_of(1.4) == 1
        assert grid.level_of(1.6) == 2

    def test_edges_cover_reals(self):
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=3)
        edges = grid.edges()
        assert edges[0] == -np.inf and edges[-1] == np.inf
        assert len(edges) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantizationGrid(floor=0.0, step=0.0, num_levels=3)
        with pytest.raises(ConfigurationError):
            QuantizationGrid(floor=0.0, step=1.0, num_levels=0)
        with pytest.raises(ConfigurationError):
            QuantizationGrid(floor=0.0, step=1e-9, num_levels=10_000)


class TestGridFor:
    def test_covers_mixture_support(self):
        mix = mixture([[2.0, 8.0]], [[0.5, 1.0]])
        grid = grid_for(mix, floor=0.0, step=1.0)
        assert grid.score_of(grid.max_level) >= 8.0 + 3.0

    def test_covers_known_scores(self):
        mix = mixture([[1.0]], [[0.1]])
        grid = grid_for(mix, floor=0.0, step=1.0, extra_scores=[15.0])
        assert grid.score_of(grid.max_level) >= 15.0


class TestQuantizeMixtures:
    def test_pmf_sums_to_one(self):
        mix = mixture([[3.0, 7.0], [1.0, 2.0]], [[0.5, 1.0], [0.3, 0.4]])
        grid = grid_for(mix, floor=0.0, step=1.0)
        pmf = quantize_mixtures(mix, grid)
        assert np.allclose(pmf.sum(axis=1), 1.0)
        assert (pmf >= 0).all()

    def test_mass_concentrates_at_mean(self):
        mix = mixture([[5.0]], [[0.2]])
        grid = grid_for(mix, floor=0.0, step=1.0)
        pmf = quantize_mixtures(mix, grid)[0]
        assert int(np.argmax(pmf)) == 5
        assert pmf[5] > 0.95

    def test_three_sigma_truncation(self):
        """Mass beyond mu +/- 3 sigma must be exactly zero."""
        mix = mixture([[10.0]], [[1.0]])
        grid = grid_for(mix, floor=0.0, step=1.0)
        pmf = quantize_mixtures(mix, grid, truncate_sigmas=3.0)[0]
        # Levels clearly outside [7, 13] carry no mass.
        assert pmf[:6].sum() == 0.0
        assert pmf[15:].sum() == 0.0
        assert pmf[8:13].sum() > 0.9

    def test_quantized_mean_close_to_mixture_mean(self):
        mix = mixture([[4.0, 9.0]], [[0.8, 1.2]], [[0.6, 0.4]])
        grid = grid_for(mix, floor=0.0, step=0.5)
        pmf = quantize_mixtures(mix, grid)[0]
        levels = grid.score_of(np.arange(grid.num_levels))
        assert float(pmf @ levels) == pytest.approx(
            float(mix.mean()[0]), abs=0.2)

    def test_empty_batch(self):
        mix = GaussianMixture(
            pi=np.zeros((0, 2)), mu=np.zeros((0, 2)), sigma=np.ones((0, 2)))
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=4)
        assert quantize_mixtures(mix, grid).shape == (0, 4)


class TestUncertainRelation:
    def test_cdf_is_cumulative(self, tiny_relation):
        assert np.allclose(
            tiny_relation.cdf, np.cumsum(tiny_relation.pmf, axis=1))
        assert np.allclose(tiny_relation.cdf[:, -1], 1.0)

    def test_mark_certain(self, tiny_relation):
        level = tiny_relation.mark_certain(2, 0.0)
        assert level == 0
        assert tiny_relation.certain[2]
        assert tiny_relation.num_certain == 1
        assert tiny_relation.num_uncertain == 2
        assert tiny_relation.pmf[2, 0] == 1.0
        assert tiny_relation.exact_scores[2] == 0.0

    def test_double_clean_rejected(self, tiny_relation):
        tiny_relation.mark_certain(0, 1.0)
        with pytest.raises(UncertainRelationError):
            tiny_relation.mark_certain(0, 2.0)

    def test_expected_scores(self, tiny_relation):
        expected = tiny_relation.expected_scores()
        assert expected[0] == pytest.approx(0.21 + 2 * 0.01)
        assert expected[2] == pytest.approx(0.48 + 2 * 0.36)

    def test_position_lookup(self, tiny_relation):
        assert tiny_relation.position(1) == 1
        with pytest.raises(UncertainRelationError):
            tiny_relation.position(99)

    def test_copy_is_independent(self, tiny_relation):
        clone = tiny_relation.copy()
        clone.mark_certain(0, 1.0)
        assert not tiny_relation.certain[0]

    def test_duplicate_ids_rejected(self):
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=2)
        pmf = np.array([[1.0, 0.0], [0.5, 0.5]])
        with pytest.raises(UncertainRelationError):
            UncertainRelation([1, 1], pmf, grid)

    def test_unnormalized_pmf_rejected(self):
        grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=2)
        with pytest.raises(UncertainRelationError):
            UncertainRelation([0], np.array([[0.5, 0.2]]), grid)


class TestBuildRelation:
    def test_known_scores_become_certain(self):
        mix = mixture([[2.0], [5.0]], [[0.5], [0.5]])
        relation = build_relation(
            [10, 20], mix, floor=0.0, step=1.0,
            known_scores={10: 2.0})
        assert relation.certain[relation.position(10)]
        assert not relation.certain[relation.position(20)]

    def test_extra_known_frames_appended(self):
        mix = mixture([[2.0]], [[0.5]])
        relation = build_relation(
            [10], mix, floor=0.0, step=1.0,
            known_scores={99: 7.0})
        position = relation.position(99)
        assert relation.certain[position]
        assert relation.exact_scores[position] == 7.0
        assert len(relation) == 2

    def test_no_known_scores(self):
        mix = mixture([[2.0], [3.0]], [[0.5], [0.5]])
        relation = build_relation([0, 1], mix, floor=0.0, step=1.0)
        assert relation.num_certain == 0
