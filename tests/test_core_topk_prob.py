"""Tests for Topk-prob: incremental confidence (Equations 2 and 3).

The key correctness property: the incrementally maintained joint CDF
must equal both (a) the direct Equation 2 product recomputed from
scratch and (b) the paper's Equation 1 evaluated by brute-force
possible-world enumeration.
"""

import numpy as np
import pytest

from repro.core.reference import topk_prob_bruteforce
from repro.core.topk_prob import ConfidenceState
from repro.errors import UncertainRelationError

from conftest import make_relation


class TestPaperExample:
    """The running example from the paper (Tables 1a and 5)."""

    def test_top1_confidence_before_cleaning(self, tiny_relation):
        """Pr(f3 is Top-1) = Pr(S_f1 <= 1) * Pr(S_f2 <= 1) with the
        trimmed-view top-1 score of f3 being 1... the paper's 0.85
        comes from Pr(no other frame exceeds f3's most probable score).
        """
        state = ConfidenceState(tiny_relation)
        # If f3 were (hypothetically) certain at score 1, the answer
        # {f3} has confidence F_f1(1) * F_f2(1) = 0.99 * 0.91.
        relation = tiny_relation
        relation.mark_certain(2, 1.0)
        state = ConfidenceState(relation)
        assert state.topk_prob(1) == pytest.approx(0.99 * 0.91)

    def test_oracle_drop_example(self):
        """Cleaning f3 to score 0 (Table 5) drops the confidence of
        {f3} from 0.85 to 0.38 = 0.78 * 0.49."""
        relation = make_relation([
            [0.78, 0.21, 0.01],
            [0.49, 0.42, 0.09],
            [0.16, 0.48, 0.36],
        ])
        relation.mark_certain(2, 0.0)
        state = ConfidenceState(relation)
        assert state.topk_prob(0) == pytest.approx(0.78 * 0.49, abs=1e-12)


class TestConfidenceState:
    def test_no_uncertain_tuples_gives_one(self):
        relation = make_relation(
            [[1.0], [1.0]], certain={0: 0.0, 1: 0.0})
        state = ConfidenceState(relation)
        assert state.topk_prob(0) == 1.0

    def test_none_threshold_gives_zero(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        assert state.topk_prob(None) == 0.0

    def test_matches_direct_product(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        for level in range(3):
            assert state.joint_cdf(level) == pytest.approx(
                state.topk_prob_direct(level))

    def test_remove_updates_joint_cdf(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        before = state.joint_cdf(1)
        state.remove(0)
        after = state.joint_cdf(1)
        assert after == pytest.approx(before / tiny_relation.cdf[0, 1])
        assert state.num_uncertain == 2

    def test_remove_twice_rejected(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        state.remove(1)
        with pytest.raises(UncertainRelationError):
            state.remove(1)

    def test_zero_cdf_handling(self):
        """A frame with no mass below the threshold zeroes the joint
        CDF; removing it restores a positive value."""
        relation = make_relation([
            [0.0, 0.0, 1.0],   # certainly score 2
            [0.5, 0.5, 0.0],
        ])
        state = ConfidenceState(relation)
        assert state.joint_cdf(1) == 0.0
        assert state.log_joint_cdf(1) == float("-inf")
        state.remove(0)
        assert state.joint_cdf(1) == pytest.approx(1.0)

    def test_joint_cdf_excluding(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        positions = np.array([0, 1, 2])
        excl = state.joint_cdf_excluding(positions, 1)
        cdf = tiny_relation.cdf
        full = cdf[0, 1] * cdf[1, 1] * cdf[2, 1]
        for i in range(3):
            assert excl[i] == pytest.approx(full / cdf[i, 1])

    def test_joint_cdf_excluding_zero_safe(self):
        relation = make_relation([
            [0.0, 0.0, 1.0],
            [0.6, 0.4, 0.0],
        ])
        state = ConfidenceState(relation)
        excl = state.joint_cdf_excluding(np.array([0, 1]), 1)
        # Excluding the zero-CDF frame leaves 1.0; excluding the other
        # still contains the zero frame -> 0.
        assert excl[0] == pytest.approx(1.0)
        assert excl[1] == 0.0

    def test_incremental_matches_rebuild_after_cleans(self, tiny_relation):
        state = ConfidenceState(tiny_relation)
        state.remove(1)
        tiny_relation.mark_certain(1, 1.0)
        rebuilt = ConfidenceState(tiny_relation)
        for level in range(3):
            assert state.joint_cdf(level) == pytest.approx(
                rebuilt.joint_cdf(level))


class TestAgainstBruteForce:
    def test_eq2_equals_possible_world_semantics(self):
        """Equation 2's product equals Equation 1's world sum."""
        rng = np.random.default_rng(7)
        for trial in range(10):
            pmfs = [rng.dirichlet(np.ones(3)) for _ in range(4)]
            relation = make_relation(pmfs)
            # Make one tuple certain; it is the Top-1 answer.
            relation.mark_certain(0, 1.0)
            state = ConfidenceState(relation)
            fast = state.topk_prob(1)
            brute = topk_prob_bruteforce(relation, [0], 1)
            assert fast == pytest.approx(brute, abs=1e-12), f"trial {trial}"

    def test_topk2_against_brute_force(self):
        rng = np.random.default_rng(11)
        for trial in range(5):
            pmfs = [rng.dirichlet(np.ones(4)) for _ in range(5)]
            relation = make_relation(pmfs)
            relation.mark_certain(0, 3.0)
            relation.mark_certain(1, 2.0)
            state = ConfidenceState(relation)
            fast = state.topk_prob(2)  # threshold = K-th = score 2
            brute = topk_prob_bruteforce(relation, [0, 1], 2)
            assert fast == pytest.approx(brute, abs=1e-12), f"trial {trial}"
