"""Tests for the Gaussian mixture type, feature extractor, networks,
and the grid-search trainer."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.config import Phase1Config
from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.models import (
    ConvMDNProxy,
    FeatureMDNProxy,
    FeatureScaler,
    GaussianMixture,
    NUM_FEATURES,
    build_conv_mdn,
    build_feature_mdn,
    extract_features,
    train_network,
    train_proxy_grid,
)


def single_gaussian(mu=0.0, sigma=1.0):
    return GaussianMixture(
        pi=np.array([[1.0]]),
        mu=np.array([[mu]]),
        sigma=np.array([[sigma]]),
    )


class TestGaussianMixture:
    def test_moments_single_component(self):
        mix = single_gaussian(2.0, 0.5)
        assert mix.mean()[0] == pytest.approx(2.0)
        assert mix.variance()[0] == pytest.approx(0.25)

    def test_moments_two_components(self):
        mix = GaussianMixture(
            pi=np.array([[0.5, 0.5]]),
            mu=np.array([[0.0, 2.0]]),
            sigma=np.array([[1.0, 1.0]]),
        )
        assert mix.mean()[0] == pytest.approx(1.0)
        # var = E[sigma^2] + E[mu^2] - mean^2 = 1 + 2 - 1 = 2
        assert mix.variance()[0] == pytest.approx(2.0)

    def test_cdf_matches_scipy(self):
        mix = single_gaussian(1.0, 2.0)
        for x in (-1.0, 1.0, 3.0):
            assert mix.cdf(np.array([x]))[0] == pytest.approx(
                norm.cdf(x, 1.0, 2.0))

    def test_pdf_integrates_to_one(self):
        mix = GaussianMixture(
            pi=np.array([[0.3, 0.7]]),
            mu=np.array([[-1.0, 2.0]]),
            sigma=np.array([[0.5, 1.5]]),
        )
        xs = np.linspace(-10, 12, 4_000)
        pdf = np.array([mix.pdf(np.array([x]))[0] for x in xs])
        assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=1e-3)

    def test_log_likelihood(self):
        mix = single_gaussian(0.0, 1.0)
        ll = mix.log_likelihood(np.array([0.0]))[0]
        assert ll == pytest.approx(norm.logpdf(0.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            GaussianMixture(
                pi=np.ones((2, 3)), mu=np.ones((2, 2)), sigma=np.ones((2, 3)))

    def test_select(self):
        mix = GaussianMixture(
            pi=np.ones((4, 2)) / 2,
            mu=np.arange(8.0).reshape(4, 2),
            sigma=np.ones((4, 2)),
        )
        row = mix.select(2)
        assert row.mu.tolist() == [4.0, 5.0]


class TestFeatures:
    def test_feature_count(self, traffic_video):
        features = extract_features(traffic_video.pixels(0))
        assert features.shape == (1, NUM_FEATURES)

    def test_batch_features(self, traffic_video):
        features = extract_features(traffic_video.batch_pixels([0, 1, 2]))
        assert features.shape == (3, NUM_FEATURES)

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            extract_features(np.zeros(10))

    def test_scaler_standardizes(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, size=(200, 5))
        scaled = FeatureScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_requires_fit(self):
        with pytest.raises(ShapeError):
            FeatureScaler().transform(np.zeros((1, 3)))

    def test_constant_feature_safe(self):
        data = np.ones((10, 2))
        scaled = FeatureScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))


class TestNetworks:
    def test_feature_mdn_learns_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, NUM_FEATURES))
        y = 2.0 * x[:, 0] + 0.5

        proxy = FeatureMDNProxy(num_gaussians=2, num_hypotheses=16, seed=1)
        # Bypass pixel featurization: train the raw network directly.
        network = proxy.network
        network.fit_target_scaling(y)
        from repro.models import Adam
        optimizer = Adam(3e-3)
        for _ in range(150):
            batch = rng.choice(400, 64, replace=False)
            network.train_step(x[batch], y[batch], optimizer)
        mix = network.predict(x)
        corr = np.corrcoef(mix.mean(), y)[0, 1]
        assert corr > 0.9

    def test_predict_before_fit_raises(self):
        network = build_feature_mdn(num_gaussians=2, num_hypotheses=8)
        with pytest.raises(NotFittedError):
            network.predict(np.zeros((1, NUM_FEATURES)))

    def test_conv_builder_rejects_too_deep(self):
        with pytest.raises(ConfigurationError):
            build_conv_mdn((8, 8), num_gaussians=2, num_hypotheses=8,
                           num_conv_layers=4)

    def test_conv_proxy_prepares_channel_axis(self, traffic_video):
        proxy = ConvMDNProxy(
            (24, 24), num_gaussians=2, num_hypotheses=8, num_conv_layers=2)
        inputs = proxy.prepare_inputs(traffic_video.batch_pixels([0, 1]))
        assert inputs.shape == (2, 1, 24, 24)

    def test_feature_proxy_requires_scaler(self, traffic_video):
        proxy = FeatureMDNProxy(num_gaussians=2, num_hypotheses=8)
        with pytest.raises(NotFittedError):
            proxy.prepare_inputs(traffic_video.batch_pixels([0]))

    def test_num_parameters_positive(self):
        network = build_feature_mdn(num_gaussians=3, num_hypotheses=8)
        assert network.num_parameters() > 0


class TestTrainer:
    def test_grid_selects_smallest_nll(self, traffic_video):
        rng = np.random.default_rng(1)
        tr = rng.choice(len(traffic_video), 200, replace=False)
        ho = rng.choice(len(traffic_video), 60, replace=False)
        result = train_proxy_grid(
            traffic_video.batch_pixels(tr), traffic_video.counts[tr],
            traffic_video.batch_pixels(ho), traffic_video.counts[ho],
            config=Phase1Config(
                cmdn_grid=((2, 8), (4, 16)), epochs=15),
        )
        assert len(result.histories) == 2
        best = result.best_history
        assert best.holdout_nll == min(
            h.holdout_nll for h in result.histories)
        assert result.proxy.hyperparameters == best.hyperparameters

    def test_training_reduces_loss(self, traffic_video):
        rng = np.random.default_rng(2)
        idx = rng.choice(len(traffic_video), 200, replace=False)
        proxy = FeatureMDNProxy(num_gaussians=3, num_hypotheses=16, seed=0)
        losses = train_network(
            proxy,
            traffic_video.batch_pixels(idx),
            traffic_video.counts[idx],
            epochs=20, batch_size=32, learning_rate=2e-3,
        )
        assert losses[-1] < losses[0]

    def test_proxy_is_calibrated(self, trained_proxy, traffic_video):
        """Predicted sigma should match the residual scale (within 3x)."""
        idx = np.arange(0, len(traffic_video), 3)
        mix = trained_proxy.predict_mixtures(
            traffic_video.batch_pixels(idx))
        residual_std = float(np.std(
            mix.mean() - traffic_video.counts[idx]))
        mean_sigma = float(np.mean(np.sqrt(mix.variance())))
        assert mean_sigma < 3 * residual_std + 1.0
        assert residual_std < 3 * mean_sigma + 1.0

    def test_proxy_correlates_with_truth(self, trained_proxy, traffic_video):
        idx = np.arange(0, len(traffic_video), 3)
        mix = trained_proxy.predict_mixtures(
            traffic_video.batch_pixels(idx))
        corr = np.corrcoef(mix.mean(), traffic_video.counts[idx])[0, 1]
        assert corr > 0.6

    def test_empty_training_rejected(self):
        proxy = FeatureMDNProxy(num_gaussians=2, num_hypotheses=8)
        with pytest.raises(ConfigurationError):
            train_network(
                proxy, np.zeros((0, 24, 24)), np.zeros(0),
                epochs=1, batch_size=8, learning_rate=1e-3)

    def test_conv_grid_smoke(self, traffic_video):
        rng = np.random.default_rng(3)
        tr = rng.choice(len(traffic_video), 60, replace=False)
        ho = rng.choice(len(traffic_video), 30, replace=False)
        result = train_proxy_grid(
            traffic_video.batch_pixels(tr), traffic_video.counts[tr],
            traffic_video.batch_pixels(ho), traffic_video.counts[ho],
            config=Phase1Config(
                cmdn_grid=((2, 8),), epochs=2, use_feature_mdn=False),
            input_hw=traffic_video.resolution,
        )
        assert np.isfinite(result.best_history.holdout_nll)
