"""Tests for the brute-force reference module and the report types."""

import numpy as np
import pytest

from repro.core.reference import (
    MAX_WORLDS,
    enumerate_worlds,
    expected_confidence_bruteforce,
    topk_prob_bruteforce,
)
from repro.core.result import PhaseBreakdown, QueryReport
from repro.errors import ConfigurationError

from conftest import make_relation


class TestEnumerateWorlds:
    def test_world_count_and_mass(self, tiny_relation):
        worlds = list(enumerate_worlds(tiny_relation))
        assert len(worlds) == 27  # 3^3
        total = sum(p for _, p in worlds)
        assert total == pytest.approx(1.0)

    def test_certain_tuple_single_outcome(self, tiny_relation):
        tiny_relation.mark_certain(0, 2.0)
        worlds = list(enumerate_worlds(tiny_relation))
        assert len(worlds) == 9  # 1 * 3 * 3
        assert all(levels[0] == 2 for levels, _ in worlds)

    def test_world_probabilities_product(self):
        relation = make_relation([[0.3, 0.7], [0.4, 0.6]])
        worlds = {tuple(l): p for l, p in enumerate_worlds(relation)}
        assert worlds[(0, 0)] == pytest.approx(0.12)
        assert worlds[(1, 1)] == pytest.approx(0.42)

    def test_explosion_guard(self):
        pmfs = [np.ones(10) / 10 for _ in range(8)]
        relation = make_relation(pmfs)
        with pytest.raises(ConfigurationError):
            list(enumerate_worlds(relation))


class TestBruteForceHelpers:
    def test_certain_relation_probability_one(self):
        relation = make_relation(
            [[1.0, 0.0], [0.0, 1.0]], certain={0: 1.0, 1: 0.0})
        assert topk_prob_bruteforce(relation, [0], 1) == pytest.approx(1.0)

    def test_expected_confidence_in_unit_interval(self):
        rng = np.random.default_rng(0)
        relation = make_relation(
            [rng.dirichlet(np.ones(3)) for _ in range(4)])
        relation.mark_certain(0, 2.0)
        value = expected_confidence_bruteforce(relation, 2, k=1)
        assert 0.0 <= value <= 1.0


class TestPhaseBreakdown:
    def test_phase_sums(self):
        breakdown = PhaseBreakdown(
            label_sample=10.0, cmdn_training=20.0, populate_d0=30.0,
            select_candidate=1.0, confirm_oracle=9.0)
        assert breakdown.phase1_seconds == 60.0
        assert breakdown.phase2_seconds == 10.0
        assert breakdown.total_seconds == 70.0
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["populate_d0"] == pytest.approx(30.0 / 70.0)

    def test_empty_breakdown(self):
        assert PhaseBreakdown().fractions() == {}
        assert PhaseBreakdown().total_seconds == 0.0


class TestQueryReport:
    def _report(self, **overrides):
        defaults = dict(
            video_name="v", udf_name="count", k=5, thres=0.9,
            window_size=None, num_frames=1_000,
            answer_ids=[1, 2, 3, 4, 5],
            answer_scores=[9.0, 8.0, 7.0, 6.0, 5.0],
            confidence=0.93, iterations=10, cleaned=40,
            num_tuples=800, num_retained=800, oracle_calls=140,
            breakdown=PhaseBreakdown(
                label_sample=20.0, cmdn_training=10.0, populate_d0=50.0,
                select_candidate=0.5, confirm_oracle=19.5),
            scan_seconds=1_000.0,
        )
        defaults.update(overrides)
        return QueryReport(**defaults)

    def test_speedup(self):
        report = self._report()
        assert report.simulated_seconds == pytest.approx(100.0)
        assert report.speedup == pytest.approx(10.0)

    def test_cleaned_fraction(self):
        assert self._report().cleaned_fraction == pytest.approx(40 / 800)
        assert self._report(num_tuples=0).cleaned_fraction == 0.0

    def test_summary_mentions_kind(self):
        assert "frames" in self._report().summary()
        assert "windows" in self._report(window_size=30).summary()
