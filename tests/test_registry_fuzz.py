"""Hypothesis fuzzing of the registry's query-string parsing.

The ``"count[car]"`` spec grammar is the service's untrusted input
surface (clients name UDFs and videos by string). Properties:

* arbitrary text either resolves or raises a *clean*
  :class:`~repro.errors.ConfigurationError` — which is a
  :class:`ValueError` — never a bare ``AttributeError`` / regex error
  / float-conversion ``ValueError`` from inside a factory;
* parsing and formatting are inverse bijections on the valid grammar
  (round-trip property in both directions);
* resolved UDFs are real scoring functions for every registered
  family and well-formed argument.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.registry import (
    format_corpus_spec,
    format_query_spec,
    format_udf_spec,
    list_udfs,
    parse_corpus_spec,
    parse_query_spec,
    parse_udf_spec,
    resolve_corpus,
    resolve_udf,
    resolve_video,
)
from repro.errors import ConfigurationError
from repro.oracle.base import ScoringFunction

#: Characters a valid UDF name may contain ([A-Za-z0-9_-]).
NAME_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")

valid_names = st.text(alphabet=NAME_ALPHABET, min_size=1, max_size=20)
valid_args = st.text(min_size=1, max_size=20).filter(
    lambda s: "]" not in s and parse_ok(s))


def parse_ok(arg: str) -> bool:
    try:
        return parse_udf_spec(f"x[{arg}]") == ("x", arg)
    except ConfigurationError:
        return False


# ----------------------------------------------------------------------
# Malformed input never escapes as anything but a clean ValueError.

@settings(max_examples=300, deadline=None, derandomize=True)
@given(spec=st.text(max_size=40))
def test_arbitrary_text_resolves_or_raises_clean_valueerror(spec):
    try:
        udf = resolve_udf(spec)
    except ConfigurationError as error:
        # Clean: the standard exception type, with the offending spec
        # (or its name part) mentioned for debuggability.
        assert isinstance(error, ValueError)
        assert str(error)
    else:
        assert isinstance(udf, ScoringFunction)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    name=valid_names,
    arg=st.one_of(st.none(), st.text(max_size=20)),
)
def test_structured_specs_resolve_or_raise_clean_valueerror(name, arg):
    spec = name if arg is None else f"{name}[{arg}]"
    try:
        udf = resolve_udf(spec)
    except ConfigurationError as error:
        assert isinstance(error, ValueError)
    else:
        assert isinstance(udf, ScoringFunction)


@pytest.mark.parametrize("bad", [
    None, 7, 3.5, ["count"], {"name": "count"},
])
def test_non_string_specs_raise_clean_valueerror(bad):
    with pytest.raises(ValueError):
        resolve_udf(bad)


@pytest.mark.parametrize("spec", [
    "", "[]", "count[", "count]", "count[]", "count[car",
    "count[car]]", "count[[car]", "count[car][x]", "co unt[car]",
    "count [car]", "c@unt", "count\n[car]", "[car]",
])
def test_known_malformed_specs_raise(spec):
    with pytest.raises(ConfigurationError):
        parse_udf_spec(spec)


@pytest.mark.parametrize("spec", [
    "tailgating[not-a-number]",
    "sentiment[NaN kidding]",
    "tailgating[--3]",
])
def test_factory_argument_failures_are_wrapped(spec):
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_udf(spec)
    assert spec in str(excinfo.value)


# ----------------------------------------------------------------------
# Round-trip properties on the valid grammar.

@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), valid_args))
def test_format_then_parse_round_trips(name, arg):
    spec = format_udf_spec(name, arg)
    assert parse_udf_spec(spec) == (name, arg)
    # Formatting is also idempotent through a second cycle.
    assert format_udf_spec(*parse_udf_spec(spec)) == spec


@settings(max_examples=300, deadline=None, derandomize=True)
@given(spec=st.text(max_size=40))
def test_parse_then_format_is_identity_on_valid_specs(spec):
    try:
        name, arg = parse_udf_spec(spec)
    except ConfigurationError:
        return
    assert format_udf_spec(name, arg) == spec


def test_format_rejects_unroundtrippable_pairs():
    with pytest.raises(ConfigurationError):
        format_udf_spec("a[b]")
    with pytest.raises(ConfigurationError):
        format_udf_spec("count", "a]b")
    with pytest.raises(ConfigurationError):
        format_udf_spec("", "car")


# ----------------------------------------------------------------------
# Corpus spec grammar: ``udf@{member,member,...}`` (DESIGN.md §9).

member_lists = st.lists(
    valid_names, min_size=1, max_size=4, unique=True)
#: UDF args that can embed in the corpus grammar's UDF half
#: (``[^@{}]+`` — brace/at characters cannot appear there).
corpus_safe_args = valid_args.filter(
    lambda s: not any(char in s for char in "@{}"))


@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), valid_args),
       members=member_lists)
def test_corpus_format_then_parse_round_trips(name, arg, members):
    udf_spec = format_udf_spec(name, arg)
    spec = format_corpus_spec(udf_spec, members)
    assert parse_corpus_spec(spec) == (udf_spec, tuple(members))
    # Formatting is idempotent through a second cycle.
    assert format_corpus_spec(*parse_corpus_spec(spec)) == spec


@settings(max_examples=300, deadline=None, derandomize=True)
@given(spec=st.text(max_size=60))
def test_corpus_parse_then_format_normalizes(spec):
    """Parse→format is a *normalization* round-trip, not identity.

    Member whitespace is tolerated on parse (``"count@{a, b}"``), so
    formatting yields the canonical form; the canonical form itself is
    a fixed point, and re-parsing it gives back the same parts.
    """
    try:
        udf_spec, members = parse_corpus_spec(spec)
    except ConfigurationError as error:
        assert isinstance(error, ValueError)
        assert str(error)
        return
    canonical = format_corpus_spec(udf_spec, members)
    assert parse_corpus_spec(canonical) == (udf_spec, members)
    assert format_corpus_spec(*parse_corpus_spec(canonical)) == canonical


@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), corpus_safe_args),
       members=member_lists,
       pads=st.lists(
           st.text(alphabet=" \t", max_size=3), min_size=10,
           max_size=10))
def test_corpus_member_whitespace_normalizes_away(name, arg, members,
                                                  pads):
    """``count[car]@{a, b}`` parses to the same parts as the canonical
    spec, whatever whitespace surrounds each member name."""
    udf_spec = format_udf_spec(name, arg)
    canonical = format_corpus_spec(udf_spec, members)
    padded_members = [
        f"{pads[2 * i]}{member}{pads[2 * i + 1]}"
        for i, member in enumerate(members)
    ]
    noisy = f"{udf_spec}@{{{','.join(padded_members)}}}"
    assert parse_corpus_spec(noisy) == (udf_spec, tuple(members))
    assert format_corpus_spec(*parse_corpus_spec(noisy)) == canonical


@settings(max_examples=200, deadline=None, derandomize=True)
@given(
    udf=st.text(max_size=20),
    raw_members=st.lists(st.text(max_size=10), max_size=4),
)
def test_corpus_structured_specs_raise_clean_valueerror(udf, raw_members):
    spec = f"{udf}@{{{','.join(raw_members)}}}"
    try:
        parsed = parse_corpus_spec(spec)
    except ConfigurationError as error:
        assert isinstance(error, ValueError)
    else:
        assert parsed[0]
        assert len(parsed[1]) >= 1


@pytest.mark.parametrize("spec", [
    "", "@{a}", "count@", "count@{}", "count@{a,}", "count@{,a}",
    "count@{a,,b}", "count@{a b}", "count@{a}{b}", "count@{a",
    "count@a}", "count{a}", "count@{a}x", "count@{{a}}",
    "count[car]@{a,a}", "count[]@{a}", "count@@{a}", "c@unt@{a}",
])
def test_malformed_corpus_specs_raise(spec):
    with pytest.raises(ConfigurationError):
        parse_corpus_spec(spec)


@pytest.mark.parametrize("bad", [None, 7, ["count@{a}"]])
def test_non_string_corpus_specs_raise_clean_valueerror(bad):
    with pytest.raises(ValueError):
        parse_corpus_spec(bad)


def test_corpus_format_rejects_unroundtrippable_pairs():
    with pytest.raises(ConfigurationError):
        format_corpus_spec("count", [])
    with pytest.raises(ConfigurationError):
        format_corpus_spec("count", ["a", "a"])
    with pytest.raises(ConfigurationError):
        format_corpus_spec("count", ["a,b"])
    with pytest.raises(ConfigurationError):
        format_corpus_spec("co unt", ["a"])


def test_resolve_corpus_builds_member_sessions():
    corpus = resolve_corpus(
        "count[car]@{traffic,vlog}", num_frames=64)
    assert corpus.member_names == ["traffic", "vlog"]
    assert corpus.total_frames == 128
    assert corpus.scoring.name == "count[car]"
    with pytest.raises(ValueError):
        resolve_corpus("count[car]@{definitely-not-registered}")


# ----------------------------------------------------------------------
# Wire query specs: ``udf/video`` or ``udf@{members}`` (DESIGN.md §10).

@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), valid_args),
       video=valid_names)
def test_query_spec_video_form_round_trips(name, arg, video):
    udf_spec = format_udf_spec(name, arg)
    spec = format_query_spec(udf_spec, video=video)
    parsed = parse_query_spec(spec)
    assert parsed.kind == "video"
    assert (parsed.udf, parsed.video) == (udf_spec, video)
    assert parsed.canonical() == spec


@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), corpus_safe_args),
       members=member_lists)
def test_query_spec_corpus_form_round_trips(name, arg, members):
    udf_spec = format_udf_spec(name, arg)
    spec = format_query_spec(udf_spec, members=members)
    parsed = parse_query_spec(spec)
    assert parsed.kind == "corpus"
    assert (parsed.udf, parsed.members) == (udf_spec, tuple(members))
    assert parsed.canonical() == spec


@settings(max_examples=300, deadline=None, derandomize=True)
@given(spec=st.text(max_size=60))
def test_arbitrary_query_specs_parse_or_raise_clean_valueerror(spec):
    try:
        parsed = parse_query_spec(spec)
    except ConfigurationError as error:
        assert isinstance(error, ValueError)
        assert str(error)
        return
    # Whatever parsed has a canonical form that re-parses to itself.
    canonical = parsed.canonical()
    assert parse_query_spec(canonical) == parsed


def test_query_spec_slash_binds_to_the_last_segment():
    parsed = parse_query_spec("tailgating[1/2]/traffic")
    assert parsed.udf == "tailgating[1/2]"
    assert parsed.video == "traffic"


def test_format_query_spec_needs_exactly_one_target():
    with pytest.raises(ConfigurationError):
        format_query_spec("count[car]")
    with pytest.raises(ConfigurationError):
        format_query_spec("count[car]", video="a", members=["b"])


# ----------------------------------------------------------------------
# Sliding-window suffix: ``...?window=<seconds>`` (DESIGN.md §13).

positive_seconds = st.floats(
    min_value=0, exclude_min=True, allow_nan=False,
    allow_infinity=False)


@settings(max_examples=300, deadline=None, derandomize=True)
@given(seconds=positive_seconds)
def test_window_seconds_format_parse_bijection(seconds):
    from repro.api.registry import (
        format_window_seconds,
        parse_window_seconds,
    )

    text = format_window_seconds(seconds)
    assert parse_window_seconds(text) == seconds
    # Formatting is idempotent through a second cycle.
    assert format_window_seconds(parse_window_seconds(text)) == text


@settings(max_examples=300, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), valid_args),
       video=valid_names, seconds=positive_seconds)
def test_windowed_query_specs_round_trip(name, arg, video, seconds):
    udf_spec = format_udf_spec(name, arg)
    spec = format_query_spec(
        udf_spec, video=video, window_seconds=seconds)
    parsed = parse_query_spec(spec)
    assert parsed.kind == "video"
    assert (parsed.udf, parsed.video) == (udf_spec, video)
    assert parsed.window_seconds == seconds
    assert parsed.canonical() == spec
    # Dropping the window recovers exactly the unwindowed spec.
    bare = parsed.without_window()
    assert bare.window_seconds is None
    assert bare.canonical() == format_query_spec(udf_spec, video=video)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(name=valid_names, arg=st.one_of(st.none(), corpus_safe_args),
       members=member_lists, seconds=positive_seconds)
def test_windowed_corpus_specs_round_trip(name, arg, members, seconds):
    udf_spec = format_udf_spec(name, arg)
    spec = format_query_spec(
        udf_spec, members=members, window_seconds=seconds)
    parsed = parse_query_spec(spec)
    assert parsed.kind == "corpus"
    assert parsed.window_seconds == seconds
    assert parsed.canonical() == spec


@settings(max_examples=300, deadline=None, derandomize=True)
@given(base=st.text(max_size=40), tail=st.text(max_size=20))
def test_arbitrary_window_suffixes_parse_or_raise_cleanly(base, tail):
    spec = f"{base}?window={tail}"
    try:
        parsed = parse_query_spec(spec)
    except ConfigurationError as error:
        assert isinstance(error, ValueError)
        assert str(error)
        return
    assert parsed.window_seconds is not None
    assert parse_query_spec(parsed.canonical()) == parsed


@pytest.mark.parametrize("value", [
    "", "abc", "-3", "0", "nan", "inf", "-inf", " 5", "5 ", "1e1000",
    "0x10", "1,5", "window=5",
])
def test_malformed_window_values_raise_clean_valueerror(value):
    from repro.api.registry import parse_window_seconds

    with pytest.raises(ConfigurationError) as excinfo:
        parse_window_seconds(value)
    assert isinstance(excinfo.value, ValueError)
    with pytest.raises(ConfigurationError):
        parse_query_spec(f"count[car]/traffic?window={value}")


@pytest.mark.parametrize("spec", [
    "count[car]/traffic?window", "count[car]/traffic?",
    "count[car]/traffic?win=5", "count[car]/traffic?window=5?window=5",
    "?window=5", "count[car]?window=5",
])
def test_malformed_window_suffixes_raise(spec):
    with pytest.raises(ConfigurationError):
        parse_query_spec(spec)


def test_split_window_param_leaves_foreign_tails_alone():
    from repro.api.registry import split_window_param

    assert split_window_param("a/b?window=5") == ("a/b", 5.0)
    # A '?' tail that is not a window clause stays in the base (and is
    # then rejected by the name grammar, which has no '?').
    assert split_window_param("a/b?w=5") == ("a/b?w=5", None)
    assert split_window_param("a/b") == ("a/b", None)


# ----------------------------------------------------------------------
# Registered families resolve to real scoring functions.

@settings(max_examples=60, deadline=None, derandomize=True)
@given(data=st.data())
def test_registered_udfs_resolve_with_wellformed_args(data):
    name = data.draw(st.sampled_from(list_udfs()))
    if name == "count":
        arg = data.draw(st.one_of(
            st.none(), st.sampled_from(["car", "person", "bike"])))
    else:
        arg = data.draw(st.one_of(
            st.none(),
            st.floats(0.05, 30.0, allow_nan=False).map(lambda f: f"{f:g}"),
        ))
    spec = format_udf_spec(name, arg)
    udf = resolve_udf(spec)
    assert isinstance(udf, ScoringFunction)
    assert udf.name


def test_unknown_names_list_known_ones():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_udf("definitely-not-registered")
    assert "count" in str(excinfo.value)
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_video("definitely-not-registered")
    assert "traffic" in str(excinfo.value)
