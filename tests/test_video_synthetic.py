"""Unit tests for the synthetic video substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FrameIndexError
from repro.video import (
    DashcamVideo,
    ObjectCountProcess,
    SentimentVideo,
    TrafficVideo,
)


class TestObjectCountProcess:
    def test_length_and_bounds(self):
        process = ObjectCountProcess(5_000, max_objects=9, seed=1)
        assert len(process) == 5_000
        assert process.counts.min() >= 0
        assert process.counts.max() <= 9

    def test_deterministic_per_seed(self):
        a = ObjectCountProcess(1_000, seed=7)
        b = ObjectCountProcess(1_000, seed=7)
        assert np.array_equal(a.counts, b.counts)

    def test_different_seeds_differ(self):
        a = ObjectCountProcess(1_000, seed=7)
        b = ObjectCountProcess(1_000, seed=8)
        assert not np.array_equal(a.counts, b.counts)

    def test_temporal_autocorrelation(self):
        counts = ObjectCountProcess(10_000, seed=3).counts.astype(float)
        lag1 = np.corrcoef(counts[:-1], counts[1:])[0, 1]
        assert lag1 > 0.8, "counts must be strongly autocorrelated"

    def test_bursts_create_heavy_tail(self):
        counts = ObjectCountProcess(20_000, seed=5).counts
        p99 = np.percentile(counts, 99)
        median = np.median(counts)
        assert p99 >= median + 2, "peaks should be rare and high"

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            ObjectCountProcess(0)
        with pytest.raises(ConfigurationError):
            ObjectCountProcess(10, ar_coefficient=1.5)
        with pytest.raises(ConfigurationError):
            ObjectCountProcess(10, max_objects=0)

    def test_getitem(self):
        process = ObjectCountProcess(100, seed=1)
        assert process[5] == int(process.counts[5])


class TestTrafficVideo:
    def test_basic_shape(self, traffic_video):
        assert len(traffic_video) == 1_500
        frame = traffic_video.frame(10)
        assert frame.pixels.shape == (24, 24)
        assert frame.pixels.min() >= 0.0
        assert frame.pixels.max() <= 1.0
        assert frame.index == 10

    def test_truth_matches_counts(self, traffic_video):
        for i in (0, 100, 1_499):
            assert traffic_video.frame(i).truth["count"] == \
                traffic_video.counts[i]

    def test_objects_match_count(self, traffic_video):
        for i in (0, 250, 900):
            labelled = [
                b for b in traffic_video.objects(i)
                if b.label == traffic_video.object_label
            ]
            assert len(labelled) == traffic_video.true_count(i)

    def test_distractors_not_counted(self):
        video = TrafficVideo("d", 300, seed=9, distractor_mean=2.0)
        i = int(np.argmax(video.distractor_counts))
        labels = {b.label for b in video.objects(i)}
        assert "person" in labels  # distractors exist
        cars = [b for b in video.objects(i) if b.label == "car"]
        assert len(cars) == video.true_count(i)

    def test_rendering_deterministic(self, traffic_video):
        a = traffic_video.pixels(77)
        b = traffic_video.pixels(77)
        assert np.array_equal(a, b)

    def test_consecutive_frames_similar(self, traffic_video):
        a = traffic_video.pixels(500)
        b = traffic_video.pixels(501)
        mse = float(np.mean((a - b) ** 2))
        assert mse < 0.01

    def test_pixels_predict_count(self, traffic_video):
        """Foreground mass must correlate with the count."""
        idx = np.arange(0, 1_500, 5)
        pixels = traffic_video.batch_pixels(idx)
        mass = pixels.reshape(len(idx), -1).mean(axis=1)
        corr = np.corrcoef(mass, traffic_video.counts[idx])[0, 1]
        assert corr > 0.5

    def test_out_of_range_raises(self, traffic_video):
        with pytest.raises(FrameIndexError):
            traffic_video.frame(1_500)
        with pytest.raises(FrameIndexError):
            traffic_video.pixels(-1)

    def test_batch_pixels_stacks(self, traffic_video):
        batch = traffic_video.batch_pixels([1, 2, 3])
        assert batch.shape == (3, 24, 24)
        assert batch.dtype == np.float32

    def test_batch_pixels_empty(self, traffic_video):
        batch = traffic_video.batch_pixels([])
        assert batch.shape == (0, 24, 24)

    def test_truth_array(self, traffic_video):
        truth = traffic_video.truth_array()
        assert truth.shape == (1_500,)
        assert np.array_equal(truth, traffic_video.counts.astype(float))

    def test_count_process_length_mismatch_rejected(self):
        process = ObjectCountProcess(100, seed=1)
        with pytest.raises(ConfigurationError):
            TrafficVideo("bad", 200, count_process=process)

    def test_iteration(self):
        video = TrafficVideo("small", 5, seed=2)
        frames = list(video)
        assert [f.index for f in frames] == [0, 1, 2, 3, 4]


class TestDashcamVideo:
    def test_distance_bounds(self, dashcam_video):
        assert dashcam_video.distances.min() >= dashcam_video.min_distance
        assert dashcam_video.distances.max() <= dashcam_video.max_distance

    def test_has_close_approach_episodes(self, dashcam_video):
        assert dashcam_video.distances.min() < 10.0

    def test_truth_and_accessor_agree(self, dashcam_video):
        assert dashcam_video.frame(5).truth["distance"] == \
            dashcam_video.true_distance(5)

    def test_pixels_predict_distance(self, dashcam_video):
        idx = np.arange(0, len(dashcam_video), 5)
        pixels = dashcam_video.batch_pixels(idx)
        mass = pixels.reshape(len(idx), -1).mean(axis=1)
        corr = np.corrcoef(mass, dashcam_video.distances[idx])[0, 1]
        assert corr < -0.5, "closer vehicle -> bigger blob -> more mass"

    def test_invalid_distances_rejected(self):
        with pytest.raises(ConfigurationError):
            DashcamVideo("bad", 100, mean_distance=1.0, min_distance=2.0)


class TestSentimentVideo:
    def test_happiness_in_unit_interval(self, sentiment_video):
        assert sentiment_video.happiness.min() >= 0.0
        assert sentiment_video.happiness.max() <= 1.0

    def test_truth_key(self, sentiment_video):
        frame = sentiment_video.frame(3)
        assert frame.truth["happiness"] == sentiment_video.true_happiness(3)

    def test_pixels_predict_happiness(self, sentiment_video):
        idx = np.arange(0, len(sentiment_video), 4)
        pixels = sentiment_video.batch_pixels(idx)
        mass = pixels.reshape(len(idx), -1).mean(axis=1)
        corr = np.corrcoef(mass, sentiment_video.happiness[idx])[0, 1]
        assert corr > 0.8


class TestValidation:
    def test_rejects_zero_frames(self):
        with pytest.raises(ConfigurationError):
            TrafficVideo("bad", 0)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ConfigurationError):
            TrafficVideo("bad", 10, resolution=(2, 2))

    def test_rejects_bad_fps(self):
        with pytest.raises(ConfigurationError):
            TrafficVideo("bad", 10, fps=0)
