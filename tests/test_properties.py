"""Property-based tests (hypothesis) on the core invariants.

These cover the probabilistic machinery with randomized structure:
quantization conservation, CDF monotonicity, the equivalence of the
incremental confidence to the direct product and to possible-world
enumeration, the Eq. 6 closed form versus simulation, and the Eq. 7
bound's dominance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reference import (
    expected_confidence_bruteforce,
    topk_prob_bruteforce,
)
from repro.core.select_candidate import CandidateSelector
from repro.core.topk_prob import ConfidenceState
from repro.core.uncertain import QuantizationGrid, grid_for, quantize_mixtures
from repro.metrics import precision_at_k, rank_distance, score_error
from repro.models import GaussianMixture

from conftest import make_relation

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def pmf_strategy(levels=4):
    """A strictly valid pmf over ``levels`` levels."""
    return st.lists(
        st.floats(0.01, 1.0), min_size=levels, max_size=levels,
    ).map(lambda w: (np.asarray(w) / np.sum(w)).tolist())


def relation_strategy(min_tuples=3, max_tuples=6, levels=4):
    return st.lists(
        pmf_strategy(levels), min_size=min_tuples, max_size=max_tuples)


class TestQuantizationProperties:
    @SETTINGS
    @given(
        mus=st.lists(st.floats(0.0, 12.0), min_size=1, max_size=3),
        sigmas=st.lists(st.floats(0.1, 3.0), min_size=1, max_size=3),
        step=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_pmf_conservation_and_cdf_monotone(self, mus, sigmas, step):
        g = min(len(mus), len(sigmas))
        mix = GaussianMixture(
            pi=np.ones((1, g)) / g,
            mu=np.asarray(mus[:g])[None, :],
            sigma=np.asarray(sigmas[:g])[None, :],
        )
        grid = grid_for(mix, floor=0.0, step=step)
        pmf = quantize_mixtures(mix, grid)
        assert pmf.shape == (1, grid.num_levels)
        assert pmf.min() >= 0.0
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        cdf = np.cumsum(pmf[0])
        assert (np.diff(cdf) >= -1e-12).all()

    @SETTINGS
    @given(
        floor=st.floats(-5.0, 5.0),
        step=st.floats(0.1, 2.0),
        levels=st.integers(2, 50),
        value=st.integers(0, 49),
    )
    def test_grid_roundtrip(self, floor, step, levels, value):
        level = value % levels
        grid = QuantizationGrid(floor=floor, step=step, num_levels=levels)
        assert int(grid.level_of(grid.score_of(level))) == level


class TestConfidenceProperties:
    @SETTINGS
    @given(pmfs=relation_strategy(), level=st.integers(0, 3))
    def test_incremental_equals_direct(self, pmfs, level):
        relation = make_relation(pmfs)
        relation.mark_certain(0, float(level))
        state = ConfidenceState(relation)
        assert state.topk_prob(level) == pytest.approx(
            state.topk_prob_direct(level), abs=1e-12)

    @SETTINGS
    @given(pmfs=relation_strategy(max_tuples=5), level=st.integers(0, 3))
    def test_eq2_equals_world_enumeration(self, pmfs, level):
        relation = make_relation(pmfs)
        relation.mark_certain(0, float(level))
        state = ConfidenceState(relation)
        brute = topk_prob_bruteforce(relation, [0], level)
        assert state.topk_prob(level) == pytest.approx(brute, abs=1e-10)

    @SETTINGS
    @given(pmfs=relation_strategy(), level=st.integers(0, 3))
    def test_cleaning_updates_consistently(self, pmfs, level):
        relation = make_relation(pmfs)
        relation.mark_certain(0, float(level))
        state = ConfidenceState(relation)
        # Clean the last tuple at some score; incremental must match a
        # fresh rebuild.
        position = len(pmfs) - 1
        state.remove(position)
        relation.mark_certain(position, 1.0)
        rebuilt = ConfidenceState(relation)
        for t in range(4):
            assert state.joint_cdf(t) == pytest.approx(
                rebuilt.joint_cdf(t), abs=1e-12)


class TestSelectorProperties:
    @SETTINGS
    @given(pmfs=relation_strategy(min_tuples=4, max_tuples=6))
    def test_eq6_equals_simulation(self, pmfs):
        relation = make_relation(pmfs)
        relation.mark_certain(0, 3.0)
        relation.mark_certain(1, 2.0)
        state = ConfidenceState(relation)
        selector = CandidateSelector(relation, state)
        uncertain = relation.uncertain_positions()
        expected = selector.expected_confidences(uncertain, 2, 3)
        for i, position in enumerate(uncertain):
            brute = expected_confidence_bruteforce(relation, int(position), 2)
            assert expected[i] == pytest.approx(brute, abs=1e-9)

    @SETTINGS
    @given(pmfs=relation_strategy(min_tuples=4, max_tuples=6))
    def test_upper_bound_dominates(self, pmfs):
        relation = make_relation(pmfs)
        relation.mark_certain(0, 3.0)
        relation.mark_certain(1, 2.0)
        state = ConfidenceState(relation)
        selector = CandidateSelector(relation, state)
        uncertain = relation.uncertain_positions()
        expected = selector.expected_confidences(uncertain, 2, 3)
        p_hat = state.topk_prob(2)
        gamma = state.joint_cdf(3)
        bound = p_hat + gamma * selector.psi(uncertain, 2, 3)
        assert (bound >= expected - 1e-9).all()


class TestMetricProperties:
    @SETTINGS
    @given(
        scores=st.lists(
            st.floats(0.0, 20.0), min_size=6, max_size=30),
        k=st.integers(1, 5),
    )
    def test_exact_answer_is_perfect(self, scores, k):
        truth = np.asarray(scores)
        order = np.lexsort((np.arange(truth.size), -truth))
        answer = order[:k].tolist()
        assert precision_at_k(answer, truth, k) == 1.0
        assert rank_distance(answer, truth, k) == 0.0
        answer_scores = [truth[i] for i in answer]
        assert score_error(answer_scores, truth, k) == pytest.approx(0.0)

    @SETTINGS
    @given(
        scores=st.lists(
            st.floats(0.0, 20.0), min_size=8, max_size=30),
        k=st.integers(1, 4),
        seed=st.integers(0, 1_000),
    )
    def test_metrics_bounded(self, scores, k, seed):
        truth = np.asarray(scores)
        rng = np.random.default_rng(seed)
        answer = rng.choice(truth.size, size=k, replace=False).tolist()
        assert 0.0 <= precision_at_k(answer, truth, k) <= 1.0
        assert 0.0 <= rank_distance(answer, truth, k) <= 1.0
        answer_scores = [truth[i] for i in answer]
        assert score_error(answer_scores, truth, k) >= 0.0
