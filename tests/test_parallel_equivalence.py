"""Equivalence certification for the parallel subsystem.

Two families of properties, both seeded/derandomized:

* **Batched state == from-scratch state.** After any random sequence
  of batched cleanings, `ConfidenceState`'s incrementally maintained
  log-CDF sums, zero counts, and confidence equal (a) a from-scratch
  recompute over the cleaned relation and (b) the tuple-by-tuple
  update path, and `UncertainRelation.mark_certain_many` leaves the
  relation bit-identical to per-tuple `mark_certain`.

* **Parallel sweep == serial sweep.** A sweep executed through
  `ParallelRunner` on a process pool produces `QueryReport.to_json`
  strings byte-identical to the serial path at any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EverestConfig, ParallelRunner, Session
from repro.core.select_candidate import CandidateSelector
from repro.core.topk_prob import ConfidenceState
from repro.core.uncertain import QuantizationGrid, UncertainRelation
from repro.errors import UncertainRelationError
from repro.oracle import counting_udf
from repro.video import TrafficVideo


# ----------------------------------------------------------------------
# Random-relation machinery (numpy-seeded so hypothesis shrinks over a
# single integer, keeping example generation fast and reproducible).

def random_relation(seed: int) -> UncertainRelation:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 14))
    levels = int(rng.integers(3, 8))
    pmf = rng.random((n, levels))
    # Sparsify aggressively so zero CDF entries (the -inf / zero-count
    # bookkeeping) are exercised, but keep every row normalizable.
    pmf[rng.random((n, levels)) < 0.45] = 0.0
    pmf[np.arange(n), rng.integers(0, levels, size=n)] += 0.5
    pmf /= pmf.sum(axis=1, keepdims=True)
    grid = QuantizationGrid(floor=0.0, step=1.0, num_levels=levels)
    return UncertainRelation(np.arange(n), pmf, grid)


def random_batches(rng, relation):
    """A random sequence of disjoint cleaning batches (pos, score)."""
    available = list(range(len(relation)))
    rng.shuffle(available)
    batches = []
    top = relation.grid.max_level
    while available and rng.random() < 0.9:
        size = int(rng.integers(1, min(4, len(available)) + 1))
        positions = np.array(sorted(available[:size]), dtype=np.int64)
        available = available[size:]
        scores = rng.uniform(-0.4, top + 0.4, size=size)
        batches.append((positions, scores))
    return batches


@settings(max_examples=40, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10**9))
def test_batched_cleaning_equals_sequential_and_scratch(seed):
    relation = random_relation(seed)
    twin = relation.copy()
    state = ConfidenceState(relation)
    twin_state = ConfidenceState(twin)
    rng = np.random.default_rng(seed + 1)

    for positions, scores in random_batches(rng, relation):
        # Batched hot path vs the tuple-by-tuple reference path.
        state.remove_many(positions)
        relation.mark_certain_many(positions, scores)
        for position, score in zip(positions, scores):
            twin_state.remove(int(position))
            twin.mark_certain(int(position), float(score))

        # Relation contents are bit-identical (pure 0/1 assignments).
        np.testing.assert_array_equal(relation.pmf, twin.pmf)
        np.testing.assert_array_equal(relation.cdf, twin.cdf)
        np.testing.assert_array_equal(relation.certain, twin.certain)
        np.testing.assert_array_equal(
            relation.exact_scores, twin.exact_scores)

        # Incremental joint-CDF state vs both references.
        scratch = ConfidenceState(relation)
        for reference in (twin_state, scratch):
            np.testing.assert_array_equal(
                state.uncertain_mask, reference.uncertain_mask)
            np.testing.assert_array_equal(
                state.zero_count, reference.zero_count)
            np.testing.assert_allclose(
                state.finite_sum, reference.finite_sum, atol=1e-9)

        # Confidence at every level: incremental == direct recompute.
        for level in range(relation.grid.num_levels):
            assert state.topk_prob(level) == pytest.approx(
                state.topk_prob_direct(level), abs=1e-12)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10**9))
def test_vectorized_expected_confidence_matches_bruteforce(seed):
    relation = random_relation(seed)
    state = ConfidenceState(relation)
    rng = np.random.default_rng(seed + 2)

    # Clean a prefix so the exclusion products run over a proper subset.
    batches = random_batches(rng, relation)
    if batches:
        positions, scores = batches[0]
        state.remove_many(positions)
        relation.mark_certain_many(positions, scores)
    uncertain = np.flatnonzero(state.uncertain_mask)
    if uncertain.size == 0:
        return
    top = relation.grid.max_level
    k_level = int(rng.integers(0, top + 1))
    p_level = int(rng.integers(k_level, top + 1))

    selector = CandidateSelector(relation, state)
    got = selector.expected_confidences(uncertain, k_level, p_level)

    # Brute-force Equation 6 straight from the pmf/cdf matrices.
    for f, value in zip(uncertain, got):
        others = uncertain[uncertain != f]

        def joint(level):
            return float(np.prod(relation.cdf[others, level]))

        expected = relation.cdf[f, k_level] * joint(k_level)
        for level in range(k_level + 1, p_level + 1):
            expected += relation.pmf[f, level] * joint(level)
        expected += (1.0 - relation.cdf[f, p_level]) * joint(p_level)
        assert value == pytest.approx(expected, abs=1e-9)


def test_batch_updates_reject_duplicates_and_certain():
    relation = random_relation(7)
    state = ConfidenceState(relation)
    with pytest.raises(UncertainRelationError):
        relation.mark_certain_many(np.array([0, 0]), np.array([1.0, 2.0]))
    with pytest.raises(UncertainRelationError):
        state.remove_many(np.array([1, 1]))
    relation.mark_certain_many(np.array([0]), np.array([1.0]))
    state.remove_many(np.array([0]))
    with pytest.raises(UncertainRelationError):
        relation.mark_certain_many(np.array([0]), np.array([1.0]))
    with pytest.raises(UncertainRelationError):
        state.remove_many(np.array([0]))


# ----------------------------------------------------------------------
# End-to-end: parallel sweeps deep-equal serial ones.

@pytest.fixture(scope="module")
def sweep_session():
    video = TrafficVideo("par-eq", 800, seed=7)
    return Session(video, counting_udf("car"), config=EverestConfig.fast())


@pytest.fixture(scope="module")
def sweep_plans(sweep_session):
    base = sweep_session.query().guarantee(0.9)
    return [
        base.topk(3).plan(),
        base.topk(5).plan(),
        base.topk(4).windows(size=10).plan(),
    ]


def test_parallel_sweep_reports_bit_identical(sweep_session, sweep_plans):
    serial = ParallelRunner(1).run_sweep(sweep_session, sweep_plans)
    for workers in (2, 3):
        pooled = ParallelRunner(workers).run_sweep(
            sweep_session, sweep_plans)
        assert [r.to_json() for r in pooled] == \
            [r.to_json() for r in serial], f"workers={workers}"
    # Sanity: the sweep actually answered the queries.
    assert all(r.confidence >= 0.9 for r in serial)
    assert serial[0].answer_ids != []


def test_executor_workers_and_query_parallel_flag(
        sweep_session, sweep_plans):
    from repro.api.executor import QueryExecutor

    serial = [
        QueryExecutor(sweep_session).execute(plan)
        for plan in sweep_plans
    ]
    pooled = QueryExecutor(sweep_session, workers=2).execute_many(
        sweep_plans)
    # Pooled reports are the deterministic-timing normalization of the
    # serial ones: identical up to the measured select-candidate time.
    for a, b in zip(pooled, serial):
        assert a.answer_ids == b.answer_ids
        assert a.answer_scores == b.answer_scores
        assert a.confidence == b.confidence
        assert a.cleaned == b.cleaned
        assert a.oracle_calls == b.oracle_calls

    via_query = sweep_session.query().topk(3).guarantee(0.9).run(
        parallel=True, workers=2)
    reference = sweep_session.query().topk(3).guarantee(0.9) \
        .deterministic_timing().run()
    assert via_query.to_json() == reference.to_json()


def test_execute_sweep_truth_cache_respects_scoring(sweep_session):
    from repro.experiments.runner import SweepPoint, execute_sweep

    # Two sessions over the SAME video object with different UDFs: the
    # parallel path's ground-truth cache must key on the scoring
    # function too, or the second UDF is scored against the first's
    # truth and serial/parallel metrics silently diverge.
    video = sweep_session.video
    other = Session(
        video, counting_udf("person"), config=EverestConfig.fast())
    points = [
        SweepPoint(sweep_session, k=3),
        SweepPoint(other, k=3),
        SweepPoint(sweep_session, k=4),
    ]
    serial = execute_sweep(points, workers=1)
    pooled = execute_sweep(points, workers=2)
    for a, b in zip(serial, pooled):
        assert a.metrics == b.metrics
        assert a.report.answer_ids == b.report.answer_ids


def test_phase1_built_once_and_shared(sweep_session, sweep_plans):
    before = sweep_session.phase1_runs
    ParallelRunner(2).run_sweep(sweep_session, sweep_plans)
    # The parent session's cache served every worker; no re-builds.
    assert sweep_session.phase1_runs == max(before, 1)
