"""Tests for the cost-based multi-query optimizer (DESIGN.md §11).

Each layer in isolation — the ledger-calibrated
:class:`~repro.optimizer.estimator.CostEstimator`, the
shared-artifact-aware :class:`~repro.optimizer.planner.WorkloadPlanner`
and the scheduler-side
:class:`~repro.optimizer.policy.CostOrderedPolicy` — plus the service
integration contract: ``ordering="cost"`` changes *when* work runs and
what it physically costs, never the bytes of any report.
"""

from __future__ import annotations

import pytest

from repro import EverestConfig, QueryService, Session
from repro.api.session import estimate_phase1_seconds, phase1_key
from repro.errors import QueryError, ServiceError
from repro.optimizer import (
    CostEstimator,
    CostOrderedPolicy,
    WorkloadPlanner,
)
from repro.oracle.cost import CostModel
from repro.service.artifacts import artifact_digest, group_key
from repro.service.scheduler import Job, QueryFuture
from repro.video import TrafficVideo

CONFIG = EverestConfig.fast()


def _session(name="opt", seed=11, frames=400):
    return Session.open(
        TrafficVideo(name, frames, seed=seed), "count[car]", config=CONFIG)


def _plan(session, k=3):
    return session.query().topk(k).guarantee(0.9).plan()


# ----------------------------------------------------------------------
# CostEstimator


class TestCostEstimator:
    def test_cold_prediction_uses_phase1_prior(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        pred = estimator.predict(
            plan, group="g", digest="d", warm=False)
        assert pred.phase1_seconds == pytest.approx(
            estimate_phase1_seconds(
                plan.num_frames, plan.unit_costs, plan.config))
        assert not pred.phase1_warm
        assert pred.lane == "inline"
        assert pred.physical_seconds > pred.phase2_seconds

    def test_warm_prediction_charges_no_phase1(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        pred = estimator.predict(plan, group="g", digest="d", warm=True)
        assert pred.phase1_seconds == 0.0
        assert pred.phase1_warm
        assert pred.physical_seconds == pytest.approx(
            pred.phase2_seconds * pred.fresh_fraction)

    def test_build_history_replaces_prior(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        ledger = CostModel(plan.unit_costs, wall_clock=False)
        ledger.add_seconds("cmdn_train", 12.5)
        estimator.observe_build("d", ledger)
        pred = estimator.predict(plan, group="g", digest="d", warm=False)
        assert pred.phase1_seconds == pytest.approx(12.5)

    def test_query_history_replaces_confirm_prior(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        cold = estimator.predict(plan, group="g", digest="d", warm=True)
        ledger = CostModel(plan.unit_costs, wall_clock=False)
        ledger.charge("oracle_confirm", 7)
        estimator.observe_query(
            plan, group="g", phase2_cost=ledger,
            wall_seconds=0.1, lane="inline", predicted=cold)
        warmed = estimator.predict(plan, group="g", digest="d", warm=True)
        assert warmed.confirm_calls == pytest.approx(7)
        assert warmed.confirm_calls != cold.confirm_calls

    def test_calibration_tracks_estimate_vs_actual(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        pred = estimator.predict(plan, group="g", digest="d", warm=True)
        ledger = CostModel(plan.unit_costs, wall_clock=False)
        ledger.charge("oracle_confirm", 10)
        estimator.observe_query(
            plan, group="g", phase2_cost=ledger,
            wall_seconds=0.1, lane="inline", predicted=pred)
        cal = estimator.calibration()
        assert cal.observed == 1
        assert cal.estimated_seconds == pytest.approx(pred.phase2_seconds)
        assert cal.actual_seconds == pytest.approx(ledger.total_seconds())
        assert cal.mean_abs_relative_error >= 0.0

    def test_cache_coverage_scales_physical_cost(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        dry = estimator.predict(plan, group="g", digest="d", warm=True)
        half = estimator.predict(
            plan, group="g", digest="d", warm=True, cache_coverage=0.5)
        assert half.fresh_fraction == pytest.approx(0.5)
        assert half.physical_seconds == pytest.approx(
            dry.physical_seconds / 2)
        # Ledger view is untouched: coverage saves physical work only.
        assert half.phase2_seconds == pytest.approx(dry.phase2_seconds)

    def test_lane_choice_clears_overhead(self):
        session = _session()
        plan = _plan(session)
        estimator = CostEstimator()
        assert estimator.predict(
            plan, group="g", digest="d", warm=True,
            pool_available=False).lane == "inline"
        heavy = estimator.predict(
            plan, group="g", digest="d", warm=True, pool_available=True)
        assert heavy.lane == "process"  # prior confirms dwarf overhead
        assert estimator.predict(
            plan, group="g", digest="d", warm=True, cache_coverage=1.0,
            pool_available=True).lane == "inline"

    def test_persistence_round_trip(self, tmp_path):
        session = _session()
        plan = _plan(session)
        target = tmp_path / "estimator"
        first = CostEstimator(path=target)
        ledger = CostModel(plan.unit_costs, wall_clock=False)
        ledger.charge("oracle_confirm", 9)
        pred = first.predict(plan, group="g", digest="d", warm=True)
        first.observe_query(
            plan, group="g", phase2_cost=ledger,
            wall_seconds=0.2, lane="inline", predicted=pred)
        first.observe_build("d", ledger)
        first.save()

        second = CostEstimator(path=target)
        assert second.calibration() == first.calibration()
        again = second.predict(plan, group="g", digest="d", warm=False)
        assert again.phase1_seconds == pytest.approx(
            ledger.total_seconds())
        assert again.confirm_calls == pytest.approx(9)

    def test_missing_checkpoint_is_a_cold_start(self, tmp_path):
        estimator = CostEstimator(path=tmp_path / "never-written")
        assert estimator.calibration().observed == 0
        with pytest.raises(ValueError):
            CostEstimator().save()


# ----------------------------------------------------------------------
# CostOrderedPolicy


def _jobs(specs):
    """Jobs from (cost, batch_key) pairs; payload carries the cost."""
    from collections import deque

    queue = deque()
    for seq, (cost, key) in enumerate(specs):
        queue.append(Job(
            seq=seq, tenant="t", batch_key=key,
            payload=cost, future=QueryFuture(seq, "t")))
    return queue


class TestCostOrderedPolicy:
    def test_cheapest_job_leads(self):
        policy = CostOrderedPolicy(float)
        queue = _jobs([(5.0, "a"), (1.0, "b"), (3.0, "c")])
        batch = policy.take_batch(queue, max_batch=8)
        assert [job.payload for job in batch] == [1.0]
        assert [job.payload for job in queue] == [5.0, 3.0]

    def test_gathers_same_key_beyond_adjacency(self):
        policy = CostOrderedPolicy(float)
        # a and b interleaved: FIFO adjacency would batch one at a
        # time; the cost policy gathers all of the lead's key.
        queue = _jobs([(2.0, "a"), (9.0, "b"), (2.5, "a"), (8.0, "b")])
        batch = policy.take_batch(queue, max_batch=8)
        assert [job.batch_key for job in batch] == ["a", "a"]
        assert [job.payload for job in batch] == [2.0, 2.5]
        assert [job.batch_key for job in queue] == ["b", "b"]

    def test_max_batch_bounds_the_gather(self):
        policy = CostOrderedPolicy(float)
        queue = _jobs([(1.0, "a")] * 5)
        batch = policy.take_batch(queue, max_batch=3)
        assert len(batch) == 3
        assert len(queue) == 2

    def test_none_batch_key_never_gathers(self):
        policy = CostOrderedPolicy(float)
        queue = _jobs([(1.0, None), (2.0, None)])
        batch = policy.take_batch(queue, max_batch=8)
        assert len(batch) == 1

    def test_cost_failure_degrades_to_fifo(self):
        def broken(payload):
            raise RuntimeError("no price")

        policy = CostOrderedPolicy(broken)
        queue = _jobs([(7.0, "a"), (1.0, "b")])
        batch = policy.take_batch(queue, max_batch=8)
        # Every job prices 0.0; seq breaks the tie -> submission order.
        assert [job.seq for job in batch] == [0]

    def test_equal_costs_keep_submission_order(self):
        policy = CostOrderedPolicy(lambda payload: 1.0)
        queue = _jobs([(1.0, "a"), (1.0, "b"), (1.0, "c")])
        batch = policy.take_batch(queue, max_batch=8)
        assert [job.seq for job in batch] == [0]


# ----------------------------------------------------------------------
# WorkloadPlanner


class TestWorkloadPlanner:
    def test_groups_same_artifact_consecutively(self):
        session = _session()
        other = Session.open(
            TrafficVideo("opt-b", 400, seed=12), "count[car]",
            config=CONFIG)
        queries = [
            session.query().topk(3).guarantee(0.9),
            other.query().topk(3).guarantee(0.9),
            session.query().topk(5).guarantee(0.9),
            other.query().topk(5).guarantee(0.9),
        ]
        plan = WorkloadPlanner(CostEstimator()).plan(queries)
        digests = [item.digest for item in plan.items]
        # Two groups, each contiguous.
        assert len(set(digests)) == 2
        assert digests[0] == digests[1] and digests[2] == digests[3]
        assert sorted(plan.order()) == [0, 1, 2, 3]

    def test_only_group_head_pays_the_build(self):
        session = _session()
        queries = [
            session.query().topk(5).guarantee(0.9),
            session.query().topk(3).guarantee(0.9),
        ]
        plan = WorkloadPlanner(CostEstimator()).plan(queries)
        head, tail = plan.items
        assert not head.prediction.phase1_warm
        assert head.prediction.phase1_seconds > 0
        assert tail.prediction.phase1_warm
        assert tail.prediction.phase1_seconds == 0.0
        # Cheapest Phase 2 leads (k=3 confirms less under the prior).
        assert head.plan.k == 3

    def test_session_pinned_artifact_plans_warm(self):
        session = _session()
        session.phase1(CONFIG)  # pin the artifact in the session
        plan = WorkloadPlanner(CostEstimator()).plan(
            [session.query().topk(3).guarantee(0.9)])
        assert plan.items[0].prediction.phase1_warm

    def test_compiled_plan_needs_session(self):
        session = _session()
        compiled = _plan(session)
        planner = WorkloadPlanner(CostEstimator())
        with pytest.raises(QueryError):
            planner.plan([compiled])
        plan = planner.plan([compiled], session=session)
        assert plan.items[0].plan is compiled

    def test_explain_renders_every_item(self):
        session = _session()
        plan = WorkloadPlanner(CostEstimator()).plan(
            [session.query().topk(3).guarantee(0.9)])
        text = plan.explain()
        assert "WorkloadPlan: 1 queries" in text
        assert "top-3@0.9" in text
        assert "physical" in text

    def test_plan_explain_accepts_estimate(self):
        session = _session()
        compiled = _plan(session)
        pred = CostEstimator().predict(
            compiled, group="g", digest="d", warm=False)
        text = compiled.explain(estimate=pred)
        assert "optimizer:" in text
        assert "cold" in text
        assert compiled.explain().count("\n") == text.count("\n") - 1


# ----------------------------------------------------------------------
# Service integration


class TestServiceIntegration:
    def _queries(self, service, frames=400):
        sessions = [
            service.open_session(
                TrafficVideo(name, frames, seed=seed), "count[car]",
                config=CONFIG)
            for name, seed in (("int-a", 21), ("int-b", 22))
        ]
        # Interleave artifacts so FIFO order alternates between them.
        return [
            sessions[i % 2].query().topk(3 + 2 * (i // 2)).guarantee(0.9)
            for i in range(4)
        ]

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ServiceError):
            QueryService(workers=1, ordering="priority")

    def test_cost_ordering_matches_fifo_bytes(self):
        with QueryService(workers=1, use_processes=False) as fifo:
            baseline = [
                r.to_json()
                for r in fifo.gather(
                    [fifo.submit(q) for q in self._queries(fifo)])
            ]
        with QueryService(
                workers=1, use_processes=False, ordering="cost") as cost:
            queries = self._queries(cost)
            wplan = cost.plan_workload(queries)
            reports = cost.gather(cost.submit_plan(wplan))
            optimized = [r.to_json() for r in reports]
        assert optimized == baseline

    def test_submit_plan_aligns_futures_with_submission_order(self):
        with QueryService(
                workers=1, use_processes=False, ordering="cost") as service:
            queries = self._queries(service)
            wplan = service.plan_workload(queries)
            # The interleaved submission reorders into contiguous
            # artifact groups: a permutation, not the identity.
            assert sorted(wplan.order()) == list(range(len(queries)))
            assert wplan.order() != list(range(len(queries)))
            reports = service.gather(service.submit_plan(wplan))
            # futures[i] answers queries[i]: k values line up.
            for query, report in zip(queries, reports):
                assert report.k == query.plan().k

    def test_stats_surface_optimizer_fields(self):
        with QueryService(
                workers=1, use_processes=False, ordering="cost") as service:
            queries = self._queries(service)
            service.gather(
                service.submit_plan(service.plan_workload(queries)))
            stats = service.stats()
            assert stats.ordering == "cost"
            assert stats.planned == len(queries)
            assert stats.calibration_observed == len(queries)
            assert stats.estimated_seconds > 0
            assert stats.actual_seconds > 0
            assert stats.build_seconds > 0
            payload = stats.as_dict()
            for field in ("ordering", "planned", "calibration_observed",
                          "estimated_seconds", "actual_seconds",
                          "calibration_error", "build_seconds"):
                assert field in payload

    def test_fifo_service_reports_fifo_stats(self):
        with QueryService(workers=1, use_processes=False) as service:
            stats = service.stats()
            assert stats.ordering == "fifo"
            assert stats.planned == 0
            assert stats.calibration_observed == 0

    def test_estimator_persists_through_warm_dir(self, tmp_path):
        video = TrafficVideo("persist", 400, seed=23)
        with QueryService(
                workers=1, use_processes=False, ordering="cost",
                warm_dir=tmp_path) as service:
            session = service.open_session(
                video, "count[car]", config=CONFIG)
            service.submit(
                session.query().topk(3).guarantee(0.9)).result(60)
        reborn = CostEstimator(path=tmp_path / "cost_estimator")
        assert reborn.calibration().observed == 1

    def test_calibration_improves_with_history(self):
        """The second identical query predicts from observed ledgers."""
        with QueryService(
                workers=1, use_processes=False, ordering="cost") as service:
            session = service.open_session(
                TrafficVideo("cal", 400, seed=24), "count[car]",
                config=CONFIG)
            query = session.query().topk(3).guarantee(0.9)
            first = service.submit(query)
            first.result(60)
            plan = query.plan()
            pred = service._predict(session, plan)
            actual = service.outcomes()[0].phase2_cost.total_seconds()
            assert pred.phase2_seconds == pytest.approx(actual)
            assert pred.phase1_warm  # the artifact is now resident
