"""Regression tests: the oracle cost ledger under parallelism.

Pin the two ledger invariants the parallel subsystem relies on:

* Per-worker Phase 2 `CostModel` ledgers merge key-wise into one
  sweep ledger, and the shared Phase 1 ledger is counted exactly once
  no matter how many grid points (or workers) reused it.
* `OracleBudgetExceededError` fires deterministically — same type,
  same budget, same grid position — whether the sweep runs serially
  or on a process pool.
"""

from __future__ import annotations

import pytest

from repro import EverestConfig, ParallelRunner, Session
from repro.errors import OracleBudgetExceededError
from repro.oracle import CostModel, counting_udf, merge_cost_models
from repro.video import TrafficVideo


@pytest.fixture(scope="module")
def session():
    video = TrafficVideo("ledger", 700, seed=13)
    return Session(video, counting_udf("car"), config=EverestConfig.fast())


def test_cost_model_merge_adds_keywise():
    a = CostModel({"oracle_infer": 0.2})
    b = CostModel({"oracle_infer": 0.2})
    a.charge("oracle_infer", 10)
    a.charge("decode", 5)
    b.charge("oracle_infer", 3)
    b.add_seconds("select_candidate", 1.5)
    merged = merge_cost_models([a, b])
    assert merged.units("oracle_infer") == 13
    assert merged.units("decode") == 5
    assert merged.seconds("select_candidate") == 1.5
    assert merged.total_seconds() == pytest.approx(
        a.total_seconds() + b.total_seconds())
    # Merging never mutates the sources.
    assert a.units("oracle_infer") == 10
    assert b.units("oracle_infer") == 3


def test_deterministic_ledger_skips_wall_clock():
    ledger = CostModel(wall_clock=False)
    with ledger.timer("select_candidate"):
        sum(range(1000))
    assert ledger.seconds("select_candidate") == 0.0
    clone = ledger.copy()
    assert clone.wall_clock is False


@pytest.mark.parametrize("workers", [1, 2])
def test_sweep_ledger_merges_without_double_counting(session, workers):
    plans = [
        session.query().topk(k).guarantee(0.9).plan() for k in (3, 4, 5)
    ]
    outcome = ParallelRunner(workers).run_grid_detailed(
        [(session, plan) for plan in plans])

    # One Phase 1 ledger despite three grid points sharing it.
    assert len(outcome.phase1_costs) == 1
    assert len(outcome.phase2_costs) == len(plans)

    merged = outcome.merged_cost()
    phase1 = session.phase1().cost_model
    # Phase 1 charges appear exactly once (not once per grid point).
    assert merged.units("oracle_label") == phase1.units("oracle_label")
    assert merged.units("cmdn_train") == phase1.units("cmdn_train")
    # Phase 2 charges are the exact sum of the per-query ledgers.
    assert merged.units("oracle_confirm") == pytest.approx(sum(
        cost.units("oracle_confirm") for cost in outcome.phase2_costs))
    # And each per-query ledger is consistent with its own report: the
    # confirm units are the oracle calls beyond Phase 1 labelling.
    label_calls = session.phase1().oracle_calls
    for report, cost in zip(outcome.reports, outcome.phase2_costs):
        assert cost.units("oracle_confirm") == \
            report.oracle_calls - label_calls
        assert cost.units("oracle_label") == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_budget_error_fires_deterministically(session, workers):
    budget = 3
    plans = [
        session.query().topk(3).guarantee(0.99)
        .oracle_budget(budget).plan(),
        session.query().topk(3).guarantee(0.9).plan(),
    ]
    with pytest.raises(OracleBudgetExceededError) as exc_info:
        ParallelRunner(workers).run_sweep(session, plans)
    # The budget survives the process-pool round trip intact.
    assert exc_info.value.budget == budget
    assert "budget of 3" in str(exc_info.value)
