"""Equivalence certification for the federated corpus engine.

The acceptance contract (mirroring ``test_parallel_equivalence.py`` /
``test_service_differential.py``): under deterministic timing, a
federated corpus execution — per-shard Phase 1, merged relation,
cross-shard budget allocation, per-shard oracles and ledgers — is
**byte-identical** (``QueryReport.to_json`` and the canonical merged
``CostModel``) to the equivalent plain single-video execution at the
same global budget:

* a corpus of one member reproduces a plain ``Session`` run over that
  member, report and ledger;
* an archive split into N shards (``VideoCorpus.from_split``), queried
  federated, reproduces the unsplit session queried whole — hypothesis
  draws the split points, K, guarantee and global budget;
* a multi-member corpus reproduces a plain executor run over the
  ``ConcatVideo`` with the same merged Phase-1 entry;
* service submission returns the same bytes as inline execution on
  both lanes (threads and the process pool);
* shard-worker count, scoring backend, and streaming refreshes cannot
  change a byte.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import EverestConfig, QueryService, Session, VideoCorpus
from repro.api.executor import QueryExecutor
from repro.config import Phase1Config
from repro.errors import OracleBudgetExceededError, QueryError
from repro.oracle import counting_udf, merge_cost_models
from repro.video import TrafficVideo
from repro.video.views import ConcatVideo

#: Small-but-real engine configuration so each example stays fast.
CORPUS_CONFIG = EverestConfig(
    phase1=Phase1Config(
        sample_fraction=0.05,
        min_train_samples=96,
        holdout_samples=48,
        cmdn_grid=((3, 12),),
        epochs=15,
    ),
)

ARCHIVE_FRAMES = 700


def ledger_key(cost) -> dict:
    """A ledger's full observable state (units and seconds per key)."""
    return {
        key: (cost.units(key), cost.seconds(key))
        for key in sorted(
            set(cost.breakdown()) | {"oracle_confirm", "oracle_label",
                                     "decode", "cmdn_train"})
    }


@pytest.fixture(scope="module")
def udf():
    return counting_udf("car")


@pytest.fixture(scope="module")
def archive_session(udf):
    """The unsplit reference archive (Phase 1 built once)."""
    video = TrafficVideo("corpus-archive", ARCHIVE_FRAMES, seed=29)
    session = Session(video, udf, config=CORPUS_CONFIG)
    session.phase1()
    return session


@pytest.fixture(scope="module")
def member_videos():
    return [
        TrafficVideo(f"corpus-cam{i}", 320, seed=40 + i) for i in range(3)
    ]


@pytest.fixture(scope="module")
def member_corpus(member_videos, udf):
    corpus = VideoCorpus.open(member_videos, udf, config=CORPUS_CONFIG)
    corpus.prepare()
    return corpus


# ----------------------------------------------------------------------
# (a) Corpus-of-one == plain Session, report and ledger.


def test_corpus_of_one_matches_plain_session(udf):
    video = TrafficVideo("corpus-solo", 420, seed=31)
    plain = Session(video, udf, config=CORPUS_CONFIG)
    plan = (plain.query().topk(4).guarantee(0.9)
            .deterministic_timing().plan())
    reference = QueryExecutor(plain).execute_detailed(plan)

    corpus = VideoCorpus.open([video], udf, config=CORPUS_CONFIG)
    outcome = (corpus.query().topk(4).guarantee(0.9)
               .deterministic_timing().run_detailed())

    assert outcome.report.to_json() == reference.report.to_json()
    reference_merged = merge_cost_models(
        [plain.phase1().cost_model, reference.phase2_cost])
    assert ledger_key(outcome.merged_cost()) == \
        ledger_key(reference_merged)
    # The one shard served every confirmation.
    assert outcome.allocation() == {
        "corpus-solo": outcome.phase2_cost.units("oracle_confirm")}


# ----------------------------------------------------------------------
# (b) Split-vs-whole, hypothesis over split points, K, thres, budget.


@settings(max_examples=10, deadline=None, derandomize=True)
@given(data=st.data())
def test_split_corpus_matches_unsplit_archive(data, archive_session):
    boundaries = sorted(data.draw(st.sets(
        st.integers(1, ARCHIVE_FRAMES - 1), min_size=1, max_size=4,
    ), label="boundaries"))
    k = data.draw(st.integers(2, 6), label="k")
    thres = data.draw(
        st.sampled_from([0.5, 0.8, 0.9, 0.95]), label="thres")
    budget = data.draw(
        st.one_of(st.none(), st.integers(5, 400)), label="budget")

    plan = (archive_session.query().topk(k).guarantee(thres)
            .oracle_budget(budget).deterministic_timing().plan())
    corpus = VideoCorpus.from_split(archive_session, boundaries)
    query = (corpus.query().topk(k).guarantee(thres)
             .oracle_budget(budget).deterministic_timing())

    try:
        reference = QueryExecutor(archive_session).execute_detailed(plan)
    except OracleBudgetExceededError as error:
        # The federated run must fail identically: same type, same
        # budget, before any divergent state.
        with pytest.raises(OracleBudgetExceededError) as excinfo:
            query.run_detailed()
        assert excinfo.value.budget == error.budget
        return

    outcome = query.run_detailed()
    assert outcome.report.to_json() == reference.report.to_json()
    reference_merged = merge_cost_models(
        [archive_session.phase1().cost_model, reference.phase2_cost])
    assert ledger_key(outcome.merged_cost()) == \
        ledger_key(reference_merged)
    # Shard attribution is complete: per-shard confirms sum to the
    # global ledger's confirm units.
    assert sum(outcome.shard_confirms) == \
        outcome.phase2_cost.units("oracle_confirm")
    assert sum(
        cost.units("oracle_confirm") for cost in outcome.shard_costs
    ) == outcome.phase2_cost.units("oracle_confirm")


# ----------------------------------------------------------------------
# Multi-member corpus == plain executor over the concat view.


def test_member_corpus_matches_concat_reference(
        member_corpus, member_videos, udf):
    query = (member_corpus.query().topk(5).guarantee(0.9)
             .deterministic_timing())
    outcome = query.run_detailed()

    state = member_corpus.merged_state()
    concat = ConcatVideo(member_videos, name=member_corpus.name)
    reference_session = Session(concat, udf, config=CORPUS_CONFIG)
    reference_session.adopt_phase1(state.entry, CORPUS_CONFIG)
    reference = QueryExecutor(reference_session).execute_detailed(
        query.plan())

    assert outcome.report.to_json() == reference.report.to_json()
    reference_merged = merge_cost_models(
        [state.entry.cost_model, reference.phase2_cost])
    assert ledger_key(outcome.merged_cost()) == \
        ledger_key(reference_merged)
    # Global ids resolve back into members, in-range and injectively.
    resolved = outcome.answer_members()
    assert len(resolved) == len(set(resolved)) == 5
    lengths = dict(zip(
        member_corpus.member_names,
        (len(v) for v in member_videos)))
    for name, local in resolved:
        assert 0 <= local < lengths[name]


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    k=st.integers(2, 6),
    thres=st.sampled_from([0.5, 0.8, 0.9, 0.95]),
)
def test_member_corpus_matches_concat_reference_swept(
        member_corpus, member_videos, udf, k, thres):
    query = (member_corpus.query().topk(k).guarantee(thres)
             .deterministic_timing())
    outcome = query.run_detailed()

    state = member_corpus.merged_state()
    reference_session = Session(
        ConcatVideo(member_videos, name=member_corpus.name),
        udf, config=CORPUS_CONFIG)
    reference_session.adopt_phase1(state.entry, CORPUS_CONFIG)
    reference = QueryExecutor(reference_session).execute_detailed(
        query.plan())
    assert outcome.report.to_json() == reference.report.to_json()


# ----------------------------------------------------------------------
# Execution knobs cannot change a byte.


def test_shard_workers_and_over_corpus_are_neutral(member_corpus):
    base = (member_corpus.query().topk(4).guarantee(0.9)
            .deterministic_timing())
    serial = base.run_detailed(shard_workers=1)
    threaded = base.run_detailed(shard_workers=3)
    assert serial.report.to_json() == threaded.report.to_json()
    assert ledger_key(serial.merged_cost()) == \
        ledger_key(threaded.merged_cost())

    # Query.over_corpus carries the same parameters across.
    member = member_corpus.members[0].session
    rebound = (member.query().topk(4).guarantee(0.9)
               .deterministic_timing().over_corpus(member_corpus))
    assert rebound.run().to_json() == serial.report.to_json()


def test_pooled_prepare_matches_serial_build(member_videos, udf):
    """Process-pool shard Phase-1 builds are bit-identical to serial.

    The benchmark's speedup contract rests on this: entries are purely
    simulated, so where a shard's CMDN trains cannot leak into the
    merged relation, the report, or the ledgers.
    """
    serial = VideoCorpus.open(member_videos, udf, config=CORPUS_CONFIG)
    serial.prepare(workers=1)
    pooled = VideoCorpus.open(member_videos, udf, config=CORPUS_CONFIG)
    pooled.prepare(workers=2)

    query = lambda corpus: (corpus.query().topk(4).guarantee(0.9)  # noqa: E731
                            .deterministic_timing().run_detailed())
    serial_outcome = query(serial)
    pooled_outcome = query(pooled)
    assert pooled_outcome.report.to_json() == \
        serial_outcome.report.to_json()
    assert ledger_key(pooled_outcome.merged_cost()) == \
        ledger_key(serial_outcome.merged_cost())
    # A second prepare is a no-op: the entries are cached per member.
    assert pooled.prepare(workers=2)[0] is pooled.prepare(workers=1)[0]


def test_corpus_query_explain_names_shards(member_corpus):
    text = (member_corpus.query().topk(4)
            .shard_budget("corpus-cam1", 50).explain())
    assert "shards" in text
    assert "corpus-cam0[0:320]" in text
    assert "corpus-cam1<=50" in text


def test_window_queries_are_rejected(member_corpus):
    member = member_corpus.members[0].session
    with pytest.raises(QueryError):
        member.query().windows(size=10).over_corpus(member_corpus)
    with pytest.raises(QueryError):
        from repro.corpus.federated import FederatedTopK

        plan = (member.query().windows(size=10).topk(3)
                .deterministic_timing().plan())
        FederatedTopK(member_corpus).execute(plan)


# ----------------------------------------------------------------------
# (c) Service submission equals inline execution on both lanes.


@pytest.mark.parametrize("use_processes", [False, True])
def test_service_submitted_corpus_matches_inline(
        member_videos, udf, use_processes):
    inline_corpus = VideoCorpus.open(
        member_videos, udf, config=CORPUS_CONFIG)
    inline = (inline_corpus.query().topk(3).guarantee(0.9)
              .deterministic_timing().run())

    corpus = VideoCorpus.open(member_videos, udf, config=CORPUS_CONFIG)
    try:
        with QueryService(
                workers=2, use_processes=use_processes) as service:
            futures = [
                service.submit(
                    corpus.query().topk(3).guarantee(0.9),
                    tenant=f"tenant-{i}")
                for i in range(2)
            ]
            reports = service.gather(futures, timeout=240)
            outcomes = service.outcomes()
    finally:
        for member in corpus.members:
            member.session.bind_service(None, None)

    for report in reports:
        assert report.to_json() == inline.to_json()
    assert len(outcomes) == 2
    for outcome in outcomes:
        assert outcome.report.to_json() == inline.to_json()


# ----------------------------------------------------------------------
# Streaming corpora: an append refreshes the global subscription.


def test_streaming_member_append_refreshes_global_subscription(udf):
    source = TrafficVideo("corpus-live", 640, seed=53)
    stream = Session.open_stream(
        source, udf, initial_frames=400, config=CORPUS_CONFIG)
    closed = Session(
        TrafficVideo("corpus-fixed", 260, seed=54), udf,
        config=CORPUS_CONFIG)
    corpus = VideoCorpus([stream, closed])

    subscription = (corpus.query().topk(3).guarantee(0.85)
                    .deterministic_timing().subscribe())
    assert len(subscription) == 1
    assert subscription.latest.num_frames == 400 + 260

    result = stream.append(120)
    # The member's append carried the refreshed federated report.
    assert len(subscription) == 2
    assert [r.to_json() for r in result.reports] == \
        [subscription.latest.to_json()]
    assert subscription.latest.num_frames == 520 + 260

    # The refreshed answer is exactly what a fresh federated run over
    # the advanced corpus produces.
    fresh = (corpus.query().topk(3).guarantee(0.85)
             .deterministic_timing().run())
    assert fresh.to_json() == subscription.latest.to_json()

    # And the live member's shard is the advanced prefix: the merged
    # state was fingerprint-invalidated, not served stale.
    assert corpus.total_frames == 520 + 260
    assert subscription.latest_outcome.allocation().keys() == \
        {"corpus-live", "corpus-fixed"}


def test_subscribe_requires_a_streaming_member(member_corpus):
    with pytest.raises(QueryError):
        member_corpus.query().topk(3).subscribe()


def test_streaming_member_corpus_never_ships_to_the_pool(udf):
    """Process-lane submissions of a streaming-member corpus stay on
    the inline backend: the pool memoizes pickled member videos per
    worker, so a shipped stream would answer over a stale watermark
    (and crash confirming appended frames). Mirrors the plain-query
    streaming pin in ``QueryService._run_queries``."""
    source = TrafficVideo("corpus-pool-live", 560, seed=57)
    stream = Session.open_stream(
        source, udf, initial_frames=360, config=CORPUS_CONFIG)
    closed = Session(
        TrafficVideo("corpus-pool-fixed", 240, seed=58), udf,
        config=CORPUS_CONFIG)
    corpus = VideoCorpus([stream, closed])
    query = corpus.query().topk(3).guarantee(0.85).deterministic_timing()

    try:
        with QueryService(workers=2, use_processes=True) as service:
            # The lane guard itself: no pool backend for this corpus.
            assert service._corpus_backend(corpus) is None

            first = service.submit(query).result(240)
            stream.append(150)
            second = service.submit(query).result(240)
    finally:
        closed.bind_service(None, None)

    assert first.num_frames == 360 + 240
    # The post-append submission answers over the live watermark —
    # byte-identical to a fresh inline federated run.
    assert second.num_frames == 510 + 240
    assert second.to_json() == query.run().to_json()
