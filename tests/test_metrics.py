"""Tests for the quality metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    evaluate_answer,
    kth_highest,
    precision_at_k,
    rank_distance,
    score_error,
)


@pytest.fixture
def scores():
    #              0    1    2    3    4    5    6
    return np.array([5.0, 3.0, 9.0, 1.0, 9.0, 7.0, 0.0])


class TestKthHighest:
    def test_values(self, scores):
        assert kth_highest(scores, 1) == 9.0
        assert kth_highest(scores, 2) == 9.0
        assert kth_highest(scores, 3) == 7.0
        assert kth_highest(scores, 7) == 0.0

    def test_out_of_range(self, scores):
        with pytest.raises(ConfigurationError):
            kth_highest(scores, 0)
        with pytest.raises(ConfigurationError):
            kth_highest(scores, 8)


class TestPrecision:
    def test_exact_answer(self, scores):
        assert precision_at_k([2, 4, 5], scores, 3) == 1.0

    def test_tie_aware(self, scores):
        """Either frame with score 9 is a valid Top-2 member."""
        assert precision_at_k([2, 4], scores, 2) == 1.0
        assert precision_at_k([4, 2], scores, 2) == 1.0

    def test_partial(self, scores):
        assert precision_at_k([2, 3], scores, 2) == 0.5

    def test_empty(self, scores):
        assert precision_at_k([], scores, 2) == 0.0


class TestRankDistance:
    def test_perfect_answer_zero(self, scores):
        assert rank_distance([2, 4, 5], scores, 3) == 0.0

    def test_tied_order_is_free(self, scores):
        assert rank_distance([4, 2], scores, 2) == 0.0

    def test_worse_answer_larger(self, scores):
        good = rank_distance([2, 4, 5], scores, 3)
        bad = rank_distance([3, 6, 1], scores, 3)
        assert bad > good

    def test_bounded(self, scores):
        value = rank_distance([6, 3, 1], scores, 3)
        assert 0.0 <= value <= 1.0


class TestScoreError:
    def test_zero_for_exact(self, scores):
        assert score_error([9.0, 9.0, 7.0], scores, 3) == 0.0

    def test_positive_for_wrong(self, scores):
        assert score_error([9.0, 9.0, 0.0], scores, 3) == pytest.approx(
            7.0 / 3.0)

    def test_order_insensitive(self, scores):
        a = score_error([7.0, 9.0, 9.0], scores, 3)
        b = score_error([9.0, 9.0, 7.0], scores, 3)
        assert a == b


class TestEvaluateAnswer:
    def test_bundles_all_metrics(self, scores):
        metrics = evaluate_answer([2, 4, 5], scores, 3)
        assert metrics.precision == 1.0
        assert metrics.rank_distance == 0.0
        assert metrics.score_error == 0.0
        assert "precision=1.000" in metrics.as_row()

    def test_scrambled_answer_penalized(self, scores):
        metrics = evaluate_answer([6, 3, 1], scores, 3)
        assert metrics.precision == 0.0
        assert metrics.score_error > 0.0
