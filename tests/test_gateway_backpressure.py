"""Backpressure interleavings leave ledgers consistent and retryable.

The PR's property: *any* interleaving of quota-exceeded, max-pending
and closed-service submissions — through the gateway or straight into
``submit()`` — raises the correct error class, lands in the rejection
ledgers exactly once, and leaves the system retryable: a clean
resubmission afterwards completes with report bytes identical to a
direct inline run.

Two hypothesis drivers, one per entry point:

* **Gateway storms** share one module-scoped gateway whose abusive
  tenants are pinned deterministically — ``ratey``'s token bucket is
  pre-drained under a frozen clock (never refills), ``parked``
  permanently holds its single ``max_inflight`` slot — so every storm
  op has a known outcome and the cumulative ledgers can be checked
  against exact ground truth after every example.
* **Scheduler storms** jam a :class:`FairScheduler` behind a gated
  primer job (its ``run_batch`` is a stub — no video work), so the
  ``max_pending`` admission bound trips at an exact, deterministic
  submission index.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import resolve_query_spec
from repro.config import EverestConfig
from repro.errors import (
    AdmissionError,
    QuotaExceededError,
    ServiceClosedError,
)
from repro.gateway import (
    Gateway,
    GatewayConfig,
    QuotaPolicy,
    parse_metrics_text,
)
from repro.service import FairScheduler, JobOutcome

WAIT = 120.0
VIDEO_KWARGS = {"num_frames": 400, "seed": 7}
SPEC = "count[car]/traffic"


class FrozenClock:
    def __call__(self) -> float:
        return 1000.0


@pytest.fixture(scope="module")
def storm():
    """One gateway + its cumulative ground-truth ledger."""
    gateway = Gateway(
        config=GatewayConfig(
            video_kwargs=dict(VIDEO_KWARGS),
            tenant_quotas={
                # Bucket of one token, refilled at 1e-6/s on a frozen
                # clock: drained once below, refused forever after.
                "ratey": QuotaPolicy(rate=1e-6, burst=1),
                "parked": QuotaPolicy(max_inflight=1),
            },
        ),
        clock=FrozenClock(),
        workers=2,
        use_processes=False,
    )
    # Pin the deterministic refusals: drain ratey's only token
    # (admit + release leaves the bucket empty and no slot held) and
    # park a permanent inflight slot on the one-slot tenant.
    gateway.quotas.admit_query("ratey")
    gateway.quotas.release("ratey")
    gateway.quotas.admit_query("parked")

    reference = resolve_query_spec(
        SPEC, config=EverestConfig.fast(), **VIDEO_KWARGS) \
        .query().topk(3).guarantee(0.9) \
        .deterministic_timing().run().to_json()

    ground_truth = {
        ("ratey", "rate"): 0,
        ("parked", "max_inflight"): 0,
        "ok": 0,
    }
    with gateway:
        yield gateway, reference, ground_truth


def _poll_done(gateway, result_id, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = gateway.handle("GET", f"/result/{result_id}")
        assert status == 200
        if body["status"] != "pending":
            return body
        time.sleep(0.02)
    raise AssertionError(f"result {result_id} never finished")


@given(ops=st.lists(
    st.sampled_from(["rate", "inflight", "ok"]),
    min_size=1, max_size=8))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_gateway_storm_interleavings(storm, ops):
    gateway, reference, truth = storm
    accepted = []
    for op in ops:
        if op == "rate":
            status, body = gateway.handle("POST", "/query", {
                "tenant": "ratey", "spec": SPEC, "k": 3})
            assert status == 429
            assert body["error"] == "QuotaExceededError"
            assert body["reason"] == "rate"
            assert body["retry_after"] > 0
            truth[("ratey", "rate")] += 1
        elif op == "inflight":
            status, body = gateway.handle("POST", "/query", {
                "tenant": "parked", "spec": SPEC, "k": 3})
            assert status == 429
            assert body["error"] == "QuotaExceededError"
            assert body["reason"] == "max_inflight"
            truth[("parked", "max_inflight")] += 1
        else:
            status, body = gateway.handle("POST", "/query", {
                "tenant": "clean", "spec": SPEC, "k": 3})
            assert status == 202
            accepted.append(body["id"])
            truth["ok"] += 1

    # Retryable: every accepted query completes, byte-identical to the
    # direct inline run — the storm never corrupted shared state.
    for result_id in accepted:
        body = _poll_done(gateway, result_id)
        assert body["status"] == "done"
        assert body["report_json"] == reference

    # Ledgers carry the exact interleaving, in both places.
    rejections = gateway.service.stats().rejections
    samples = parse_metrics_text(gateway.metrics.render())
    for (tenant, reason), count in (
            (key, truth[key]) for key in truth if key != "ok"):
        if count == 0:
            continue
        assert rejections[tenant][reason] == count
        assert samples[("everest_gateway_queries_rejected_total",
                        (("tenant", tenant),
                         ("reason", reason)))] == count
    clean = (("tenant", "clean"),)
    if truth["ok"]:
        assert samples[("everest_gateway_queries_submitted_total",
                        clean)] == truth["ok"]
        assert samples[("everest_gateway_queries_completed_total",
                        clean)] == truth["ok"]
    # The parked slot is still exactly one: refusals never leaked an
    # inflight acquisition, completions never double-released.
    assert gateway.quotas.inflight("parked") == 1
    assert gateway.quotas.inflight("clean") == 0


@given(tenants=st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=1, max_size=10),
    max_pending=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_scheduler_storm_interleavings(tenants, max_pending):
    """Direct ``submit()``: max_pending trips exactly, then drains."""
    gate = threading.Event()

    def run(payloads):
        if payloads[0] == "primer":
            gate.wait(WAIT)
        return [JobOutcome(value=payload) for payload in payloads]

    scheduler = FairScheduler(
        run, workers=1, max_pending=max_pending, max_batch=1)
    try:
        primer = scheduler.submit("primer", tenant="primer")
        deadline = time.monotonic() + 10
        while scheduler.pending() and time.monotonic() < deadline:
            time.sleep(0.001)  # until the worker holds the primer
        assert scheduler.pending() == 0

        accepted, expected = [], {}
        for index, tenant in enumerate(tenants):
            if len(accepted) < max_pending:
                accepted.append(
                    (f"job-{index}",
                     scheduler.submit(f"job-{index}", tenant=tenant)))
            else:
                with pytest.raises(AdmissionError) as excinfo:
                    scheduler.submit(f"job-{index}", tenant=tenant)
                assert excinfo.value.reason == "max_pending"
                assert excinfo.value.tenant == tenant
                # The service's own refusal, not a gateway quota.
                assert not isinstance(
                    excinfo.value, QuotaExceededError)
                expected[tenant] = expected.get(tenant, 0) + 1

        rejections = scheduler.rejections()
        assert {
            tenant: reasons.get("max_pending", 0)
            for tenant, reasons in rejections.items()
        } == expected

        # Retryable: releasing the jam completes everything accepted,
        # in full, and new submissions are admitted again.
        gate.set()
        assert primer.result(WAIT) == "primer"
        for payload, future in accepted:
            assert future.result(WAIT) == payload
        assert scheduler.submit("after", tenant="late") \
            .result(WAIT) == "after"
    finally:
        scheduler.close()

    with pytest.raises(ServiceClosedError):
        scheduler.submit("too-late", tenant="late")
    assert scheduler.rejections()["late"]["closed"] == 1


def test_closed_service_through_both_entry_points():
    """503 + correct classes + ledgers once the service is gone."""
    gateway = Gateway(
        config=GatewayConfig(video_kwargs=dict(VIDEO_KWARGS)),
        workers=1, use_processes=False)
    with gateway:
        gateway.service.close()

        status, body = gateway.handle("POST", "/query", {
            "tenant": "late", "spec": SPEC, "k": 3})
        assert status == 503
        assert body["error"] == "ServiceClosedError"

        with pytest.raises(ServiceClosedError):
            gateway.service.submit(
                resolve_query_spec(
                    SPEC, config=EverestConfig.fast(),
                    **VIDEO_KWARGS).query().topk(3),
                tenant="late")

        stats = gateway.service.stats()
        # The direct submit's refusal lands in the scheduler ledger;
        # the gateway's is refused earlier (at session adoption) and
        # lands in the gateway metric below.
        assert stats.rejections["late"]["closed"] >= 1
        samples = parse_metrics_text(gateway.metrics.render())
        assert samples[("everest_gateway_queries_rejected_total",
                        (("tenant", "late"), ("reason", "closed")))] == 1
        # No inflight slot leaked on the refused path.
        assert gateway.quotas.inflight("late") == 0
