"""Smoke tests for the experiment harness at quick scale."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    corpus_federated,
    fig4,
    fig5,
    fig8,
    fig9,
    streaming_latency,
    table7,
    table8,
)
from repro.experiments.runner import (
    counting_videos,
    dashcam_videos,
    format_table,
    record_row,
    run_everest,
)
from repro.oracle import counting_udf


@pytest.fixture(scope="module")
def quick():
    return ExperimentScale.quick()


@pytest.fixture(scope="module")
def one_video(quick):
    return counting_videos(quick)[:1]


class TestScale:
    def test_presets_ordered(self):
        paper = ExperimentScale.paper()
        bench = ExperimentScale.bench()
        quick = ExperimentScale.quick()
        assert paper.min_frames > bench.min_frames > quick.min_frames

    def test_counting_videos_match_registry(self, quick):
        videos = counting_videos(quick)
        assert len(videos) == 5
        assert {v.object_label for v in videos} == {"car", "person", "boat"}

    def test_dashcam_videos(self, quick):
        videos = dashcam_videos(quick)
        assert len(videos) == 2
        assert all(hasattr(v, "distances") for v in videos)


class TestHarness:
    def test_run_everest_record(self, quick, one_video):
        record = run_everest(
            one_video[0], counting_udf("car"), k=5, thres=0.9,
            config=__import__(
                "repro.experiments.runner", fromlist=["config_for"]
            ).config_for(quick))
        assert record.method == "everest"
        assert record.extras["confidence"] >= 0.9
        assert 0.0 <= record.metrics.precision <= 1.0

    def test_format_table_aligns(self):
        table = format_table(("a", "bb"), [["x", "y"], ["longer", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[2:])) <= 2


class TestExperimentsSmoke:
    def test_table7_renders(self, quick):
        output = table7.main(quick)
        assert "archie" in output

    def test_fig4_subset(self, quick, one_video):
        records = fig4.run(
            quick, k=5,
            methods=["everest", "scan-and-test", "tinyyolo-only"],
            videos=one_video)
        output = fig4.render(records)
        assert "everest" in output
        methods = {r.method for r in records}
        assert methods == {"everest", "scan-and-test", "tinyyolo-only"}

    def test_table8_breakdown_sums(self, quick, one_video):
        records = table8.run(quick, k=5, videos=one_video)
        report = records[0].report
        fractions = report.breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert "Table 8" in table8.render(records)

    def test_fig5_sweep(self, quick, one_video):
        records = fig5.run(quick, ks=(3, 6), videos=one_video)
        assert [r.k for r in records] == [3, 6]
        assert all(r.extras["confidence"] >= 0.9 for r in records)

    def test_fig8_densities(self, quick):
        records = fig8.run(quick, densities=(50, 150), k=5)
        assert len(records) == 2
        assert records[0].extras["density"] == 50.0

    def test_fig9_scenarios(self, quick):
        scenarios = (fig9.Scenario("top5", 5, 0.9),)
        records = fig9.run(quick, scenarios=scenarios)
        assert len(records) == 2  # two dashcam videos
        assert all(r.extras["scenario"] == "top5" for r in records)

    def test_streaming_latency(self, quick, one_video):
        measurements = streaming_latency.run(
            quick, num_appends=2, k=3, videos=one_video)
        assert len(measurements) == 2
        # The live answer matched the batch re-run at every append...
        assert all(m.identical for m in measurements)
        # ...and cost strictly fewer fresh oracle calls than the batch
        # re-run paid in total.
        assert all(
            m.live_fresh_calls < m.batch_calls for m in measurements)
        output = streaming_latency.render(measurements)
        assert "live-fresh-calls" in output and "totals:" in output

    def test_corpus_federated(self, quick):
        videos = [
            v for v in counting_videos(quick)[:2]
        ]
        measurement = corpus_federated.run(
            quick, k=3, thres=0.8, videos=videos)
        assert len(measurement.members) == 2
        assert measurement.total_frames == sum(len(v) for v in videos)
        # Confirms attribute completely and the answer is K frames.
        assert sum(s.answers for s in measurement.members) == 3
        assert all(s.confirms >= 0 for s in measurement.members)
        assert measurement.confidence >= 0.8
        output = corpus_federated.render(measurement)
        assert "Federated top-3" in output and "confirms" in output
