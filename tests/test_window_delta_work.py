"""O(delta) certification for sliding-window maintenance.

``test_window_equivalence.py`` certifies *what* a windowed answer is
(batch bytes); this module certifies what it *costs*: per-event fresh
oracle work tracks the delta, never the window length or the prefix.
Pinned here:

* every frame is fresh-confirmed at most once over a stream's whole
  life (``CachingOracle.fresh_scores`` — memoization means no event
  re-pays a confirmation, i.e. full-prefix re-certification is gone);
* fresh confirmations only ever target frames inside the open window;
* pure expiry ticks run **zero** fresh proxy inference — retraction is
  cache eviction, not recompute;
* the subscription's recompiled plan is window-restricted (the
  regression pin for the old full-prefix refresh);
* :class:`~repro.windowed.maintenance.WindowedBlockCache` eviction and
  top-healing, unit-tested against a fake proxy (the 480-frame suite
  video never spans two 512-frame inference blocks, so cross-block
  eviction is exercised directly here and at scale by
  ``benchmarks/bench_window_slide.py``);
* hand-built window-less plans are refused by the windowed executor.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import EverestConfig, Session
from repro.config import Phase1Config
from repro.errors import QueryError
from repro.models.mdn import GaussianMixture
from repro.oracle import counting_udf
from repro.streaming.phase1_incremental import (
    INFER_BLOCK,
    StreamingStats,
)
from repro.video import TrafficVideo
from repro.windowed import WindowedBlockCache

NUM_FRAMES = 480
BOOTSTRAP = 240
FPS = 30.0
WINDOW_FRAMES = 200

STREAM_CONFIG = EverestConfig(
    phase1=Phase1Config(
        sample_fraction=0.05,
        min_train_samples=96,
        holdout_samples=48,
        cmdn_grid=((3, 12),),
        epochs=15,
    ),
)


def open_window_stream(window_frames: int = WINDOW_FRAMES, **kwargs):
    return Session.open_stream(
        TrafficVideo("window-delta", NUM_FRAMES, seed=17),
        counting_udf("car"), initial_frames=BOOTSTRAP,
        window_seconds=window_frames / FPS, config=STREAM_CONFIG,
        **kwargs)


def build_query(session):
    return session.query().topk(3).guarantee(0.85).deterministic_timing()


def test_each_frame_is_confirmed_at_most_once_across_events():
    stream = open_window_stream()
    events = [("append", 60), ("tick", 40), ("append", 120),
              ("tick", 80), ("append", 60)]
    fresh_by_event = []
    # Drive a fresh executor per event (sharing the session's score
    # cache, exactly as subscription refreshes do) so each event's
    # CachingOracle is inspectable.
    for kind, size in [("bootstrap", 0)] + events:
        if kind == "append":
            stream.append(size)
        elif kind == "tick":
            stream.tick(size)
        executor = stream._executor()
        executor.execute_fresh(build_query(stream).plan())
        oracle = executor.last_confirm_oracle
        fresh = dict(oracle.fresh_scores) if oracle is not None else {}
        # Fresh work only ever touches frames inside the open window.
        assert set(fresh) <= set(
            range(stream.window_lo, stream.watermark))
        fresh_by_event.append(fresh)
    # Memoization makes the physical oracle spend delta-shaped: no
    # frame is ever fresh-confirmed twice, across *all* events. (The
    # old full-prefix re-certify would re-pay the standing top-k here.)
    total = sum(len(fresh) for fresh in fresh_by_event)
    distinct = set().union(*fresh_by_event)
    assert total == len(distinct)
    assert len(distinct) <= stream.watermark


def test_pure_ticks_run_zero_fresh_inference():
    stream = open_window_stream()
    live = build_query(stream).subscribe()
    stream.append(100)
    for frames in (30, 60, 90):
        result = stream.tick(frames)
        # Retraction is eviction: the proxy never re-infers a frame
        # because the window slid past other frames.
        assert result.fresh_inferred_frames == 0
    assert live.latest.num_tuples <= stream.video.window_size


def test_subscription_plan_is_window_restricted():
    stream = open_window_stream()
    live = build_query(stream).subscribe()
    stream.append(120)
    stream.tick(60)
    plan = live.query.plan()
    # The recompiled plan's range rides the window edge — the
    # regression pin that subscriptions stopped re-certifying the
    # full prefix.
    assert plan.frame_ranges == ((stream.window_lo, stream.watermark),)
    assert plan.window_seconds == stream.window_seconds
    assert plan.num_tuples == stream.watermark - stream.window_lo
    assert live.latest.num_tuples <= stream.video.window_size
    # Fresh confirmations per event were recorded alongside reports.
    assert len(live.fresh_confirms) == len(live.reports)


def test_windowed_executor_refuses_window_less_plans():
    stream = open_window_stream()
    plan = build_query(stream).plan()
    bare = dataclasses.replace(
        plan, frame_ranges=None, window_seconds=None)
    with pytest.raises(QueryError):
        stream._executor().execute_detailed(bare)


# ----------------------------------------------------------------------
# WindowedBlockCache unit tests (fake proxy: cross-block eviction)
# ----------------------------------------------------------------------
class _FakeVideo:
    def batch_pixels(self, ids):
        return np.asarray(ids, dtype=np.int64)


class _FakeProxy:
    """Mixtures whose top is the largest frame id in the batch."""

    def __init__(self):
        self.inferred = []

    def predict_mixtures(self, ids) -> GaussianMixture:
        self.inferred.append(np.asarray(ids).copy())
        column = np.asarray(ids, dtype=np.float64).reshape(-1, 1)
        return GaussianMixture(
            pi=np.ones_like(column),
            mu=column,
            sigma=np.ones_like(column),
        )


def test_block_cache_evicts_expired_blocks_but_keeps_tops():
    cache = WindowedBlockCache()
    proxy, video = _FakeProxy(), _FakeVideo()
    retained = np.arange(2 * INFER_BLOCK + 176, dtype=np.int64)
    stats = StreamingStats()

    mixtures, top = cache.window_state(
        proxy, video, retained, 0, truncate_sigmas=2.0, stats=stats)
    assert cache.cached_blocks == [0, 1, 2]
    assert len(proxy.inferred) == 3
    assert mixtures.mu.shape[0] == retained.size
    # The exact grid_for term: max(mu + truncate_sigmas * sigma).
    assert top == float(retained[-1]) + 2.0
    assert stats.fresh_inferred_frames == retained.size

    # Slide the cut past block 0: its mixtures are retracted, its top
    # survives, and nothing is re-inferred.
    cut = INFER_BLOCK + 88
    mixtures, top = cache.window_state(
        proxy, video, retained, cut, truncate_sigmas=2.0, stats=stats)
    assert cache.cached_blocks == [1, 2]
    assert len(proxy.inferred) == 3
    assert mixtures.mu.shape[0] == retained.size - cut
    assert float(mixtures.mu[0, 0]) == float(retained[cut])
    assert top == float(retained[-1]) + 2.0
    assert stats.fresh_inferred_frames == retained.size


def test_block_cache_heals_changed_expired_blocks_with_one_inference():
    cache = WindowedBlockCache()
    proxy, video = _FakeProxy(), _FakeVideo()
    retained = np.arange(2 * INFER_BLOCK, dtype=np.int64)
    cut = INFER_BLOCK
    cache.window_state(
        proxy, video, retained, cut, truncate_sigmas=0.0)
    assert cache.cached_blocks == [1]
    assert len(proxy.inferred) == 2  # the expired block paid for its top

    # An expired block's content changes (a straddling retain decision
    # flipped): exactly one O(block) re-inference heals the top, and
    # the mixture stays evicted.
    changed = retained.copy()
    changed[10] = 10**6
    _, top = cache.window_state(
        proxy, video, changed, cut, truncate_sigmas=0.0)
    assert len(proxy.inferred) == 3
    assert np.array_equal(proxy.inferred[-1], changed[:INFER_BLOCK])
    assert cache.cached_blocks == [1]
    assert top == 10.0**6

    # Same content again: fully cached, no inference at all.
    _, top = cache.window_state(
        proxy, video, changed, cut, truncate_sigmas=0.0)
    assert len(proxy.inferred) == 3
    assert top == 10.0**6


def test_block_cache_drops_stale_trailing_blocks():
    cache = WindowedBlockCache()
    proxy, video = _FakeProxy(), _FakeVideo()
    long = np.arange(3 * INFER_BLOCK, dtype=np.int64)
    cache.window_state(proxy, video, long, 0, truncate_sigmas=0.0)
    assert cache.cached_blocks == [0, 1, 2]
    # The retained array shrank (a retrain rebuilt the detector):
    # trailing blocks beyond the new extent drop mixtures *and* tops.
    short = long[:INFER_BLOCK]
    _, top = cache.window_state(
        proxy, video, short, 0, truncate_sigmas=0.0)
    assert cache.cached_blocks == [0]
    assert top == float(short[-1])
