"""Regression tests for scheduler/ledger correctness fixes.

Three bugs, each pinned by a test that fails on the pre-fix code:

* ``FairScheduler.drain()`` could return before the finished batch's
  futures were resolved (the worker decremented ``_running`` first,
  resolved after) — a drained caller could observe ``done() == False``
  and a ``add_done_callback`` hook could miss its window.
* A failed batch fanned one exception *instance* to every future;
  concurrent ``result()`` re-raises then mutated the shared
  ``__traceback__`` across callers.
* ``merge_cost_models()`` always produced a ``wall_clock=True`` model,
  so merging all-deterministic ledgers silently lost the determinism
  flag downstream folds rely on.

Plus the starvation property: under sustained, wildly unequal charges
every tenant's queue drains in bounded turns (and in FIFO order within
each tenant).
"""

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionError
from repro.oracle.cost import CostModel, merge_cost_models
from repro.service.scheduler import (
    FairScheduler,
    FifoPolicy,
    JobOutcome,
    QueryFuture,
    _clone_error,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ok_batch(payloads):
    return [JobOutcome(value=p, charge=0.0) for p in payloads]


class GatedRunner:
    """run_batch that parks the worker on a primer payload.

    Lets a test enqueue jobs *behind* a busy single worker so batch
    formation and dispatch order are deterministic, then release the
    gate and observe what the scheduler did.
    """

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.batches = []
        self._lock = threading.Lock()

    def __call__(self, payloads):
        if payloads[0] == "primer":
            self.entered.set()
            assert self.release.wait(10)
            return [JobOutcome(value="primer")]
        with self._lock:
            self.batches.append(list(payloads))
        return [
            JobOutcome(value=p, charge=float(p[1]))
            for p in payloads
        ]


class TestDrainResolvesFutures:
    def test_drain_implies_done_even_with_slow_resolve(self, monkeypatch):
        """drain() must not return while futures are still resolving.

        A delay injected into ``_resolve`` widens the old race window
        (decrement ``_running`` before resolving) from microseconds to
        50ms — pre-fix, drain() returns with ``done() == False``.
        """
        original = QueryFuture._resolve

        def slow_resolve(self, value):
            time.sleep(0.05)
            original(self, value)

        monkeypatch.setattr(QueryFuture, "_resolve", slow_resolve)
        scheduler = FairScheduler(ok_batch, workers=2)
        try:
            futures = [scheduler.submit(i) for i in range(6)]
            assert scheduler.drain(timeout=10)
            for future in futures:
                assert future.done()
                assert future.result(0) == future.seq
        finally:
            scheduler.close()

    def test_drain_implies_callbacks_fired(self, monkeypatch):
        """The gateway's completion hook must not miss its window."""
        original = QueryFuture._resolve

        def slow_resolve(self, value):
            time.sleep(0.05)
            original(self, value)

        monkeypatch.setattr(QueryFuture, "_resolve", slow_resolve)
        scheduler = FairScheduler(ok_batch, workers=1)
        fired = []
        try:
            future = scheduler.submit("job")
            future.add_done_callback(lambda f: fired.append(f.seq))
            assert scheduler.drain(timeout=10)
            assert fired == [future.seq]
        finally:
            scheduler.close()

    def test_drain_implies_done_on_failure(self, monkeypatch):
        original = QueryFuture._fail

        def slow_fail(self, error):
            time.sleep(0.05)
            original(self, error)

        monkeypatch.setattr(QueryFuture, "_fail", slow_fail)

        def boom(payloads):
            raise RuntimeError("nope")

        scheduler = FairScheduler(boom, workers=1)
        try:
            future = scheduler.submit("job")
            assert scheduler.drain(timeout=10)
            assert future.done()
            assert isinstance(future.exception(0), RuntimeError)
        finally:
            scheduler.close()


class TestBatchErrorIsolation:
    def _failed_batch_futures(self, error, count=3):
        """Submit ``count`` same-batch_key jobs that fail as one batch."""
        runner = GatedRunner()

        def run(payloads):
            if payloads[0] == "primer":
                return runner(payloads)
            raise error

        scheduler = FairScheduler(run, workers=1, max_batch=count)
        try:
            primer = scheduler.submit("primer")
            assert runner.entered.wait(10)
            futures = [
                scheduler.submit(("job", 0.0), batch_key="shared")
                for _ in range(count)
            ]
            runner.release.set()
            assert scheduler.drain(timeout=10)
            assert primer.result(0) == "primer"
            return [f.exception(0) for f in futures]
        finally:
            scheduler.close()

    def test_each_future_gets_its_own_instance(self):
        errors = self._failed_batch_futures(ValueError("bad batch", 42))
        assert all(e is not None for e in errors)
        # Distinct instances, identical type and args.
        assert len({id(e) for e in errors}) == len(errors)
        for e in errors:
            assert type(e) is ValueError
            assert e.args == ("bad batch", 42)

    def test_attribute_state_is_preserved(self):
        original = AdmissionError(
            "too much", reason="max_pending", tenant="alice")
        errors = self._failed_batch_futures(original)
        for e in errors:
            assert type(e) is AdmissionError
            assert e.reason == "max_pending"
            assert e.tenant == "alice"

    def test_concurrent_reraise_does_not_cross_contaminate(self):
        errors = self._failed_batch_futures(RuntimeError("shared?"), count=4)

        tracebacks = []

        def reraise(error):
            try:
                raise error
            except RuntimeError as caught:
                tracebacks.append(caught.__traceback__)

        threads = [
            threading.Thread(target=reraise, args=(e,)) for e in errors]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each future re-raised independently: no two futures share an
        # exception object, so no raise mutated a sibling's traceback.
        assert len({id(e) for e in errors}) == len(errors)
        assert len(tracebacks) == len(errors)

    def test_clone_error_falls_back_on_uncopyable(self):
        class Stubborn(Exception):
            def __reduce_ex__(self, protocol):
                raise TypeError("not copyable")

        original = Stubborn("x")
        assert _clone_error(original) is original


class TestMergeWallClockPropagation:
    def _model(self, *, wall_clock):
        model = CostModel({"oracle_confirm": 0.1}, wall_clock=wall_clock)
        model.charge("oracle_confirm", 3)
        return model

    def test_all_deterministic_inputs_merge_deterministic(self):
        merged = merge_cost_models([
            self._model(wall_clock=False),
            self._model(wall_clock=False),
        ])
        assert merged.wall_clock is False
        assert merged.units("oracle_confirm") == 6

    def test_any_wall_clock_input_taints_the_merge(self):
        merged = merge_cost_models([
            self._model(wall_clock=False),
            self._model(wall_clock=True),
        ])
        assert merged.wall_clock is True

    def test_empty_merge_stays_wall_clock(self):
        assert merge_cost_models([]).wall_clock is True

    def test_explicit_override_wins(self):
        merged = merge_cost_models(
            [self._model(wall_clock=True)], wall_clock=False)
        assert merged.wall_clock is False

    def test_deterministic_merge_roundtrip(self):
        """A deterministic merge re-merges bit-identically."""
        parts = [self._model(wall_clock=False) for _ in range(4)]
        once = merge_cost_models(parts)
        twice = merge_cost_models(parts)
        assert once.wall_clock is False and twice.wall_clock is False
        assert once.breakdown() == twice.breakdown()


class TestNoStarvation:
    @SETTINGS
    @given(
        workload=st.dictionaries(
            keys=st.sampled_from(["alice", "bob", "carol", "dave"]),
            values=st.lists(
                st.floats(0.0, 100.0), min_size=1, max_size=6),
            min_size=2,
            max_size=4,
        ),
    )
    def test_unequal_charges_never_starve_a_tenant(self, workload):
        """Every tenant's queue drains under sustained unequal charges.

        Jobs are enqueued behind a parked worker so the scheduler sees
        all tenants at once; each job's payload carries the fairness
        charge it will report. However lopsided the charges, drain
        completes bounded by total work and each tenant's own jobs run
        in FIFO order.
        """
        runner = GatedRunner()
        scheduler = FairScheduler(runner, workers=1, max_batch=1)
        try:
            primer = scheduler.submit("primer", tenant="primer")
            assert runner.entered.wait(10)
            futures = {
                tenant: [
                    scheduler.submit((f"{tenant}:{i}", charge),
                                     tenant=tenant)
                    for i, charge in enumerate(charges)
                ]
                for tenant, charges in workload.items()
            }
            runner.release.set()
            total = sum(len(v) for v in futures.values())
            assert scheduler.drain(timeout=30), \
                f"drain stalled with {total} jobs queued"
            assert primer.done()
            executed = [p[0] for batch in runner.batches for p in batch]
            assert len(executed) == total
            for tenant, tenant_futures in futures.items():
                for future in tenant_futures:
                    assert future.done()
                mine = [
                    name for name in executed
                    if name.startswith(f"{tenant}:")
                ]
                assert mine == sorted(
                    mine, key=lambda n: int(n.split(":")[1])), \
                    f"{tenant} ran out of FIFO order: {mine}"
        finally:
            scheduler.close()

    def test_least_charged_tenant_runs_first(self):
        runner = GatedRunner()
        scheduler = FairScheduler(runner, workers=1, max_batch=1)
        try:
            scheduler.submit("primer", tenant="primer")
            assert runner.entered.wait(10)
            # heavy charges 50 per job, light charges nothing: after
            # heavy's first completion its deficit dwarfs light's, so
            # light's whole queue must drain before heavy's second job.
            heavy = [
                scheduler.submit(("heavy:%d" % i, 50.0), tenant="heavy")
                for i in range(2)
            ]
            light = [
                scheduler.submit(("light:%d" % i, 0.0), tenant="light")
                for i in range(3)
            ]
            runner.release.set()
            assert scheduler.drain(timeout=10)
            executed = [p[0] for batch in runner.batches for p in batch]
            assert executed.index("heavy:1") > executed.index("light:2")
            for future in heavy + light:
                assert future.done()
        finally:
            scheduler.close()


class TestFifoPolicyContract:
    def test_adjacent_same_key_jobs_batch(self):
        runner = GatedRunner()
        scheduler = FairScheduler(runner, workers=1, max_batch=8)
        assert isinstance(scheduler.policy, FifoPolicy)
        try:
            scheduler.submit("primer", tenant="primer")
            assert runner.entered.wait(10)
            for i in range(3):
                scheduler.submit((f"a:{i}", 0.0), batch_key="k1")
            scheduler.submit(("b:0", 0.0), batch_key="k2")
            runner.release.set()
            assert scheduler.drain(timeout=10)
            sizes = sorted(len(b) for b in runner.batches)
            assert sizes == [1, 3]
        finally:
            scheduler.close()
