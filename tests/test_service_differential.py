"""Differential certification: service execution == plain sessions.

Random mixed workloads (seeded hypothesis, extending the
``test_parallel_equivalence`` patterns) are executed twice:

* **Reference** — plain serial :class:`Session` objects, one per
  video, ``execute_detailed`` per plan;
* **Service** — one :class:`QueryService`, every plan submitted
  concurrently under rotating tenants.

The two runs must agree *exactly*: byte-identical
``QueryReport.to_json()`` strings per query, and identical merged
cost ledgers (Phase 1 once per distinct ``phase1_key`` + every
per-query Phase 2 ledger, compared unit-for-unit and
second-for-second). Phase 1 charges are purely simulated and Phase 2
runs under deterministic timing, so "identical" means ``==`` on
floats, not approx.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import EverestConfig, QueryService, Session
from repro.oracle import counting_udf
from repro.oracle.cost import merge_cost_models
from repro.video import TrafficVideo

#: The shared workload universe: two videos, frame and window queries.
VIDEOS = (("diff-a", 21), ("diff-b", 22))


def _sessions(config):
    return {
        name: Session(
            TrafficVideo(name, 600, seed=seed),
            counting_udf("car"),
            config=config,
        )
        for name, seed in VIDEOS
    }


def _random_workload(rng_seed: int):
    """A deterministic pseudo-random mixed workload description."""
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    workload = []
    for _ in range(int(rng.integers(4, 9))):
        name = VIDEOS[int(rng.integers(0, len(VIDEOS)))][0]
        k = int(rng.integers(2, 6))
        thres = float(rng.choice([0.8, 0.9, 0.95]))
        window = int(rng.choice([0, 0, 20]))
        workload.append((name, k, thres, window))
    return workload


def _plan_for(session, k, thres, window):
    query = session.query().topk(k).guarantee(thres).deterministic_timing()
    if window:
        query = query.windows(size=window)
    return query.plan()


def _ledger_map(cost):
    return {
        key: (cost.units(key), cost.seconds(key))
        for key in cost.breakdown()
    }


def _reference_merged(sessions, phase2_costs):
    """Merge a serial reference in the service's canonical order.

    Float addition is not associative, so "identical merged ledgers"
    requires both sides to fold contributions identically: Phase-1
    ledgers sorted by artifact digest, per-query Phase-2 ledgers in
    submission order (see ``QueryService.merged_cost``).
    """
    from repro.service.artifacts import artifact_digest, group_key

    phase1 = sorted(
        (
            (artifact_digest(
                (group_key(session.video, session.scoring), key)),
             entry.cost_model)
            for session in sessions
            for key, entry in session._phase1_cache.items()
        ),
        key=lambda pair: pair[0],
    )
    return merge_cost_models(
        [*[ledger for _, ledger in phase1], *phase2_costs])


@settings(max_examples=5, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10**6))
def test_random_workloads_service_equals_sessions(seed):
    config = EverestConfig.fast()
    workload = _random_workload(seed)

    # Reference: plain sessions, serial execution, per-query ledgers.
    from repro.api.executor import QueryExecutor
    from repro.api.session import phase1_key

    reference_sessions = _sessions(config)
    reference_reports = []
    reference_phase2 = []
    for name, k, thres, window in workload:
        session = reference_sessions[name]
        detail = QueryExecutor(session).execute_detailed(
            _plan_for(session, k, thres, window))
        reference_reports.append(detail.report.to_json())
        reference_phase2.append(detail.phase2_cost)
    reference_merged = _reference_merged(
        reference_sessions.values(), reference_phase2)

    # Service: same workload, submitted concurrently.
    with QueryService(workers=4, use_processes=False) as service:
        service_sessions = {
            name: service.open_session(
                TrafficVideo(name, 600, seed=seed_),
                counting_udf("car"), config=config)
            for name, seed_ in VIDEOS
        }
        futures = [
            service.submit(
                _plan_for(service_sessions[name], k, thres, window),
                session=service_sessions[name],
                tenant=f"tenant-{i % 3}",
            )
            for i, (name, k, thres, window) in enumerate(workload)
        ]
        reports = service.gather(futures, timeout=180)
        service_merged = service.merged_cost()

    assert [r.to_json() for r in reports] == reference_reports
    assert _ledger_map(service_merged) == _ledger_map(reference_merged)


@pytest.mark.parametrize("use_processes", [False, True])
def test_mixed_workload_with_config_overrides(use_processes):
    """Plans overriding phase2 and phase1 knobs stay equivalent."""
    base_cfg = EverestConfig.fast()
    alt_cfg = dataclasses.replace(base_cfg, seed=base_cfg.seed + 1)
    video = TrafficVideo("diff-c", 600, seed=23)

    session = Session(video, counting_udf("car"), config=base_cfg)
    base = session.query().guarantee(0.9).deterministic_timing()
    plans = [
        base.topk(3).plan(),
        base.topk(4).with_config(alt_cfg).plan(),
        base.topk(3).windows(size=20).plan(),
        dataclasses.replace(
            base.topk(5).plan(),
            config=dataclasses.replace(
                base_cfg,
                phase2=dataclasses.replace(
                    base_cfg.phase2, batch_size=4)),
        ),
    ]
    from repro.api.executor import QueryExecutor

    executor = QueryExecutor(session)
    reference = [executor.execute_detailed(plan) for plan in plans]
    assert session.phase1_runs == 2  # base_cfg and alt_cfg

    with QueryService(workers=2, use_processes=use_processes) as service:
        svc_session = service.open_session(
            TrafficVideo("diff-c", 600, seed=23),
            counting_udf("car"), config=base_cfg)
        futures = [
            service.submit(plan, session=svc_session) for plan in plans]
        reports = service.gather(futures, timeout=180)
        stats = service.stats()
        service_merged = service.merged_cost()

    assert [r.to_json() for r in reports] == \
        [d.report.to_json() for d in reference]
    # Two distinct phase1 keys -> two builds, shared across four plans.
    assert stats["builds"] == 2

    reference_merged = _reference_merged(
        [session], [d.phase2_cost for d in reference])
    assert _ledger_map(service_merged) == _ledger_map(reference_merged)


def test_service_score_sharing_never_changes_ledgers():
    """Cache hits shrink physical work, never the accounted charges."""
    config = EverestConfig.fast()
    video = TrafficVideo("diff-d", 600, seed=29)
    session = Session(video, counting_udf("car"), config=config)
    base = session.query().guarantee(0.9).deterministic_timing()
    plans = [base.topk(k).plan() for k in (3, 3, 4, 5)]

    from repro.api.executor import QueryExecutor

    reference = [
        QueryExecutor(session).execute_detailed(plan) for plan in plans]

    with QueryService(workers=1, use_processes=False) as service:
        svc_session = service.open_session(
            TrafficVideo("diff-d", 600, seed=29),
            counting_udf("car"), config=config)
        futures = [
            service.submit(plan, session=svc_session) for plan in plans]
        service.gather(futures, timeout=180)
        outcomes = service.outcomes()

    # Identical accounted confirmations per query...
    assert sorted(
        o.phase2_cost.units("oracle_confirm") for o in outcomes
    ) == sorted(
        d.phase2_cost.units("oracle_confirm") for d in reference)
    # ...but the duplicate top-3 query (and overlapping top-4/5) hit
    # the shared cache: total physical confirmations are strictly
    # fewer than accounted ones.
    fresh = sum(o.fresh_confirm_calls for o in outcomes)
    accounted = sum(
        int(o.phase2_cost.units("oracle_confirm")) for o in outcomes)
    assert fresh < accounted
