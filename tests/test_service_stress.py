"""Stress certification for the concurrent query service.

Many submitter threads race many queries over shared videos through
one :class:`~repro.service.QueryService`. The assertions are the
service's whole contract under concurrency:

* no deadlock — every future resolves within a generous timeout;
* reports are **bit-identical** to serial ``Session`` execution,
  regardless of thread interleaving, worker count, or lane;
* exactly one Phase-1 build per distinct ``phase1_key`` — 8-way
  concurrent submission over the same artifact blocks on one
  single-flight build;
* admission control and closed-service errors are clean, and a failed
  query fails only its own future.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    AdmissionError,
    EverestConfig,
    QueryService,
    ServiceClosedError,
    Session,
)
from repro.oracle import counting_udf
from repro.video import TrafficVideo

#: Resolve every future with a hard deadline: a hang is a deadlock.
DEADLINE = 180.0


def _video(name: str, seed: int) -> TrafficVideo:
    return TrafficVideo(name, 600, seed=seed)


@pytest.fixture(scope="module")
def fast_cfg() -> EverestConfig:
    return EverestConfig.fast()


@pytest.fixture(scope="module")
def serial_reference(fast_cfg):
    """Serial reports for the shared workload, keyed by (video, k)."""
    reference = {}
    for name, seed in (("stress-a", 1), ("stress-b", 2)):
        session = Session(
            _video(name, seed), counting_udf("car"), config=fast_cfg)
        base = session.query().guarantee(0.9).deterministic_timing()
        for k in (3, 4, 5):
            reference[(name, k)] = base.topk(k).run().to_json()
    return reference


@pytest.mark.parametrize("use_processes", [False, True])
def test_threads_race_shared_videos_bit_identical(
        fast_cfg, serial_reference, use_processes):
    """N submitter threads x M queries: no deadlock, serial-identical."""
    num_threads = 8
    with QueryService(
            workers=4, use_processes=use_processes,
            max_pending=None) as service:
        sessions = {
            name: service.open_session(
                _video(name, seed), counting_udf("car"), config=fast_cfg)
            for name, seed in (("stress-a", 1), ("stress-b", 2))
        }
        results = {}
        errors = []
        barrier = threading.Barrier(num_threads)

        def submitter(thread_index: int) -> None:
            try:
                barrier.wait(timeout=30)
                futures = []
                for j in range(3):
                    name = "stress-a" if (thread_index + j) % 2 else "stress-b"
                    k = 3 + (thread_index + j) % 3
                    query = sessions[name].query().topk(k).guarantee(0.9)
                    futures.append(
                        ((name, k),
                         service.submit(
                             query, tenant=f"tenant-{thread_index % 3}")))
                for key, future in futures:
                    results[(thread_index, key)] = \
                        (key, future.result(DEADLINE))
            except BaseException as error:  # noqa: BLE001 - recorded
                errors.append(error)

        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=DEADLINE)
            assert not thread.is_alive(), "submitter thread hung"
        assert errors == []
        assert len(results) == num_threads * 3

        for key, report in results.values():
            assert report.to_json() == serial_reference[key]

        stats = service.stats()
        # Two videos, one configuration each: exactly two builds, no
        # matter how many threads raced on them.
        assert stats["builds"] == 2
        assert stats["failed"] == 0
        assert stats["completed"] == num_threads * 3


def test_eight_way_single_flight_one_build_per_key(fast_cfg):
    """8 concurrent submissions on one phase1_key -> one build."""
    with QueryService(workers=8, use_processes=False) as service:
        session = service.open_session(
            _video("stress-sf", 7), counting_udf("car"), config=fast_cfg)
        barrier = threading.Barrier(8)
        futures = [None] * 8
        submit_errors = []

        def submit(i: int) -> None:
            try:
                barrier.wait(timeout=30)
                futures[i] = service.submit(
                    session.query().topk(3 + i % 3).guarantee(0.9))
            except BaseException as error:  # noqa: BLE001
                submit_errors.append(error)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=DEADLINE)
        assert submit_errors == []
        reports = [future.result(DEADLINE) for future in futures]
        assert len(reports) == 8
        stats = service.stats()
        assert stats["builds"] == 1, stats
        # The losers of the build race either waited on the
        # single-flight event or arrived after and hit the store/
        # session cache; nobody rebuilt.
        assert stats["evictions"] == 0


def test_cross_session_same_content_shares_one_build(fast_cfg):
    """Distinct Session objects over identical footage share a build."""
    with QueryService(workers=2, use_processes=False) as service:
        one = service.open_session(
            _video("stress-x", 11), counting_udf("car"), config=fast_cfg)
        two = service.open_session(
            _video("stress-x", 11), counting_udf("car"), config=fast_cfg)
        a = service.submit(one.query().topk(3).guarantee(0.9))
        b = service.submit(two.query().topk(3).guarantee(0.9))
        assert a.result(DEADLINE).to_json() == b.result(DEADLINE).to_json()
        assert service.stats()["builds"] == 1
        # And the score cache is shared: the second query's cleaning
        # work was (at least partly) physically free.
        outcomes = service.outcomes()
        assert len(outcomes) == 2
        fresh = [outcome.fresh_confirm_calls for outcome in outcomes]
        confirmed = [
            int(outcome.phase2_cost.units("oracle_confirm"))
            for outcome in outcomes
        ]
        assert sum(fresh) < sum(confirmed)


def test_admission_control_and_close_errors(fast_cfg):
    session_video = _video("stress-adm", 13)
    service = QueryService(
        workers=1, use_processes=False, max_pending=1, max_batch=1)
    accepted = []
    try:
        session = service.open_session(
            session_video, counting_udf("car"), config=fast_cfg)
        # One worker, a one-slot queue: submitting faster than queries
        # execute must trip admission control, not queue unboundedly.
        # The first query occupies the worker with the Phase-1 build,
        # so the queue fills within a couple of submissions.
        with pytest.raises(AdmissionError):
            for _ in range(50):
                accepted.append(
                    service.submit(session.query().topk(3).guarantee(0.9)))
        # Everything accepted before the refusal still completes.
        for future in accepted:
            assert future.result(DEADLINE).confidence >= 0.9
    finally:
        service.close()
    with pytest.raises(ServiceClosedError):
        service.submit(session.query().topk(3).guarantee(0.9))
    with pytest.raises(ServiceClosedError):
        service.open_session(
            session_video, counting_udf("car"), config=fast_cfg)


def test_one_bad_query_fails_only_its_future(fast_cfg):
    from repro import OracleBudgetExceededError

    with QueryService(workers=2, use_processes=False) as service:
        session = service.open_session(
            _video("stress-err", 17), counting_udf("car"), config=fast_cfg)
        good = service.submit(session.query().topk(3).guarantee(0.9))
        bad = service.submit(
            session.query().topk(3).guarantee(0.9).oracle_budget(1))
        assert isinstance(
            bad.exception(DEADLINE), OracleBudgetExceededError)
        assert good.result(DEADLINE).confidence >= 0.9
        stats = service.stats()
        assert stats["failed"] == 1
        assert stats["completed"] >= 1
