"""Component tests for the service layer's moving parts.

The end-to-end contracts live in ``test_service_stress.py`` and
``test_service_differential.py``; here each mechanism is pinned in
isolation: scheduler fairness/admission/batching, the single-flight
artifact store with LRU eviction and the warm-start tier, the bounded
score cache, and the streaming attachment hooks.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    AdmissionError,
    EverestConfig,
    QueryService,
    ServiceClosedError,
    Session,
)
from repro.errors import ConfigurationError, QueryError, ServiceError
from repro.oracle import counting_udf
from repro.oracle.cache import CachingOracle, ScoreCache
from repro.oracle.cost import CostModel
from repro.service.artifacts import (
    SharedArtifacts,
    artifact_digest,
    group_key,
)
from repro.service.scheduler import FairScheduler, JobOutcome
from repro.video import TrafficVideo

WAIT = 60.0


def _video(name="comp", seed=31, frames=600):
    return TrafficVideo(name, frames, seed=seed)


# ----------------------------------------------------------------------
# ScoreCache: bounded LRU, thread-safe, pickle round-trip.

class TestScoreCache:
    def test_lru_eviction_keeps_recent(self):
        cache = ScoreCache(max_entries=3)
        for frame in range(4):
            cache.put(frame, float(frame))
        assert len(cache) == 3
        assert 0 not in cache and 3 in cache
        assert cache.evictions == 1
        cache.get(1)          # refresh 1
        cache.put(4, 4.0)     # evicts 2, not 1
        assert 1 in cache and 2 not in cache

    def test_lookup_is_consistent_snapshot(self):
        cache = ScoreCache({1: 1.0, 2: 2.0})
        assert cache.lookup([1, 2, 3]) == {1: 1.0, 2: 2.0}

    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            ScoreCache(max_entries=0)

    def test_pickle_round_trip(self):
        import pickle

        cache = ScoreCache({5: 0.5}, max_entries=10)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.as_dict() == {5: 0.5}
        assert clone.max_entries == 10
        clone.put(6, 0.6)  # the lock was rebuilt

    def test_setstate_accepts_pre_promotion_layout(self):
        # Streaming-era checkpoints pickled the old class's raw
        # __dict__; the re-export resolves them to this class.
        old = ScoreCache.__new__(ScoreCache)
        old.__setstate__({"_scores": {3: 0.25}})
        assert old.as_dict() == {3: 0.25}
        assert old.max_entries is None
        old.put(4, 0.5)

    def test_caching_oracle_eviction_safe_and_charges_fully(self):
        video = _video(frames=64)
        cache = ScoreCache(max_entries=2)
        ledger = CostModel(wall_clock=False)
        oracle = CachingOracle(
            counting_udf("car"), ledger, cache=cache,
            cost_key="oracle_confirm")
        scores = oracle.score(video, [0, 1, 2, 3, 0])
        assert scores.shape == (5,)
        assert scores[0] == scores[4]
        # Full accounting despite the tiny cache.
        assert oracle.calls == 5
        assert ledger.units("oracle_confirm") == 5
        assert oracle.fresh_calls == 4  # 0,1,2,3 (0 deduped)
        assert set(oracle.fresh_scores) == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# FairScheduler: admission, fairness, batching, close semantics.

class TestFairScheduler:
    def _scheduler(self, run_batch, **kwargs):
        return FairScheduler(run_batch, **kwargs)

    def test_rejects_bad_parameters(self):
        run = lambda payloads: [JobOutcome() for _ in payloads]  # noqa: E731
        with pytest.raises(ServiceError):
            FairScheduler(run, workers=0)
        with pytest.raises(ServiceError):
            FairScheduler(run, workers=1, max_pending=0)
        with pytest.raises(ServiceError):
            FairScheduler(run, workers=1, max_batch=0)

    def test_least_charged_tenant_runs_first(self):
        gate = threading.Event()
        order = []

        def run(payloads):
            if payloads[0] == "gate":
                gate.wait(WAIT)
                return [JobOutcome(charge=0.0)]
            order.extend(payloads)
            return [
                JobOutcome(charge=10.0 if p.startswith("big") else 1.0)
                for p in payloads
            ]

        scheduler = self._scheduler(run, workers=1, max_batch=1)
        try:
            hold = scheduler.submit("gate", tenant="gate")
            time.sleep(0.05)  # the worker is now blocked on the gate
            futures = [
                scheduler.submit("big-0", tenant="big"),
                scheduler.submit("big-1", tenant="big"),
                scheduler.submit("small-0", tenant="small"),
                scheduler.submit("small-1", tenant="small"),
            ]
            gate.set()
            for future in futures:
                future.result(WAIT)
            hold.result(WAIT)
        finally:
            scheduler.close()
        # big-0 runs first (arrival order at equal charge 0), then the
        # cheapest-charged tenant each time: small (1 < 10), small
        # again (2 < 10), then big-1.
        assert order == ["big-0", "small-0", "small-1", "big-1"]
        charges = scheduler.charges()
        assert charges["big"] == 20.0 and charges["small"] == 2.0

    def test_same_key_jobs_batch_together(self):
        gate = threading.Event()
        batches = []

        def run(payloads):
            if payloads[0] == "gate":
                gate.wait(WAIT)
                return [JobOutcome()]
            batches.append(list(payloads))
            return [JobOutcome() for _ in payloads]

        scheduler = self._scheduler(run, workers=1, max_batch=3)
        try:
            scheduler.submit("gate", tenant="gate")
            time.sleep(0.05)
            futures = [
                scheduler.submit(f"job-{i}", tenant="t", batch_key="k")
                for i in range(4)
            ]
            gate.set()
            for future in futures:
                future.result(WAIT)
        finally:
            scheduler.close()
        assert [len(b) for b in batches] == [3, 1]

    def test_admission_bound_and_closed_errors(self):
        gate = threading.Event()

        def run(payloads):
            gate.wait(WAIT)
            return [JobOutcome() for _ in payloads]

        scheduler = self._scheduler(run, workers=1, max_pending=2)
        first = scheduler.submit("a")
        time.sleep(0.05)
        queued = [scheduler.submit("b"), scheduler.submit("c")]
        with pytest.raises(AdmissionError):
            scheduler.submit("d")
        gate.set()
        for future in (first, *queued):
            future.result(WAIT)
        scheduler.close()
        with pytest.raises(ServiceClosedError):
            scheduler.submit("e")

    def test_close_finishes_queued_jobs(self):
        done = []

        def run(payloads):
            time.sleep(0.01)
            done.extend(payloads)
            return [JobOutcome(value=p) for p in payloads]

        scheduler = self._scheduler(run, workers=2, max_batch=1)
        futures = [scheduler.submit(i) for i in range(6)]
        scheduler.close(wait=True)
        assert sorted(done) == list(range(6))
        assert [f.result(0) for f in futures] == list(range(6))

    def test_run_batch_exception_fails_the_whole_batch(self):
        def run(payloads):
            raise RuntimeError("backend exploded")

        scheduler = self._scheduler(run, workers=1)
        future = scheduler.submit("x")
        assert isinstance(future.exception(WAIT), RuntimeError)
        scheduler.close()
        assert scheduler.failed == 1

    def test_future_timeout(self):
        gate = threading.Event()

        def run(payloads):
            gate.wait(WAIT)
            return [JobOutcome() for _ in payloads]

        scheduler = self._scheduler(run, workers=1)
        future = scheduler.submit("slow")
        with pytest.raises(TimeoutError):
            future.result(0.05)
        with pytest.raises(TimeoutError):
            future.exception(0.05)
        assert not future.done()
        gate.set()
        future.result(WAIT)
        scheduler.close()

    def test_drain_waits_for_idle(self):
        def run(payloads):
            time.sleep(0.05)
            return [JobOutcome() for _ in payloads]

        scheduler = self._scheduler(run, workers=2)
        for i in range(4):
            scheduler.submit(i)
        assert scheduler.drain(WAIT)
        assert scheduler.pending() == 0
        scheduler.close()


# ----------------------------------------------------------------------
# SharedArtifacts: single-flight, LRU, warm tier.

@pytest.fixture(scope="module")
def comp_cfg():
    return EverestConfig.fast()


def _session(cfg, name="comp", seed=31):
    return Session(_video(name, seed), counting_udf("car"), config=cfg)


class TestSharedArtifacts:
    def test_lease_builds_once_then_hits(self, comp_cfg):
        store = SharedArtifacts()
        from repro.api.session import phase1_key

        session = _session(comp_cfg)
        key = phase1_key(comp_cfg)
        first = store.lease(session, comp_cfg, key)
        other = _session(comp_cfg)  # different Session, same content
        second = store.lease(other, comp_cfg, key)
        assert first is second
        assert store.stats.builds == 1
        assert store.stats.hits == 1

    def test_concurrent_leases_single_flight(self, comp_cfg):
        store = SharedArtifacts()
        from repro.api.session import phase1_key

        key = phase1_key(comp_cfg)
        sessions = [_session(comp_cfg, seed=37) for _ in range(6)]
        entries = [None] * 6
        barrier = threading.Barrier(6)

        def lease(i):
            barrier.wait(WAIT)
            entries[i] = store.lease(sessions[i], comp_cfg, key)

        threads = [
            threading.Thread(target=lease, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert store.stats.builds == 1
        assert all(entry is entries[0] for entry in entries)
        # Every non-builder resolves through exactly one store hit
        # (after waiting on the in-flight build, if it raced it).
        assert store.stats.hits == 5
        assert store.stats.single_flight_waits <= 5

    def test_failed_build_raises_everywhere_then_retries(self, comp_cfg):
        store = SharedArtifacts()

        class Boom(RuntimeError):
            pass

        class _FakeSession:
            class _V:
                name, seed = "boom", 0

                def __len__(self):
                    return 10
            video = _V()
            scoring = counting_udf("car")

            def resolved_unit_costs(self):
                raise Boom("no ledger for you")

        with pytest.raises(Boom):
            store.lease(_FakeSession(), comp_cfg, ("k", 1))
        # The key is buildable again — a real session now succeeds.
        session = _session(comp_cfg, seed=41)
        from repro.api.session import phase1_key

        entry = store.lease(session, comp_cfg, phase1_key(comp_cfg))
        assert entry is not None

    def test_lru_eviction_bounds_residency(self, comp_cfg):
        import dataclasses

        store = SharedArtifacts(max_entries=1)
        from repro.api.session import phase1_key

        session = _session(comp_cfg, seed=43)
        alt_cfg = dataclasses.replace(comp_cfg, seed=comp_cfg.seed + 1)
        store.lease(session, comp_cfg, phase1_key(comp_cfg))
        store.lease(session, alt_cfg, phase1_key(alt_cfg))
        assert store.stats.builds == 2
        assert store.stats.evictions == 1
        assert len(store.resident_keys()) == 1
        # The evicted key's ledger survives for merged accounting.
        assert len(store.phase1_ledgers()) == 2
        # The evicted key rebuilds on next lease.
        store.lease(session, comp_cfg, phase1_key(comp_cfg))
        assert store.stats.builds == 3
        # The rebuilt ledger replaces (bit-identically), never doubles.
        assert len(store.phase1_ledgers()) == 2

    def test_warm_tier_round_trip_and_corruption(self, comp_cfg, tmp_path):
        from repro.api.session import phase1_key

        key = phase1_key(comp_cfg)
        store = SharedArtifacts(warm_dir=tmp_path)
        session = _session(comp_cfg, seed=47)
        entry = store.lease(session, comp_cfg, key)
        assert store.stats.warm_writes == 1

        cold = SharedArtifacts(warm_dir=tmp_path)
        warm = cold.lease(_session(comp_cfg, seed=47), comp_cfg, key)
        assert cold.stats.builds == 0 and cold.stats.warm_hits == 1
        assert warm.result.relation.pmf.tobytes() == \
            entry.result.relation.pmf.tobytes()
        ledger = {
            k: warm.cost_model.seconds(k)
            for k in warm.cost_model.breakdown()
        }
        assert ledger == {
            k: entry.cost_model.seconds(k)
            for k in entry.cost_model.breakdown()
        }

        # Corrupt the checkpoint: the store treats it as a miss.
        artifact = (group_key(session.video, session.scoring), key)
        target = tmp_path / artifact_digest(artifact)
        for blob in target.glob("*"):
            blob.write_bytes(b"garbage")
        hurt = SharedArtifacts(warm_dir=tmp_path)
        rebuilt = hurt.lease(_session(comp_cfg, seed=47), comp_cfg, key)
        assert hurt.stats.builds == 1
        assert rebuilt.result.relation.pmf.tobytes() == \
            entry.result.relation.pmf.tobytes()

    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            SharedArtifacts(max_entries=0)

    def test_group_key_unwraps_streams_and_digest_is_stable(self, comp_cfg):
        from repro.video.streaming import StreamingVideo

        video = _video("wrap", 53)
        stream = StreamingVideo(video, 300)
        udf = counting_udf("car")
        assert group_key(stream, udf) == group_key(video, udf)
        digest = artifact_digest((group_key(video, udf), ("k", 1)))
        assert digest == artifact_digest((group_key(video, udf), ("k", 1)))
        assert len(digest) == 32


# ----------------------------------------------------------------------
# QueryService odds and ends not covered by stress/differential tests.

class TestQueryServiceSurface:
    def test_submit_rejects_nonsense(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            session = service.open_session(
                _video("surface", 59), counting_udf("car"), config=comp_cfg)
            with pytest.raises(QueryError):
                service.submit("not a query")
            with pytest.raises(QueryError):
                service.submit(session.query().topk(3).plan(), session=None)

    def test_registry_names_and_submit_many(self, comp_cfg):
        with QueryService(workers=2, use_processes=False) as service:
            session = service.open_session(
                "traffic", "count[car]",
                num_frames=600, seed=61, config=comp_cfg)
            queries = [
                session.query().topk(k).guarantee(0.9) for k in (3, 4)]
            reports = service.gather(
                service.submit_many(queries), timeout=WAIT)
            assert [r.k for r in reports] == [3, 4]
            assert all(r.confidence >= 0.9 for r in reports)

    def test_direct_session_execute_shares_the_store(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            one = service.open_session(
                _video("direct", 67), counting_udf("car"), config=comp_cfg)
            two = service.open_session(
                _video("direct", 67), counting_udf("car"), config=comp_cfg)
            # Bypassing submit() entirely still goes single-flight.
            a = one.query().topk(3).guarantee(0.9).run()
            b = two.query().topk(3).guarantee(0.9).run()
            assert service.stats()["builds"] == 1
            assert a.answer_ids == b.answer_ids

    def test_attach_stream_requires_streaming_session(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            session = Session(
                _video("att", 71), counting_udf("car"), config=comp_cfg)
            with pytest.raises(QueryError):
                service.attach_stream(session)

    def test_stream_through_service_equals_plain_stream(self, comp_cfg):
        plain = Session.open_stream(
            _video("svc-live", 73, frames=900), counting_udf("car"),
            initial_frames=600, config=comp_cfg)
        plain_live = plain.query().topk(3).guarantee(0.9)\
            .deterministic_timing().subscribe()
        plain.append(150)

        with QueryService(workers=2, use_processes=False) as service:
            stream = service.open_stream(
                _video("svc-live", 73, frames=900), counting_udf("car"),
                initial_frames=600, config=comp_cfg, tenant="live")
            live = stream.query().topk(3).guarantee(0.9) \
                .deterministic_timing().subscribe()
            result = stream.append(150)
            assert len(result.reports) == 1
            assert live.latest.to_json() == plain_live.latest.to_json()
            assert service.tenant_charges().get("live", 0.0) >= 0.0
            assert service.stats()["completed"] >= 1
        # Detached on close: further appends run inline, no scheduler.
        assert stream.refresh_dispatcher is None
        stream.append(100)
        assert len(live.reports) == 3

    def test_sibling_streams_share_block_inference(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            first = service.open_stream(
                _video("twin", 79, frames=900), counting_udf("car"),
                initial_frames=600, config=comp_cfg)
            first.query().topk(3).guarantee(0.9).subscribe()
            first.append(120)
            baseline = first.stats.fresh_inferred_frames

            second = service.open_stream(
                _video("twin", 79, frames=900), counting_udf("car"),
                initial_frames=600, config=comp_cfg)
            second.query().topk(3).guarantee(0.9).subscribe()
            second.append(120)
            # The sibling reused the shared proxy-inference blocks: its
            # fresh inference is far below the first stream's.
            assert second.stats.fresh_inferred_frames < baseline

    def test_submitted_streams_never_take_the_process_lane(self, comp_cfg):
        # A streaming session submitted through the service must stay
        # inline even with a pool: the process lane would snapshot the
        # video at its current watermark and serve stale answers after
        # appends.
        with QueryService(workers=2, use_processes=True) as service:
            stream = service.open_stream(
                _video("lane", 89, frames=900), counting_udf("car"),
                initial_frames=600, config=comp_cfg)
            before = service.submit(
                stream.query().topk(3).guarantee(0.9).deterministic_timing(),
            ).result(WAIT)
            assert before.num_frames == 600
            stream.append(200)
            after = service.submit(
                stream.query().topk(3).guarantee(0.9).deterministic_timing(),
            ).result(WAIT)
            # The report tracks the live watermark, not a frozen blob.
            assert after.num_frames == 800

    def test_prehanded_phase1_ledger_filled_by_shared_build(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            session = service.open_session(
                _video("ledger", 97), counting_udf("car"), config=comp_cfg)
            held = session.phase1_cost_model()
            assert held.total_seconds() == 0.0
            session.query().topk(3).guarantee(0.9).run()
            # The single-flight build charged the store's ledger; the
            # pre-handed reference received the same charges.
            entry_ledger = session.phase1().cost_model
            assert held.total_seconds() == entry_ledger.total_seconds()
            assert held.units("oracle_label") == \
                entry_ledger.units("oracle_label")

    def test_gather_timeout_message(self, comp_cfg):
        with QueryService(workers=1, use_processes=False) as service:
            session = service.open_session(
                _video("slow", 83), counting_udf("car"), config=comp_cfg)
            future = service.submit(session.query().topk(3).guarantee(0.9))
            with pytest.raises(TimeoutError):
                service.gather([future], timeout=0.0)
            assert future.result(WAIT) is not None
