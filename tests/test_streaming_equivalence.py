"""Equivalence certification for the streaming subsystem.

The acceptance contract (mirroring ``test_parallel_equivalence.py``):
after any schedule of appends, a live subscription's report — answer,
confidence, *and* deterministic-timing ledgers — is byte-identical
(``QueryReport.to_json``) to a from-scratch batch run of the engine
over the same frames under the session's pinned training policy.
Schedules are drawn by hypothesis; the batch reference at the final
watermark is computed once and shared across examples, so every drawn
schedule is certified against the same bytes (which also certifies
schedule-invariance of the live answer).

Also pinned here: per-append (not just final) batch equivalence, the
Phase-1 ledger arithmetic, zero-fresh-oracle resume, and the honest
divergence marking of the drift-audit path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EverestConfig, Session
from repro.config import Phase1Config
from repro.oracle import counting_udf
from repro.streaming import StreamingConfig
from repro.video import TrafficVideo

NUM_FRAMES = 480
BOOTSTRAP = 240

#: Small-but-real engine configuration so each example stays fast.
STREAM_CONFIG = EverestConfig(
    phase1=Phase1Config(
        sample_fraction=0.05,
        min_train_samples=96,
        holdout_samples=48,
        cmdn_grid=((3, 12),),
        epochs=15,
    ),
)


def make_source() -> TrafficVideo:
    return TrafficVideo("stream-eq", NUM_FRAMES, seed=17)


def open_stream(**kwargs) -> "Session":
    return Session.open_stream(
        make_source(), counting_udf("car"), initial_frames=BOOTSTRAP,
        config=STREAM_CONFIG, **kwargs)


def build_query(session, kind: str):
    query = session.query().guarantee(0.85).deterministic_timing()
    if kind == "windows":
        return query.windows(size=25).topk(2)
    return query.topk(3)


#: Batch reference reports, computed once per (watermark, query kind).
_BATCH_REF: Dict[Tuple[int, str], str] = {}


def batch_reference(stream, kind: str) -> str:
    key = (stream.watermark, kind)
    if key not in _BATCH_REF:
        batch = stream.batch_session()
        _BATCH_REF[key] = build_query(batch, kind).run().to_json()
    return _BATCH_REF[key]


def random_schedule(seed: int) -> List[int]:
    """Partition the post-bootstrap frames into 1..4 appends."""
    rng = np.random.default_rng(seed)
    remaining = NUM_FRAMES - BOOTSTRAP
    parts = int(rng.integers(1, 5))
    cuts = np.sort(rng.choice(
        np.arange(1, remaining), size=parts - 1, replace=False))
    sizes = np.diff(np.concatenate(([0], cuts, [remaining])))
    return [int(s) for s in sizes if s > 0]


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10**9))
def test_live_topk_bit_identical_to_batch_for_any_schedule(seed):
    schedule = random_schedule(seed)
    stream = open_stream()
    frames = build_query(stream, "frames").subscribe()
    windows = build_query(stream, "windows").subscribe()
    for size in schedule:
        stream.append(size)
    assert stream.watermark == NUM_FRAMES

    # Reports (answer + breakdown ledgers) equal the from-scratch batch
    # run byte for byte — and, since the reference is shared across
    # examples, every schedule converged to the same bytes.
    assert frames.latest.to_json() == batch_reference(stream, "frames")
    assert windows.latest.to_json() == batch_reference(stream, "windows")
    # One report per append, plus the subscribe-time answer.
    assert len(frames.reports) == len(schedule) + 1
    # Labelling happened once, at bootstrap: appends are label-free.
    expected_labels = stream.phase1().oracle_calls
    assert stream.stats.fresh_label_calls == expected_labels
    assert not stream.diverged


def test_every_append_matches_batch_over_its_prefix():
    stream = open_stream()
    live = build_query(stream, "frames").subscribe()
    for size in (60, 130, 50):
        stream.append(size)
        batch = stream.batch_session()
        reference = build_query(batch, "frames").run()
        assert live.latest.to_json() == reference.to_json()
        # The Phase-1 ledgers agree charge for charge, not just in the
        # report projection: same units and the same float seconds.
        live_ledger = stream.phase1_cost_model()
        batch_ledger = batch.phase1_cost_model()
        assert live_ledger.breakdown() == batch_ledger.breakdown()
        for key in live_ledger.breakdown():
            assert live_ledger.units(key) == batch_ledger.units(key)


def test_resume_is_equivalence_preserving_and_label_free(tmp_path):
    path = tmp_path / "store"
    stream = open_stream()
    live = build_query(stream, "frames").subscribe()
    stream.append(90)
    stream.checkpoint(path)

    resumed = Session.resume(path)
    labels_before = resumed.stats.fresh_label_calls
    confirms_before = resumed.stats.fresh_confirm_calls
    re_live = build_query(resumed, "frames").subscribe()
    # Re-serving the checkpointed watermark reveals nothing new: zero
    # Phase-1 oracle calls and zero fresh confirmations.
    assert resumed.stats.fresh_label_calls == labels_before
    assert resumed.stats.fresh_confirm_calls == confirms_before
    assert re_live.latest.to_json() == live.latest.to_json()

    # Appends after resume continue the equivalence.
    resumed.append(150)
    batch = resumed.batch_session()
    assert re_live.latest.to_json() == \
        build_query(batch, "frames").run().to_json()


def test_drift_auditing_charges_honestly_and_marks_divergence():
    stream = open_stream(streaming=StreamingConfig(
        audit_fraction=0.4, drift_threshold=-100.0,
        min_audit_for_drift=8))
    live = build_query(stream, "frames").subscribe()
    result = stream.append(120)
    assert result.audited > 0
    assert result.retrained  # threshold of -100 always trips
    assert stream.diverged
    assert stream.stats.retrain_count == 1
    # The guarantee still holds after a retrain...
    assert live.latest.confidence >= 0.85
    # ...and the ledger carries the audit + retrain work on top of the
    # batch-equivalent base, so divergence is visible, not hidden.
    batch = stream.batch_session()
    batch.phase1()  # populate the reference ledger
    batch_ledger = batch.phase1_cost_model()
    live_ledger = stream.phase1_cost_model()
    assert live_ledger.units("oracle_label") > \
        batch_ledger.units("oracle_label")
    assert live_ledger.units("cmdn_train") > batch_ledger.units("cmdn_train")


def test_drift_free_auditing_reports_drift_without_retraining():
    stream = open_stream(streaming=StreamingConfig(
        audit_fraction=0.4, drift_threshold=1e9, min_audit_for_drift=8))
    result = stream.append(120)
    assert result.audited > 0
    assert result.drift is not None  # enough samples to report
    assert not result.retrained
    assert stream.stats.retrain_count == 0
    # Audit labels are honest extra charges: divergence is marked even
    # without a retrain.
    assert stream.diverged


def test_streaming_session_rejects_foreign_phase1_configs():
    from repro.errors import QueryError

    stream = open_stream()
    other = EverestConfig(seed=123)
    with pytest.raises(QueryError):
        stream.phase1(other)
    with pytest.raises(QueryError):
        stream.adopt_phase1(None)
