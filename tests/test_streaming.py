"""Unit tests for the streaming subsystem's components.

The end-to-end bit-identity contract lives in
``test_streaming_equivalence.py``; this file pins the pieces it is
built from — the appendable video view, the incremental difference
detector, the block-aligned inference cache, the caching oracle's
ledger fidelity, the stable Phase-1 cache key, and the artifact
store's crash-recovery behaviour.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import EverestConfig, Session
from repro.api.session import phase1_key
from repro.config import DiffDetectorConfig, Phase1Config
from repro.core.phase1 import predict_mixtures_chunked
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    OracleBudgetExceededError,
    QueryError,
    VideoError,
)
from repro.oracle import CostModel, Oracle, counting_udf
from repro.streaming import (
    BlockInferenceCache,
    CachingOracle,
    IncrementalDiff,
    ScoreCache,
    StreamingConfig,
)
from repro.streaming.store import (
    MANIFEST_NAME,
    read_checkpoint,
    write_checkpoint,
)
from repro.video import DifferenceDetector, StreamingVideo, TrafficVideo


# ----------------------------------------------------------------------
# StreamingVideo: the appendable prefix view.

class TestStreamingVideo:
    def test_watermark_append_and_segments(self, traffic_video):
        stream = StreamingVideo(traffic_video, 400)
        assert len(stream) == stream.watermark == 400
        assert stream.remaining == len(traffic_video) - 400
        segment = stream.append(250)
        assert (segment.start, segment.end) == (400, 650)
        assert len(stream) == 650
        starts = [s.start for s in stream.segments]
        assert starts == [0, 400]

    def test_reads_are_bit_identical_to_the_source(self, traffic_video):
        stream = StreamingVideo(traffic_video, 500)
        np.testing.assert_array_equal(
            stream.pixels(123), traffic_video.pixels(123))
        np.testing.assert_array_equal(
            stream.batch_pixels([5, 17, 499]),
            traffic_video.batch_pixels([5, 17, 499]))
        frame = stream.frame(42)
        assert frame.truth == traffic_video.frame(42).truth
        np.testing.assert_array_equal(
            stream.truth_array(), traffic_video.truth_array()[:500])

    def test_no_peeking_beyond_the_watermark(self, traffic_video):
        stream = StreamingVideo(traffic_video, 300)
        with pytest.raises(IndexError):
            stream.pixels(300)
        with pytest.raises(IndexError):
            stream.frame(1_000)
        stream.append(10)
        stream.pixels(305)  # arrived now

    def test_append_validation(self, traffic_video):
        stream = StreamingVideo(traffic_video, len(traffic_video) - 5)
        with pytest.raises(ConfigurationError):
            stream.append(0)
        with pytest.raises(VideoError):
            stream.append(6)  # source exhausted
        stream.append_until(len(traffic_video))
        assert stream.remaining == 0

    def test_snapshot_is_sealed(self, traffic_video):
        stream = StreamingVideo(traffic_video, 200)
        frozen = stream.snapshot()
        with pytest.raises(VideoError):
            frozen.append(1)
        stream.append(50)  # the live view is unaffected
        assert len(frozen) == 200 and len(stream) == 250

    def test_constructor_validation(self, traffic_video):
        with pytest.raises(ConfigurationError):
            StreamingVideo(traffic_video, 0)
        with pytest.raises(ConfigurationError):
            StreamingVideo(traffic_video, len(traffic_video) + 1)
        stream = StreamingVideo(traffic_video, 10)
        with pytest.raises(ConfigurationError):
            StreamingVideo(stream, 5)  # no nesting


# ----------------------------------------------------------------------
# IncrementalDiff == batch DifferenceDetector over every prefix.

@pytest.mark.parametrize("clip_size", [7, 30])
def test_incremental_diff_matches_batch_for_random_schedules(clip_size):
    video = TrafficVideo("diff-inc", 400, seed=5)
    config = DiffDetectorConfig(clip_size=clip_size)
    detector = DifferenceDetector(config)
    rng = np.random.default_rng(99)
    for _ in range(3):
        incremental = IncrementalDiff(config)
        stream = StreamingVideo(video, int(rng.integers(40, 120)))
        incremental.extend(stream, len(stream))
        while stream.remaining:
            stream.append(int(rng.integers(1, min(90, stream.remaining) + 1)))
            incremental.extend(stream, len(stream))
            batch = detector.run(stream.snapshot())
            mine = incremental.result()
            np.testing.assert_array_equal(mine.retained, batch.retained)
            np.testing.assert_array_equal(
                mine.representative, batch.representative)
            assert mine.num_frames == batch.num_frames


def test_incremental_diff_rejects_backwards_watermark():
    video = TrafficVideo("diff-back", 100, seed=1)
    stream = StreamingVideo(video, 80)
    diff = IncrementalDiff(DiffDetectorConfig())
    diff.extend(stream, 80)
    with pytest.raises(ConfigurationError):
        diff.extend(stream, 40)


# ----------------------------------------------------------------------
# BlockInferenceCache: byte-identical to the batch inference path.

def test_block_cache_matches_chunked_inference(traffic_video, trained_proxy):
    cache = BlockInferenceCache()
    stream = StreamingVideo(traffic_video, 600)
    retained = np.arange(0, 600)
    mine = cache.mixtures_for(trained_proxy, stream, retained)
    reference = predict_mixtures_chunked(
        trained_proxy, traffic_video, retained, workers=1)
    np.testing.assert_array_equal(mine.pi, reference.pi)
    np.testing.assert_array_equal(mine.mu, reference.mu)
    np.testing.assert_array_equal(mine.sigma, reference.sigma)

    # Growing the retained set recomputes only the changed tail blocks
    # (the full leading block stays cached), and stays byte-identical
    # to a from-scratch chunked run.
    from repro.streaming import StreamingStats
    stats = StreamingStats()
    stream.append(600)
    grown = np.arange(0, 1200)
    mine2 = cache.mixtures_for(trained_proxy, stream, grown, stats)
    assert stats.fresh_inferred_frames == grown.size - 512
    reference2 = predict_mixtures_chunked(
        trained_proxy, traffic_video, grown, workers=1)
    np.testing.assert_array_equal(mine2.mu, reference2.mu)


def test_block_cache_invalidates_on_membership_change(
        traffic_video, trained_proxy):
    cache = BlockInferenceCache()
    stream = StreamingVideo(traffic_video, 900)
    first = np.arange(0, 900, 3)
    cache.mixtures_for(trained_proxy, stream, first)
    # Drop one frame near the front: every block shifts and recomputes.
    from repro.streaming import StreamingStats
    stats = StreamingStats()
    changed = first[first != 3]
    mine = cache.mixtures_for(trained_proxy, stream, changed, stats)
    assert stats.fresh_inferred_frames == changed.size
    reference = predict_mixtures_chunked(
        trained_proxy, traffic_video, changed, workers=1)
    np.testing.assert_array_equal(mine.mu, reference.mu)


# ----------------------------------------------------------------------
# CachingOracle: the ledger cannot tell it apart from a real oracle.

class TestCachingOracle:
    def test_charges_and_counts_like_the_base_oracle(self, traffic_video):
        scoring = counting_udf("car")
        plain_cost, cached_cost = CostModel(), CostModel()
        plain = Oracle(scoring, plain_cost, cost_key="oracle_confirm")
        cached = CachingOracle(
            scoring, cached_cost, cache=ScoreCache(),
            cost_key="oracle_confirm")
        indices = [3, 9, 3, 50]
        np.testing.assert_array_equal(
            cached.score(traffic_video, indices),
            plain.score(traffic_video, indices))
        assert cached.calls == plain.calls == 4
        assert cached_cost.breakdown() == plain_cost.breakdown()
        assert cached.fresh_calls == 3  # 3 repeated within the batch

    def test_cache_hits_skip_the_udf_but_not_the_ledger(
            self, traffic_video):
        scoring = counting_udf("car")
        cache = ScoreCache()
        cost = CostModel()
        oracle = CachingOracle(
            scoring, cost, cache=cache, cost_key="oracle_confirm")
        oracle.score(traffic_video, [1, 2, 3])
        seconds_once = cost.seconds("oracle_confirm")
        oracle.score(traffic_video, [1, 2, 3])
        assert oracle.fresh_calls == 3  # no new physical work
        assert oracle.calls == 6  # but full accounting
        assert cost.seconds("oracle_confirm") == pytest.approx(
            2 * seconds_once)

    def test_budget_is_enforced_on_accounted_calls(self, traffic_video):
        cache = ScoreCache()
        oracle = CachingOracle(
            counting_udf("car"), CostModel(), cache=cache, budget=4)
        oracle.score(traffic_video, [1, 2, 3])
        with pytest.raises(OracleBudgetExceededError):
            # Cached or not, accounted calls exhaust the budget exactly
            # like a batch run's oracle would.
            oracle.score(traffic_video, [1, 2])

    def test_score_cache_roundtrip(self):
        cache = ScoreCache({4: 2.0})
        assert 4 in cache and 5 not in cache
        cache.put(5, 1.5)
        assert cache.get(5) == 1.5
        assert cache.as_dict() == {4: 2.0, 5: 1.5}
        assert len(cache) == 2


# ----------------------------------------------------------------------
# Stable Phase-1 cache key (satellite).

class TestPhase1Key:
    def test_key_is_explicit_fields_not_repr(self):
        key = dict(phase1_key(EverestConfig()))
        assert key["seed"] == 0
        assert key["clip_size"] == 30
        assert key["cmdn_grid"] == ((3, 8), (5, 12), (8, 16))
        assert "sample_prefix" in key

    def test_phase2_overrides_share_a_key(self):
        base = EverestConfig()
        phase2_only = dataclasses.replace(
            base, phase2=dataclasses.replace(
                base.phase2, batch_size=32, oracle_budget=10))
        assert phase1_key(base) == phase1_key(phase2_only)

    def test_phase1_changes_split_the_key(self):
        base = EverestConfig()
        assert phase1_key(base) != phase1_key(
            dataclasses.replace(base, seed=1))
        assert phase1_key(base) != phase1_key(dataclasses.replace(
            base, phase1=dataclasses.replace(
                base.phase1, sample_prefix=100)))
        assert phase1_key(base) != phase1_key(dataclasses.replace(
            base, diff=DiffDetectorConfig(clip_size=10)))

    def test_key_is_hashable_and_normalized(self):
        listy = dataclasses.replace(
            EverestConfig(),
            phase1=Phase1Config(cmdn_grid=[(3, 8), (5, 12), (8, 16)]))
        assert hash(phase1_key(listy)) == hash(phase1_key(EverestConfig()))


# ----------------------------------------------------------------------
# Artifact store: atomicity and corruption detection.

class TestArtifactStore:
    def test_roundtrip_and_manifest(self, tmp_path):
        path = tmp_path / "ck"
        write_checkpoint(path, {"answer": 42}, metadata={"video_name": "v"})
        state, manifest = read_checkpoint(path)
        assert state == {"answer": 42}
        assert manifest["video_name"] == "v"
        assert manifest["format_version"] == 1

    def test_rewrite_garbage_collects_old_blobs(self, tmp_path):
        path = tmp_path / "ck"
        write_checkpoint(path, {"round": 1})
        write_checkpoint(path, {"round": 2})
        blobs = list(path.glob("state-*.pkl"))
        assert len(blobs) == 1
        state, _ = read_checkpoint(path)
        assert state == {"round": 2}

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "nope")

    def test_corrupt_blob_fails_its_checksum(self, tmp_path):
        path = tmp_path / "ck"
        write_checkpoint(path, {"round": 1})
        blob = next(path.glob("state-*.pkl"))
        blob.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_unknown_format_version(self, tmp_path):
        path = tmp_path / "ck"
        write_checkpoint(path, {"round": 1})
        manifest_path = path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format"):
            read_checkpoint(path)


# ----------------------------------------------------------------------
# Session-level surfaces not covered by the equivalence suite.

@pytest.fixture(scope="module")
def small_stream_session():
    video = TrafficVideo("stream-api", 360, seed=23)
    return Session.open_stream(
        video, counting_udf("car"), initial_frames=240,
        config=EverestConfig.fast())


class TestStreamingSessionSurface:
    def test_open_stream_by_registry_names(self):
        session = Session.open_stream(
            "traffic", "count[car]", initial_frames=200,
            num_frames=300, seed=2, config=EverestConfig.fast())
        assert session.watermark == 200
        assert session.video.name == "traffic"

    def test_open_stream_requires_initial_frames(self, traffic_video):
        with pytest.raises(QueryError, match="initial_frames"):
            Session.open_stream(traffic_video, counting_udf("car"))

    def test_subscribe_requires_streaming_session(self, traffic_video):
        batch = Session(
            traffic_video, counting_udf("car"),
            config=EverestConfig.fast())
        with pytest.raises(QueryError, match="streaming"):
            batch.query().topk(3).subscribe()

    def test_subscribe_rejects_foreign_queries(
            self, small_stream_session, traffic_video):
        other = Session(
            traffic_video, counting_udf("car"),
            config=EverestConfig.fast())
        with pytest.raises(QueryError):
            small_stream_session.subscribe(other.query().topk(2))

    def test_streaming_config_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(audit_fraction=1.5)
        with pytest.raises(ConfigurationError):
            StreamingConfig(retrain_epochs=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(max_history=0)

    def test_open_stream_rejects_conflicting_initial_frames(
            self, traffic_video):
        stream = StreamingVideo(traffic_video, 300)
        with pytest.raises(QueryError, match="implied"):
            Session.open_stream(
                stream, counting_udf("car"), initial_frames=100,
                config=EverestConfig.fast())

    def test_failed_subscription_refresh_leaves_append_applied(self):
        video = TrafficVideo("budget-stream", 400, seed=12)
        session = Session.open_stream(
            video, counting_udf("car"), initial_frames=250,
            config=EverestConfig.fast())
        doomed = session.query().topk(2).guarantee(0.8) \
            .deterministic_timing().subscribe()
        healthy = session.query().topk(2).guarantee(0.8) \
            .deterministic_timing().subscribe()
        # Choke the first subscription: its next refresh must trip.
        doomed.query = doomed.query.oracle_budget(1)
        with pytest.raises(OracleBudgetExceededError):
            session.append(50)
        # The append is fully applied and the error did not starve the
        # later subscription: watermark advanced, bookkeeping recorded,
        # the healthy subscription got its report.
        assert session.watermark == 300
        assert session.stats.appends == 1
        assert len(session.append_log) == 1
        assert healthy.latest.num_frames == 300
        # A retry appends *further* frames (nothing is re-appended).
        doomed.query = doomed.query.oracle_budget(None)
        session.append(50)
        assert session.watermark == 350
        assert doomed.latest.num_frames == 350

    def test_execute_many_rejects_parallel_workers(self):
        video = TrafficVideo("serial-stream", 300, seed=13)
        session = Session.open_stream(
            video, counting_udf("car"), initial_frames=250,
            config=EverestConfig.fast())
        plan = session.query().topk(2).guarantee(0.8).plan()
        with pytest.raises(QueryError, match="serially"):
            session.execute_many([plan], workers=2)

    def test_max_history_bounds_the_append_log(self):
        video = TrafficVideo("history", 400, seed=8)
        session = Session.open_stream(
            video, counting_udf("car"), initial_frames=250,
            config=EverestConfig.fast(),
            streaming=StreamingConfig(max_history=2))
        live = session.query().topk(2).guarantee(0.8) \
            .deterministic_timing().subscribe()
        for _ in range(4):
            session.append(30)
        assert len(session.append_log) == 2
        assert len(live.reports) == 2
        # The latest answer survives trimming and stays current.
        assert live.latest is live.reports[-1]
        assert live.latest.num_frames == session.watermark

    def test_append_result_shape_and_execute_many(
            self, small_stream_session):
        session = small_stream_session
        live = session.query().topk(2).guarantee(0.8) \
            .deterministic_timing().subscribe()
        result = session.append(60)
        assert result.watermark == session.watermark
        assert result.reports[-1] is live.latest
        assert result.segment.num_frames == 60
        assert result.fresh_oracle_calls == \
            result.fresh_label_calls + result.fresh_confirm_calls
        assert len(live) == 2 and list(live) == live.reports
        plans = [
            session.query().topk(k).guarantee(0.8).deterministic_timing()
            .plan()
            for k in (2, 3)
        ]
        reports = session.execute_many(plans)
        assert [r.k for r in reports] == [2, 3]
        assert session.phase1_runs == 1

    def test_stale_plans_are_rejected_after_append(
            self, small_stream_session):
        session = small_stream_session
        stale = session.query().topk(2).guarantee(0.8).plan()
        session.append(30)
        with pytest.raises(QueryError):
            session.execute(stale)
