"""Tests for the declarative query API (sessions, builder, plans).

Covers the acceptance criteria of the API redesign: fluent queries
produce reports identical to the legacy engine's, a sweep on one
session runs Phase 1 exactly once, builder clauses validate eagerly,
window-query edges behave, and reports round-trip through JSON.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import (
    Query,
    QueryPlan,
    Session,
    open_session,
    phase1_key,
    resolve_udf,
    resolve_video,
)
from repro.config import EverestConfig, Phase2Config
from repro.core import EverestEngine
from repro.core.result import PhaseBreakdown, QueryReport
from repro.core.windows import num_windows
from repro.errors import (
    ConfigurationError,
    OracleBudgetExceededError,
    QueryError,
)
from repro.oracle import counting_udf


def counting_udf_with_counter(label="car"):
    """A counting UDF that also counts how many frames it scored."""
    inner = counting_udf(label)
    calls = {"frames": 0}

    def score_frames(frames):
        calls["frames"] += len(frames)
        return inner.score_frames(frames)

    return dataclasses.replace(
        inner, score_frames=score_frames, exact_scores_fn=None), calls


@pytest.fixture(scope="module")
def session(traffic_video, fast_config):
    """A shared session so most tests reuse one Phase 1 build."""
    return Session(traffic_video, counting_udf("car"), config=fast_config)


class TestBuilderValidation:
    def test_clauses_validate_eagerly(self, session):
        query = session.query()
        with pytest.raises(QueryError):
            query.topk(0)
        with pytest.raises(QueryError):
            query.topk(-3)
        with pytest.raises(QueryError):
            query.guarantee(0.0)
        with pytest.raises(QueryError):
            query.guarantee(1.5)
        with pytest.raises(QueryError):
            query.windows(size=0)
        with pytest.raises(QueryError):
            query.windows(size=30, step=0.0)
        with pytest.raises(QueryError):
            query.windows(size=30, step=-1.0)
        with pytest.raises(ConfigurationError):
            query.oracle_budget(0)
        with pytest.raises(ConfigurationError):
            query.with_config("not a config")

    def test_builder_is_immutable(self, session):
        base = session.query().guarantee(0.95)
        forked = base.topk(5)
        windowed = base.windows(size=30)
        assert base.plan().k == 50  # default untouched by the forks
        assert forked.plan().k == 5
        assert base.plan().mode == "frames"
        assert windowed.plan().mode == "windows"
        assert forked.plan().thres == windowed.plan().thres == 0.95

    def test_plan_compiles_without_running_phase1(
            self, traffic_video, fast_config):
        fresh = Session(traffic_video, counting_udf("car"),
                        config=fast_config)
        plan = fresh.query().windows(size=30).topk(10).plan()
        text = fresh.query().windows(size=30).topk(10).explain()
        assert isinstance(plan, QueryPlan)
        assert fresh.phase1_runs == 0
        assert "tumbling-windows(size=30" in text
        assert traffic_video.name in text
        assert "top-10" in text

    def test_plan_fields(self, session, traffic_video):
        plan = (session.query()
                .windows(size=50).topk(7).guarantee(0.8)
                .oracle_budget(123).plan())
        assert plan.video_name == traffic_video.name
        assert plan.k == 7 and plan.thres == 0.8
        assert plan.window_size == 50
        # Default step: UDF step / 4 for a counting UDF.
        assert plan.window_step == pytest.approx(0.25)
        assert plan.oracle_budget == 123
        assert plan.num_tuples == num_windows(len(traffic_video), 50)

    def test_numpy_integers_accepted(self, session):
        # k and window size often come from np.arange / array indexing.
        plan = (session.query()
                .topk(np.int64(5)).windows(size=np.int64(30)).plan())
        assert plan.k == 5 and isinstance(plan.k, int)
        assert plan.window_size == 30 and isinstance(plan.window_size, int)

    def test_hand_built_plan_validates(self, session, fast_config):
        with pytest.raises(ValueError):
            QueryPlan(
                video_name="x", udf_name="y", num_frames=10,
                mode="nonsense", k=1, thres=0.9, window_size=None,
                window_step=None, oracle_budget=None,
                config=fast_config, unit_costs={})
        with pytest.raises(ValueError):
            QueryPlan(
                video_name="x", udf_name="y", num_frames=10,
                mode="windows", k=1, thres=0.9, window_size=10,
                window_step=None, oracle_budget=None,
                config=fast_config, unit_costs={})


class TestSessionQueries:
    def test_frame_query_matches_engine(self, traffic_video, fast_config):
        scoring = counting_udf("car")
        fresh = Session(traffic_video, scoring, config=fast_config)
        report = fresh.query().topk(5).guarantee(0.9).run()
        legacy = EverestEngine(
            traffic_video, scoring, config=fast_config).topk(5, 0.9)
        assert report.answer_ids == legacy.answer_ids
        assert report.confidence == legacy.confidence
        assert report.oracle_calls == legacy.oracle_calls
        assert report.cleaned == legacy.cleaned

    def test_window_query_matches_engine(self, traffic_video, fast_config):
        scoring = counting_udf("car")
        fresh = Session(traffic_video, scoring, config=fast_config)
        report = (fresh.query()
                  .windows(size=30).topk(5).guarantee(0.9).run())
        legacy = EverestEngine(
            traffic_video, scoring,
            config=fast_config).topk_windows(5, 0.9, window_size=30)
        assert report.answer_ids == legacy.answer_ids
        assert report.confidence == legacy.confidence
        assert report.oracle_calls == legacy.oracle_calls
        assert report.window_size == legacy.window_size == 30

    def test_sweep_runs_phase1_once(self, traffic_video, fast_config):
        scoring, calls = counting_udf_with_counter()
        fresh = Session(traffic_video, scoring, config=fast_config)
        first = fresh.query().topk(5).guarantee(0.9).run()
        second = fresh.query().windows(size=30).topk(5).guarantee(0.9).run()
        assert fresh.phase1_runs == 1
        # Oracle label calls were charged exactly once: the UDF scored
        # the Phase 1 sample once plus each query's confirmations.
        phase1_labels = fresh.phase1().oracle_calls
        expected = first.oracle_calls + second.oracle_calls - phase1_labels
        assert calls["frames"] == expected
        # Both reports still account the identical full Phase 1 cost.
        assert first.breakdown.label_sample == pytest.approx(
            second.breakdown.label_sample)

    def test_phase2_override_hits_phase1_cache(
            self, traffic_video, fast_config):
        fresh = Session(traffic_video, counting_udf("car"),
                        config=fast_config)
        fresh.query().topk(5).guarantee(0.9).run()
        override = dataclasses.replace(
            fast_config, phase2=Phase2Config(batch_size=4))
        assert phase1_key(override) == phase1_key(fast_config)
        fresh.query().with_config(override).topk(5).guarantee(0.9).run()
        assert fresh.phase1_runs == 1

    def test_facade_phase1_cost_ledger(self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        ledger = engine.phase1_cost  # stable handle before Phase 1
        assert ledger.seconds("oracle_label") == 0.0
        engine.topk(5, 0.9)
        assert ledger is engine.phase1_cost
        assert ledger.seconds("oracle_label") > 0

    def test_oracle_budget_clause_enforced(self, traffic_video, fast_config):
        fresh = Session(traffic_video, counting_udf("car"),
                        config=fast_config)
        with pytest.raises(OracleBudgetExceededError):
            (fresh.query().topk(20).guarantee(0.99)
             .oracle_budget(3).run())

    def test_session_open_with_strings(self, fast_config):
        opened = Session.open(
            "traffic", "count[person]",
            config=fast_config, num_frames=600, seed=9)
        assert opened.video.name == "traffic"
        assert opened.scoring.name == "count[person]"

    def test_executor_rejects_foreign_plan(
            self, session, traffic_video, fast_config):
        other = Session(
            resolve_video("traffic", num_frames=400, seed=2),
            counting_udf("car"), config=fast_config)
        foreign = other.query().topk(3).plan()
        with pytest.raises(QueryError):
            session.execute(foreign)
        # Same video *name* but a different video is still foreign.
        from repro.video import TrafficVideo
        impostor = Session(
            TrafficVideo(traffic_video.name, 400, seed=2),
            counting_udf("car"), config=fast_config)
        with pytest.raises(QueryError):
            session.execute(impostor.query().topk(3).plan())


class TestWindowEdges:
    def test_window_size_one_delegates_to_frame_path(self, session):
        plan = session.query().windows(size=1).topk(5).plan()
        assert plan.mode == "frames"
        assert plan.window_size is None
        report = session.query().windows(size=1).topk(5).guarantee(0.9).run()
        assert report.window_size is None

    def test_invalid_window_step_via_engine_facade(
            self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        with pytest.raises(QueryError):
            engine.topk_windows(5, 0.9, window_size=30, window_step=0.0)
        with pytest.raises(QueryError):
            engine.topk_windows(5, 0.9, window_size=-2)

    def test_window_ids_in_range(self, session, traffic_video):
        report = (session.query()
                  .windows(size=40).topk(5).guarantee(0.9).run())
        count = num_windows(len(traffic_video), 40)
        assert all(0 <= w < count for w in report.answer_ids)


class TestRegistry:
    def test_resolve_udf_specs(self):
        assert resolve_udf("count").name == "count[car]"
        assert resolve_udf("count[person]").name == "count[person]"
        assert resolve_udf("tailgating").name == "tailgating"
        assert resolve_udf("tailgating").quantization_step is not None
        assert resolve_udf("sentiment").name == "happiness"

    def test_unknown_names_raise(self):
        with pytest.raises(ConfigurationError):
            resolve_udf("no-such-udf")
        with pytest.raises(ConfigurationError):
            resolve_udf("count[car")  # malformed spec
        with pytest.raises(ConfigurationError):
            resolve_video("no-such-video")

    def test_register_video_rejects_dataset_shadowing(self):
        from repro.api import register_video
        with pytest.raises(ConfigurationError):
            register_video("taipei-bus", lambda **kw: None)

    def test_open_session_with_dataset_name(self, fast_config):
        opened = open_session(
            "dashcam-california", "tailgating",
            config=fast_config, min_frames=500)
        assert opened.video.name == "dashcam-california"
        assert opened.query().topk(3).plan().udf_name == \
            opened.scoring.name


class TestReportJson:
    def test_round_trip_with_numpy_values(self):
        report = QueryReport(
            video_name="rt", udf_name="count[car]",
            k=np.int64(3), thres=np.float64(0.9),
            window_size=np.int64(30), num_frames=np.int64(900),
            answer_ids=[np.int64(4), np.int64(1), np.int64(7)],
            answer_scores=list(np.array([5.0, 4.0, 3.5])),
            confidence=np.float64(0.93),
            iterations=np.int64(6), cleaned=np.int64(48),
            num_tuples=np.int64(30), num_retained=np.int64(700),
            oracle_calls=np.int64(120),
            breakdown=PhaseBreakdown(
                label_sample=1.0, cmdn_training=2.0, populate_d0=3.0,
                select_candidate=0.5, confirm_oracle=4.0),
            scan_seconds=np.float64(1000.0),
            proxy_hyperparameters=(np.int64(3), np.int64(16)),
            holdout_nll=np.float64(1.25),
            confidence_trace=list(np.array([0.2, 0.5, 0.93])),
            selection_examine_fraction=np.float64(0.1),
        )
        text = report.to_json()
        back = QueryReport.from_json(text)
        assert back.answer_ids == [4, 1, 7]
        assert back.answer_scores == [5.0, 4.0, 3.5]
        assert back.proxy_hyperparameters == (3, 16)
        assert back.breakdown == report.breakdown
        assert back.confidence == pytest.approx(0.93)
        assert back.window_size == 30
        # A second round trip is exact: everything is builtin types now.
        assert QueryReport.from_json(back.to_json()) == back

    def test_round_trip_real_report(self, session):
        report = session.query().topk(5).guarantee(0.9).run()
        back = QueryReport.from_json(report.to_json())
        assert back.answer_ids == [int(i) for i in report.answer_ids]
        assert back.confidence == pytest.approx(report.confidence)
        assert back.summary() == report.summary()
        assert back.breakdown.total_seconds == pytest.approx(
            report.breakdown.total_seconds)
