"""Coverage for the previously untested video substrate corners:

* :class:`repro.video.reader.VideoReader` — LRU caching, priority
  prefetching, and decode-cost accounting (paper Section 3.5);
* :mod:`repro.video.visual_road` — the Figure 8 density suite and its
  concatenated count process.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.oracle import CostModel
from repro.video import TrafficVideo, VideoReader
from repro.video.visual_road import (
    PAPER_DENSITIES,
    _ConcatenatedCountProcess,
    visual_road_suite,
    visual_road_video,
)


@pytest.fixture()
def reader_video():
    return TrafficVideo("reader-fixture", 200, seed=31)


# ----------------------------------------------------------------------
# VideoReader

class TestVideoReader:
    def test_cold_read_charges_decode_and_caches(self, reader_video):
        cost = CostModel()
        reader = VideoReader(reader_video, cost_model=cost)
        pixels = reader.read(7)
        np.testing.assert_array_equal(pixels, reader_video.pixels(7))
        assert reader.cold_reads == 1 and reader.cache_hits == 0
        assert cost.units("decode") == 1

        again = reader.read(7)
        np.testing.assert_array_equal(again, pixels)
        assert reader.cold_reads == 1 and reader.cache_hits == 1
        assert cost.units("decode") == 1  # hit: no new charge
        assert reader.hit_rate == pytest.approx(0.5)

    def test_read_batch_shapes(self, reader_video):
        reader = VideoReader(reader_video)
        batch = reader.read_batch([1, 5, 9])
        assert batch.shape == (3,) + reader_video.resolution
        assert batch.dtype == np.float32
        empty = reader.read_batch([])
        assert empty.shape == (0,) + reader_video.resolution

    def test_lru_eviction(self, reader_video):
        reader = VideoReader(reader_video, cache_size=2)
        reader.read(0)
        reader.read(1)
        reader.read(2)  # evicts 0
        assert reader.cold_reads == 3
        reader.read(1)  # still cached
        assert reader.cache_hits == 1
        reader.read(0)  # was evicted: cold again
        assert reader.cold_reads == 4

    def test_priority_prefetch_warms_the_cache(self, reader_video):
        cost = CostModel()
        reader = VideoReader(reader_video, cost_model=cost)
        reader.set_priority_order([4, 8, 15, 16])
        fetched = reader.prefetch(3)
        assert fetched == 3
        assert cost.units("decode") == 3
        # Reads along the declared order are all hits now.
        reader.read(4)
        reader.read(8)
        reader.read(15)
        assert reader.cache_hits == 3
        assert cost.units("decode") == 3  # charged once, at prefetch

    def test_prefetch_skips_already_cached_frames(self, reader_video):
        reader = VideoReader(reader_video)
        reader.read(4)
        reader.set_priority_order([4, 8])
        # Frame 4 is cached: prefetch(1) walks past it and decodes 8.
        assert reader.prefetch(1) == 1
        assert reader.read(8) is not None
        assert reader.cache_hits == 1

    def test_prefetch_stops_at_the_end_of_the_order(self, reader_video):
        reader = VideoReader(reader_video)
        reader.set_priority_order([1, 2])
        assert reader.prefetch(10) == 2
        assert reader.prefetch(10) == 0  # order exhausted

    def test_len_and_validation(self, reader_video):
        assert len(VideoReader(reader_video)) == len(reader_video)
        with pytest.raises(ConfigurationError):
            VideoReader(reader_video, cache_size=0)

    def test_hit_rate_empty(self, reader_video):
        assert VideoReader(reader_video).hit_rate == 0.0

    def test_custom_decode_cost_key(self, reader_video):
        cost = CostModel({"warm_decode": 0.5})
        reader = VideoReader(
            reader_video, cost_model=cost, decode_cost_key="warm_decode")
        reader.read(3)
        assert cost.seconds("warm_decode") == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Visual Road suite

class TestVisualRoad:
    def test_suite_matches_paper_densities(self):
        suite = visual_road_suite(num_frames=300)
        assert [v.name for v in suite] == [
            f"visual-road-{cars}" for cars in PAPER_DENSITIES]
        assert all(len(v) == 300 for v in suite)

    def test_density_scales_mean_visible_count(self):
        sparse = visual_road_video(50, num_frames=2_000)
        dense = visual_road_video(250, num_frames=2_000)
        assert dense.counts.mean() > 2 * sparse.counts.mean()

    def test_same_scene_across_the_sweep(self):
        a = visual_road_video(50, num_frames=200, scene_seed=7)
        b = visual_road_video(250, num_frames=200, scene_seed=7)
        # The camera/scene seed is shared (same trajectory stream for
        # the common object slots); only the population — and hence the
        # count process — differs.
        assert a.seed == b.seed
        np.testing.assert_array_equal(a._speed_x[:4], b._speed_x[:4])
        assert not np.array_equal(a.counts, b.counts)

    def test_videos_are_deterministic(self):
        a = visual_road_video(100, num_frames=150)
        b = visual_road_video(100, num_frames=150)
        np.testing.assert_array_equal(a.counts, b.counts)
        np.testing.assert_array_equal(a.pixels(42), b.pixels(42))

    def test_concatenated_count_process_reseeds_per_clip(self):
        concat = _ConcatenatedCountProcess(
            400, num_clips=4, seed=3, max_objects=8)
        single = _ConcatenatedCountProcess(
            400, num_clips=1, seed=3, max_objects=8)
        assert len(concat.counts) == len(single.counts) == 400
        # Clip re-seeding changes the realization beyond clip 0.
        assert not np.array_equal(concat.counts[100:], single.counts[100:])
        assert concat.counts.max() <= 8

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            visual_road_video(0)
        with pytest.raises(ConfigurationError):
            _ConcatenatedCountProcess(
                100, num_clips=0, seed=1, max_objects=4)

    def test_truth_matches_counts(self):
        video = visual_road_video(100, num_frames=120)
        assert video.signal_key == "count"
        np.testing.assert_array_equal(
            video.truth_array(), video.counts.astype(np.float64))
