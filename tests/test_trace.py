"""The tracing subsystem (DESIGN.md §12): purity, completeness, export.

The load-bearing contract: tracing is *observation only*. Reports must
stay byte-identical and ledgers charge-for-charge identical with
tracing on vs off, on both execution lanes, for streaming appends and
corpus queries. On top of that: every submitted query yields a closed
root span whatever path it died on, worker spans adopt cleanly across
the process boundary, and the exporters produce loadable output.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import QueryService
from repro.config import EverestConfig
from repro.corpus import VideoCorpus
from repro.errors import AdmissionError
from repro.gateway.metrics import LatencySummary, parse_metrics_text
from repro.oracle import ScoringFunction, counting_udf
from repro.trace import (
    NULL_TRACER,
    JsonlTraceLog,
    Tracer,
    activate,
    active_span,
    add_event,
    chrome_trace,
    read_jsonl,
    span,
)
from repro.video import TrafficVideo

FAST = EverestConfig.fast


def _video(seed: int = 11, frames: int = 300) -> TrafficVideo:
    return TrafficVideo(f"trace-{seed}", frames, seed=seed)


def _ledger_fingerprint(cost) -> dict:
    """Charge-for-charge ledger identity: every key's units + seconds."""
    return {
        key: (cost.units(key), seconds)
        for key, seconds in sorted(cost.breakdown().items())
    }


def _run_service(tracer, *, use_processes: bool, seed: int = 11):
    """The mixed mini-workload both purity tests compare."""
    with QueryService(
            workers=2, use_processes=use_processes, tracer=tracer) as svc:
        session = svc.open_session(
            _video(seed), counting_udf("car"), config=FAST())
        futures = [
            svc.submit(
                session.query().topk(k).guarantee(0.9)
                .deterministic_timing(),
                tenant=f"t{k % 2}")
            for k in (3, 5, 7)
        ]
        reports = svc.gather(futures, timeout=120)
        outcomes = sorted(svc.outcomes(), key=lambda o: o.seq)
    return (
        [report.to_json() for report in reports],
        [_ledger_fingerprint(o.phase2_cost) for o in outcomes],
    )


# ----------------------------------------------------------------------
# Purity: tracing never changes bytes or ledger floats.
# ----------------------------------------------------------------------
def test_tracing_is_pure_inline_lane():
    base_reports, base_ledgers = _run_service(
        NULL_TRACER, use_processes=False)
    traced_reports, traced_ledgers = _run_service(
        Tracer(), use_processes=False)
    assert traced_reports == base_reports
    assert traced_ledgers == base_ledgers


def test_tracing_is_pure_process_lane():
    base_reports, base_ledgers = _run_service(
        NULL_TRACER, use_processes=True, seed=12)
    traced_reports, traced_ledgers = _run_service(
        Tracer(), use_processes=True, seed=12)
    assert traced_reports == base_reports
    assert traced_ledgers == base_ledgers


def _run_stream(tracer, seed: int = 13):
    video = _video(seed, frames=420)
    with QueryService(
            workers=1, use_processes=False, tracer=tracer) as svc:
        stream = svc.open_stream(
            video, counting_udf("car"), initial_frames=240, config=FAST())
        live = (stream.query().topk(5).guarantee(0.9)
                .deterministic_timing().subscribe())
        snapshots = []
        for _ in range(3):
            result = stream.append(60)
            snapshots.append(
                (result.watermark, result.fresh_oracle_calls,
                 live.latest.to_json()))
    return snapshots


def test_tracing_is_pure_streaming_appends():
    assert _run_stream(Tracer()) == _run_stream(NULL_TRACER)


def _run_corpus(tracer, seed: int = 14):
    videos = [_video(seed + i, frames=240) for i in range(2)]
    corpus = VideoCorpus.open(videos, counting_udf("car"), config=FAST())
    with QueryService(
            workers=1, use_processes=False, tracer=tracer) as svc:
        future = svc.submit(
            corpus.query().topk(4).guarantee(0.9).deterministic_timing(),
            tenant="fleet")
        return future.result(120).to_json()


def test_tracing_is_pure_corpus_query():
    assert _run_corpus(Tracer()) == _run_corpus(NULL_TRACER)


# ----------------------------------------------------------------------
# Structure: span tree shape, adoption, coverage.
# ----------------------------------------------------------------------
def test_trace_tree_has_the_request_spine():
    tracer = Tracer()
    with QueryService(workers=1, use_processes=False,
                      tracer=tracer) as svc:
        session = svc.open_session(
            _video(15), counting_udf("car"), config=FAST())
        future = svc.submit(
            session.query().topk(5).guarantee(0.9).deterministic_timing())
        future.result(120)
    trace = tracer.get(future.trace_id)
    assert trace is not None and trace.finished
    dump = trace.to_dict()
    root = dump["spans"][0]
    assert root["parent_id"] is None and root["status"] == "ok"
    children = [s for s in dump["spans"]
                if s["parent_id"] == root["span_id"]]
    names = [s["name"] for s in children]
    assert names[:3] == ["admission", "queue_wait", "execute"]
    all_names = {s["name"] for s in dump["spans"]}
    assert {"phase1", "clean_loop", "iteration"} <= all_names
    # Every span closed, none out of range of its parent by seconds.
    by_id = {s["span_id"]: s for s in dump["spans"]}
    for record in dump["spans"]:
        assert record["duration"] >= 0.0
        if record["parent_id"] is not None:
            parent = by_id[record["parent_id"]]
            assert record["start"] >= parent["start"] - 1e-6
    # Root children cover the root wall time (the ISSUE's >= 95% bar).
    coverage = sum(s["duration"] for s in children) / root["duration"]
    assert coverage >= 0.95
    # Optimizer calibration attrs landed on the root.
    assert "actual_phase2_seconds" in root["attrs"]


def test_worker_spans_adopt_across_the_process_lane():
    tracer = Tracer()
    with QueryService(workers=2, use_processes=True,
                      tracer=tracer) as svc:
        session = svc.open_session(
            _video(16), counting_udf("car"), config=FAST())
        future = svc.submit(
            session.query().topk(5).guarantee(0.9).deterministic_timing())
        future.result(180)
    dump = tracer.get(future.trace_id).to_dict()
    lane = [s for s in dump["spans"] if s["name"] == "lane_dispatch"]
    assert len(lane) == 1 and lane[0]["attrs"]["lane"] == "process"
    worker = [s for s in dump["spans"]
              if s["attrs"].get("process") == "worker"]
    assert worker, "worker spans must ship back and re-parent"
    ids = {s["span_id"] for s in dump["spans"]}
    assert len(ids) == len(dump["spans"]), "adopted ids must be re-issued"
    roots = [s for s in worker if s["name"] == "worker_execute"]
    assert roots and roots[0]["parent_id"] == lane[0]["span_id"]
    # Rebased onto the parent clock: inside the lane span's window.
    assert roots[0]["start"] >= lane[0]["start"] - 1e-6


def test_adopt_rebases_foreign_clocks():
    tracer = Tracer()
    trace = tracer.begin("parent")
    parent = trace.start_span("lane", category="service")
    time.sleep(0.01)
    # A foreign dump whose times are relative to an unrelated origin.
    dumps = [
        {"span_id": 7, "parent_id": None, "name": "w-root",
         "category": "request", "start": 0.0, "duration": 0.5,
         "sim_seconds": 1.5, "status": "ok", "attrs": {}, "events": []},
        {"span_id": 9, "parent_id": 7, "name": "w-child",
         "category": "phase2", "start": 0.1, "duration": 0.2,
         "sim_seconds": 0.0, "status": "ok", "attrs": {}, "events": []},
    ]
    adopted = trace.adopt(dumps, parent=parent)
    parent.finish()
    tracer.finish(trace)
    assert len(adopted) == 2
    root, child = adopted
    assert root.parent_id == parent.span_id
    assert child.parent_id == root.span_id
    assert root.span_id != 7 and child.span_id != 9
    assert root.attrs["process"] == "worker"
    assert root.start >= parent.start
    assert abs((child.start - root.start) - 0.1) < 1e-9
    assert root.sim_seconds == 1.5


# ----------------------------------------------------------------------
# Completeness: every submission ends in a closed root span.
# ----------------------------------------------------------------------
def test_admission_refusal_closes_the_trace():
    tracer = Tracer()
    with QueryService(workers=1, use_processes=False, max_pending=1,
                      tracer=tracer) as svc:
        session = svc.open_session(
            _video(17), counting_udf("car"), config=FAST())
        query = (session.query().topk(3).guarantee(0.9)
                 .deterministic_timing())
        futures, refused = [], 0
        for _ in range(12):
            try:
                futures.append(svc.submit(query))
            except AdmissionError:
                refused += 1
        assert refused > 0, "burst past max_pending=1 must refuse"
        svc.gather(futures, timeout=180)
    traces = tracer.traces()
    assert len(traces) == 12
    statuses = [t.root.status for t in traces]
    assert statuses.count("error:AdmissionError") == refused
    for trace in traces:
        assert trace.finished
        assert all(not s.open for s in trace.spans)


def test_failing_query_closes_the_trace_with_error():
    def boom(frames):
        raise RuntimeError("scoring exploded")

    tracer = Tracer()
    with QueryService(workers=1, use_processes=False,
                      tracer=tracer) as svc:
        session = svc.open_session(
            _video(18),
            ScoringFunction(name="boom", score_frames=boom,
                            cost_key="oracle_infer"),
            config=FAST())
        future = svc.submit(
            session.query().topk(3).guarantee(0.9).deterministic_timing())
        with pytest.raises(Exception):
            future.result(120)
    trace = tracer.get(future.trace_id)
    assert trace is not None and trace.finished
    assert trace.root.status.startswith("error:")
    assert all(not s.open for s in trace.spans)


# ----------------------------------------------------------------------
# Core span machinery.
# ----------------------------------------------------------------------
def test_span_context_nests_and_records_errors():
    tracer = Tracer()
    with tracer.trace("unit") as trace:
        with span("outer", category="code", layer=1) as outer:
            add_event("ping", value=3)
            with pytest.raises(ValueError):
                with span("inner"):
                    raise ValueError("nope")
        assert outer.attrs["layer"] == 1
    dump = trace.to_dict()
    names = {s["name"]: s for s in dump["spans"]}
    assert names["inner"]["parent_id"] == names["outer"]["span_id"]
    assert names["inner"]["status"] == "error:ValueError"
    assert names["outer"]["status"] == "ok"
    assert names["outer"]["events"][0]["name"] == "ping"
    assert names["outer"]["events"][0]["attrs"] == {"value": 3}


def test_module_span_is_noop_without_an_active_trace():
    assert active_span() is None
    context = span("orphan")
    with context as nothing:
        assert nothing is None
        assert active_span() is None
        add_event("dropped")  # must not raise
    # The shared no-op context is reused (zero allocation steady-state).
    assert span("again") is span("later")


def test_activate_tolerates_none_and_restores():
    with activate(None):
        assert active_span() is None
    tracer = Tracer()
    trace = tracer.begin("manual")
    child = trace.start_span("step", category="code")
    with activate(child):
        assert active_span() is child
    assert active_span() is None
    tracer.finish(trace)
    assert trace.root.status == "ok"
    assert child.status == "unclosed"  # force-closed by finish()


def test_trace_close_open_matches_by_name():
    tracer = Tracer()
    trace = tracer.begin("queued")
    trace.start_span("queue_wait", category="scheduler")
    closed = trace.close_open("queue_wait", picked_by="worker-3")
    assert closed is not None and not closed.open
    assert closed.attrs["picked_by"] == "worker-3"
    assert trace.close_open("queue_wait") is None  # nothing open now
    tracer.finish(trace)


def test_ledger_deltas_are_snapshots_not_charges():
    from repro.oracle import CostModel

    ledger = CostModel()
    tracer = Tracer()
    with tracer.trace("ledger") as trace:
        with span("charged", ledger=ledger):
            ledger.charge("oracle_confirm", 4.0)
        with span("idle", ledger=ledger):
            pass
    spans = {s.name: s for s in trace.spans}
    assert spans["charged"].sim_seconds == pytest.approx(
        ledger.total_seconds())
    assert spans["idle"].sim_seconds == 0.0


def test_tracer_ring_and_summaries():
    tracer = Tracer(ring=2)
    ids = []
    for index in range(3):
        with tracer.trace(f"r{index}") as trace:
            pass
        ids.append(trace.trace_id)
    kept = [t.trace_id for t in tracer.traces()]
    assert kept == ids[1:], "ring must evict the oldest"
    assert tracer.get(ids[0]) is None
    summaries = tracer.summaries(limit=1)
    assert summaries[0]["trace_id"] == ids[-1]
    assert tracer.completed == 3


def test_from_env_disabled_returns_null_tracer(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert Tracer.from_env() is NULL_TRACER
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert Tracer.from_env() is NULL_TRACER
    monkeypatch.setenv("REPRO_TRACE", "1")
    enabled = Tracer.from_env()
    assert isinstance(enabled, Tracer) and enabled.enabled


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------
def test_chrome_export_is_loadable_and_nested():
    tracer = Tracer()
    with tracer.trace("chrome") as trace:
        with span("parent", category="code"):
            add_event("mark", hit=True)
            with span("child", category="code"):
                pass
    document = tracer.chrome()
    parsed = json.loads(json.dumps(document))
    assert parsed["displayTimeUnit"] == "ms"
    events = parsed["traceEvents"]
    assert events[0]["ph"] == "M"
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert {"chrome", "parent", "child"} <= set(complete)
    child, parent = complete["child"], complete["parent"]
    assert child["ts"] >= parent["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1
    assert any(e["ph"] == "i" and e["name"] == "mark" for e in events)
    assert trace.trace_id in events[0]["args"]["name"]


def test_jsonl_log_rotates_and_reads_back(tmp_path):
    path = tmp_path / "trace.jsonl"
    log = JsonlTraceLog(path, max_bytes=512, backups=2)
    for index in range(64):
        log.write({"type": "span", "index": index})
    files = log.files()
    assert files[0] == str(path) and len(files) > 1
    assert os.path.getsize(path) <= 512
    records = read_jsonl(files)
    indices = [r["index"] for r in records]
    assert indices == sorted(indices), "oldest-first read order"
    assert indices[-1] == 63


def test_tracer_writes_spans_and_summary_to_jsonl(tmp_path):
    path = tmp_path / "svc.jsonl"
    tracer = Tracer(jsonl_path=path)
    with tracer.trace("logged"):
        with span("work"):
            pass
    records = read_jsonl([str(path)])
    kinds = [r["type"] for r in records]
    assert kinds == ["span", "span", "trace"]
    assert records[-1]["name"] == "logged"
    rebuilt = chrome_trace([{
        "trace_id": records[-1]["trace_id"],
        "name": records[-1]["name"],
        "spans": [r for r in records if r["type"] == "span"],
    }])
    assert len(rebuilt["traceEvents"]) == 3


def test_profile_attr_captured_when_enabled():
    tracer = Tracer(profile=True)
    with tracer.trace("profiled"):
        with span("hot") as hot:
            sum(i * i for i in range(20_000))
    assert "profile" in hot.attrs
    assert "cumulative" in hot.attrs["profile"]


# ----------------------------------------------------------------------
# Service + gateway surfaces.
# ----------------------------------------------------------------------
def test_service_stats_embed_recent_traces():
    tracer = Tracer()
    with QueryService(workers=1, use_processes=False,
                      tracer=tracer) as svc:
        session = svc.open_session(
            _video(19), counting_udf("car"), config=FAST())
        svc.submit(
            session.query().topk(3).guarantee(0.9)
            .deterministic_timing()).result(120)
        stats = svc.stats()
    assert len(stats.recent_traces) == 1
    summary = stats.recent_traces[0]
    assert summary["status"] == "ok" and summary["spans"] > 3


def _gateway(tracer, **config_kwargs):
    from repro.gateway import Gateway, GatewayConfig

    service = QueryService(workers=1, use_processes=False, tracer=tracer)
    return Gateway(
        service=service,
        config=GatewayConfig(
            video_kwargs={"num_frames": 240, "seed": 31},
            **config_kwargs),
    )


def test_gateway_serves_traces_and_slow_query_counter():
    gateway = _gateway(Tracer(), slow_query_seconds=0.0)
    try:
        status, body = gateway.handle("POST", "/query", {
            "tenant": "acme", "spec": "count[car]/traffic", "k": 3})
        assert status == 202
        result_id = body["id"]
        deadline = time.time() + 120
        while time.time() < deadline:
            status, result = gateway.handle(
                "GET", f"/result/{result_id}")
            if result["status"] != "pending":
                break
            time.sleep(0.05)
        assert result["status"] == "done"
        assert result["trace_id"].startswith("t")
        assert result["trace"]["status"] == "ok"
        assert result["trace"]["spans"] > 3

        status, dump = gateway.handle("GET", f"/trace/{result_id}")
        assert status == 200
        assert dump["trace_id"] == result["trace_id"]
        assert dump["spans"][0]["name"] == "query"
        # The raw trace id resolves too.
        status, again = gateway.handle(
            "GET", f"/trace/{result['trace_id']}")
        assert status == 200 and again["trace_id"] == dump["trace_id"]
        status, _ = gateway.handle("GET", "/trace/t99999999")
        assert status == 404
        status, _ = gateway.handle("POST", f"/trace/{result_id}")
        assert status == 405

        status, text = gateway.handle("GET", "/metrics")
        assert status == 200
        samples = parse_metrics_text(text)
        slow = samples[("everest_gateway_slow_queries_total",
                        (("tenant", "acme"),))]
        assert slow == 1.0  # threshold 0: every completion counts
    finally:
        gateway.close()


def test_gateway_without_tracing_404s_trace_route():
    gateway = _gateway(NULL_TRACER)
    try:
        status, body = gateway.handle("POST", "/query", {
            "tenant": "acme", "spec": "count[car]/traffic", "k": 3})
        assert status == 202
        result_id = body["id"]
        deadline = time.time() + 120
        while time.time() < deadline:
            status, result = gateway.handle(
                "GET", f"/result/{result_id}")
            if result["status"] != "pending":
                break
            time.sleep(0.05)
        assert result["status"] == "done"
        assert "trace_id" not in result and "trace" not in result
        status, _ = gateway.handle("GET", f"/trace/{result_id}")
        assert status == 404
    finally:
        gateway.close()


# ----------------------------------------------------------------------
# LatencySummary ring regression (the satellite bug fix).
# ----------------------------------------------------------------------
def test_latency_summary_ring_overwrites_oldest():
    summary = LatencySummary(max_samples=4)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        summary.observe(value)
    assert summary.count == 6
    # The ring holds exactly the last four samples: 5.0 landed in slot
    # 0 and 6.0 in slot 1 (the old code skipped slot 0 forever, so 1.0
    # would still be present and the window would go stale).
    assert sorted(summary.samples()) == [3.0, 4.0, 5.0, 6.0]
    quantiles = summary.quantiles()
    assert quantiles[0.5] == pytest.approx(4.0, abs=1.01)
    assert max(quantiles.values()) == 6.0


def test_latency_summary_rejects_empty_window():
    with pytest.raises(Exception):
        LatencySummary(max_samples=0)


def test_latency_summary_full_lap_matches_exact_window():
    summary = LatencySummary(max_samples=8)
    values = [float(v) for v in range(1, 28)]
    for value in values:
        summary.observe(value)
    assert sorted(summary.samples()) == values[-8:]
