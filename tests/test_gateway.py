"""Gateway unit and integration tests (DESIGN.md §10).

Covers the components with injectable fake clocks (token buckets,
result TTLs, latency metrics), the transport-free :class:`Gateway`
request flows — including byte-identity of wire-served reports against
direct inline execution, for both session and corpus specs — and the
asyncio HTTP server end to end over real sockets.
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request

import pytest

from repro.api.registry import resolve_query_spec
from repro.config import EverestConfig
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    GatewayError,
    QuotaExceededError,
    ResultExpiredError,
    ServiceError,
)
from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayMetrics,
    GatewayServer,
    QuotaBook,
    QuotaPolicy,
    ResultStore,
    parse_metrics_text,
)
from repro.gateway.wire import AppendRequest, QueryRequest, StreamRequest

VIDEO_KWARGS = {"num_frames": 500, "seed": 5}


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

class TestErrors:
    def test_quota_error_is_both_gateway_and_admission(self):
        error = QuotaExceededError(
            "too fast", reason="rate", tenant="a", retry_after=0.5)
        assert isinstance(error, AdmissionError)
        assert isinstance(error, GatewayError)
        assert isinstance(error, ServiceError)
        assert (error.reason, error.tenant, error.retry_after) == \
            ("rate", "a", 0.5)

    def test_result_expired_is_a_keyerror_with_clean_str(self):
        error = ResultExpiredError("q01")
        assert isinstance(error, KeyError)
        assert "q01" in str(error)
        assert "\\" not in str(error)  # not KeyError's repr-quoting

    def test_admission_error_defaults(self):
        error = AdmissionError("queue full")
        assert error.reason == "max_pending"
        assert error.tenant is None
        assert error.retry_after is None


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------

class TestQuotas:
    def test_token_bucket_rate_and_burst(self):
        clock = FakeClock()
        book = QuotaBook(
            default=QuotaPolicy(rate=1.0, burst=2), clock=clock)
        book.admit_query("a")
        book.admit_query("a")  # burst of 2
        with pytest.raises(QuotaExceededError) as excinfo:
            book.admit_query("a")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)  # one token refilled
        book.admit_query("a")
        with pytest.raises(QuotaExceededError):
            book.admit_query("a")

    def test_tenants_are_independent(self):
        clock = FakeClock()
        book = QuotaBook(
            default=QuotaPolicy(rate=1.0, burst=1), clock=clock)
        book.admit_query("a")
        book.admit_query("b")  # b's bucket is full regardless of a's
        with pytest.raises(QuotaExceededError):
            book.admit_query("a")

    def test_max_inflight_and_release(self):
        book = QuotaBook(
            default=QuotaPolicy(max_inflight=2), clock=FakeClock())
        book.admit_query("a")
        book.admit_query("a")
        with pytest.raises(QuotaExceededError) as excinfo:
            book.admit_query("a")
        assert excinfo.value.reason == "max_inflight"
        book.release("a")
        book.admit_query("a")
        assert book.inflight("a") == 2

    def test_append_bucket_defaults_to_query_bucket_values(self):
        clock = FakeClock()
        book = QuotaBook(
            default=QuotaPolicy(rate=2.0, burst=1), clock=clock)
        book.admit_append("a")
        with pytest.raises(QuotaExceededError) as excinfo:
            book.admit_append("a")
        assert excinfo.value.retry_after == pytest.approx(0.5)
        # Appends and queries draw from separate buckets.
        book.admit_query("a")

    def test_overrides_and_unlimited_default(self):
        book = QuotaBook(
            overrides={"tight": QuotaPolicy(max_inflight=1)},
            clock=FakeClock())
        for _ in range(50):
            book.admit_query("anyone")  # unlimited default
        book.admit_query("tight")
        with pytest.raises(QuotaExceededError):
            book.admit_query("tight")

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            QuotaPolicy(rate=0.0)
        with pytest.raises(ConfigurationError):
            QuotaPolicy(burst=0)
        with pytest.raises(ConfigurationError):
            QuotaPolicy(max_inflight=0)
        with pytest.raises(ConfigurationError):
            QuotaPolicy(append_rate=-1.0)


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------

class TestResultStore:
    def _report(self):
        session = resolve_query_spec(
            "count[car]/traffic", config=EverestConfig.fast(),
            num_frames=300, seed=3)
        return session.query().topk(3).deterministic_timing().run()

    def test_lifecycle_pending_done_expired(self):
        clock = FakeClock()
        store = ResultStore(ttl=10.0, clock=clock)
        store.put_pending("q1", "a", "count[car]/traffic")
        assert store.get("q1").status == "pending"
        report = self._report()
        clock.advance(2.0)
        store.complete("q1", report)
        entry = store.get("q1")
        assert entry.status == "done"
        assert entry.latency_seconds == pytest.approx(2.0)
        assert entry.report_json == report.to_json()
        body = entry.body()
        assert body["report_json"] == report.to_json()
        clock.advance(10.1)  # TTL from completion
        with pytest.raises(ResultExpiredError):
            store.get("q1")
        with pytest.raises(KeyError):
            store.get("never-existed")

    def test_pending_entries_do_not_expire(self):
        clock = FakeClock()
        store = ResultStore(ttl=1.0, clock=clock)
        store.put_pending("q1", "a", "s")
        clock.advance(100.0)  # slow query, still running
        assert store.get("q1").status == "pending"

    def test_failed_entries_carry_the_error(self):
        store = ResultStore(clock=FakeClock())
        store.put_pending("q1", "a", "s")
        store.fail("q1", ConfigurationError("bad k"))
        body = store.get("q1").body()
        assert body["status"] == "failed"
        assert body["error"] == "ConfigurationError"
        assert body["message"] == "bad k"

    def test_capacity_evicts_oldest_finished_first(self):
        clock = FakeClock()
        store = ResultStore(ttl=1e9, max_entries=2, clock=clock)
        report = self._report()
        store.put_pending("q1", "a", "s")
        store.complete("q1", report)
        clock.advance(1.0)
        store.put_pending("q2", "a", "s")
        store.complete("q2", report)
        clock.advance(1.0)
        store.put_pending("q3", "a", "s")  # over capacity: q1 evicted
        with pytest.raises(ResultExpiredError):
            store.get("q1")
        assert store.get("q2").status == "done"
        assert store.get("q3").status == "pending"

    def test_duplicate_ids_are_refused(self):
        store = ResultStore(clock=FakeClock())
        store.put_pending("q1", "a", "s")
        with pytest.raises(GatewayError):
            store.put_pending("q1", "b", "s")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResultStore(ttl=0)
        with pytest.raises(ConfigurationError):
            ResultStore(max_entries=0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_render_parse_round_trip(self):
        metrics = GatewayMetrics()
        metrics.count_submitted("a")
        metrics.count_submitted("a")
        metrics.count_completed("a")
        metrics.count_rejected("b", "rate")
        metrics.count_append("a", 30)
        metrics.observe_latency("query", 0.5)
        metrics.observe_latency("query", 1.5)
        samples = parse_metrics_text(metrics.render())
        assert samples[("everest_gateway_queries_submitted_total",
                        (("tenant", "a"),))] == 2
        assert samples[("everest_gateway_queries_rejected_total",
                        (("tenant", "b"), ("reason", "rate")))] == 1
        assert samples[("everest_gateway_append_frames_total",
                        (("tenant", "a"),))] == 30
        assert samples[("everest_gateway_latency_seconds_count",
                        (("op", "query"),))] == 2
        assert samples[("everest_gateway_latency_seconds",
                        (("op", "query"), ("quantile", "0.5")))] == 0.5

    def test_quantiles_nearest_rank(self):
        metrics = GatewayMetrics()
        for value in range(1, 101):
            metrics.observe_latency("op", float(value))
        quantiles = metrics.latency_quantiles("op")
        assert quantiles[0.5] == 50.0
        assert quantiles[0.95] == 95.0
        assert quantiles[0.99] == 99.0

    def test_empty_summary_renders_nan(self):
        metrics = GatewayMetrics()
        assert metrics.latency_quantiles("absent") == {}
        text = metrics.render()
        assert parse_metrics_text(text) is not None  # parses clean

    def test_label_escaping_round_trips(self):
        metrics = GatewayMetrics()
        nasty = 'te"na\nt'
        metrics.count_submitted(nasty)
        samples = parse_metrics_text(metrics.render())
        assert samples[("everest_gateway_queries_submitted_total",
                        (("tenant", nasty),))] == 1

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_metrics_text("metric{unclosed 1")
        with pytest.raises(ValueError):
            parse_metrics_text("lonelyname")


# ----------------------------------------------------------------------
# Wire validation
# ----------------------------------------------------------------------

class TestWire:
    def test_query_request_defaults_and_canonicalization(self):
        request = QueryRequest.from_body(
            {"spec": "count[car]@{traffic, dashcam}"})
        assert request.tenant == "default"
        assert request.k == 50
        assert request.guarantee == 0.9
        assert request.spec_string == "count[car]@{traffic,dashcam}"
        assert request.spec.kind == "corpus"

    @pytest.mark.parametrize("body", [
        None,
        [],
        {},
        {"spec": 7},
        {"spec": "garbage"},
        {"spec": "count[car]/traffic", "k": 0},
        {"spec": "count[car]/traffic", "k": True},
        {"spec": "count[car]/traffic", "guarantee": 1.5},
        {"spec": "count[car]/traffic", "window_step": 2.0},
        {"spec": "count[car]/traffic", "surprise": 1},
        {"spec": "count[car]/traffic", "tenant": ""},
        {"spec": "count[car]/traffic", "tenant": 'a"b'},
        {"spec": "count[car]@{a,b}", "window": 5},
    ])
    def test_query_request_rejects_malformed_bodies(self, body):
        with pytest.raises(ConfigurationError):
            QueryRequest.from_body(body)

    def test_stream_and_append_requests(self):
        stream = StreamRequest.from_body({
            "stream": "s1", "spec": "count[car]/traffic",
            "initial_frames": 100, "k": 5, "tenant": "bob"})
        assert stream.stream_id == "s1"
        assert stream.initial_frames == 100
        append = AppendRequest.from_body(
            {"stream": "s1", "frames": 30})
        assert (append.stream_id, append.frames) == ("s1", 30)
        with pytest.raises(ConfigurationError):
            StreamRequest.from_body({
                "stream": "s1", "spec": "count[car]@{a,b}",
                "initial_frames": 100})
        with pytest.raises(ConfigurationError):
            AppendRequest.from_body({"stream": "s1"})


# ----------------------------------------------------------------------
# Gateway core (in-process, one service shared per module)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def gateway():
    config = GatewayConfig(
        video_kwargs=dict(VIDEO_KWARGS),
        tenant_quotas={
            "limited": QuotaPolicy(max_inflight=1),
        },
    )
    with Gateway(config=config, workers=2, use_processes=False) as gw:
        yield gw


def _poll(gateway, result_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = gateway.handle("GET", f"/result/{result_id}")
        assert status == 200
        if body["status"] != "pending":
            return body
        time.sleep(0.02)
    raise AssertionError(f"result {result_id} never finished")


class TestGatewayFlows:
    def test_query_roundtrip_is_byte_identical(self, gateway):
        status, body = gateway.handle("POST", "/query", {
            "tenant": "alice", "spec": "count[car]/traffic",
            "k": 4, "guarantee": 0.9})
        assert status == 202
        done = _poll(gateway, body["id"])
        assert done["status"] == "done"
        reference = resolve_query_spec(
            "count[car]/traffic", config=EverestConfig.fast(),
            **VIDEO_KWARGS)
        expected = reference.query().topk(4).guarantee(0.9) \
            .deterministic_timing().run().to_json()
        assert done["report_json"] == expected

    def test_corpus_query_over_the_wire(self, gateway):
        status, body = gateway.handle("POST", "/query", {
            "tenant": "alice", "spec": "count[car]@{traffic, dashcam}",
            "k": 3})
        assert status == 202
        assert body["spec"] == "count[car]@{traffic,dashcam}"
        done = _poll(gateway, body["id"])
        assert done["status"] == "done"
        reference = resolve_query_spec(
            "count[car]@{traffic,dashcam}",
            config=EverestConfig.fast(), **VIDEO_KWARGS)
        expected = reference.query().topk(3).guarantee(0.9) \
            .deterministic_timing().run().to_json()
        assert done["report_json"] == expected

    def test_window_clause_flows_through(self, gateway):
        status, body = gateway.handle("POST", "/query", {
            "spec": "count[car]/traffic", "k": 3, "window": 20})
        assert status == 202
        assert _poll(gateway, body["id"])["status"] == "done"

    def test_malformed_body_is_400_with_no_side_effects(self, gateway):
        before = gateway.service.stats().submitted
        status, body = gateway.handle("POST", "/query",
                                      {"spec": "garbage"})
        assert status == 400
        assert body["error"] == "ConfigurationError"
        assert gateway.service.stats().submitted == before

    def test_unknown_result_404_and_routes(self, gateway):
        assert gateway.handle("GET", "/result/qnope")[0] == 404
        assert gateway.handle("GET", "/nope")[0] == 404
        assert gateway.handle("PUT", "/query", {})[0] == 405
        status, body = gateway.handle("GET", "/healthz")
        assert status == 200 and body["ok"] is True

    def test_max_inflight_429_and_release_on_completion(self, gateway):
        status, body = gateway.handle("POST", "/query", {
            "tenant": "limited", "spec": "count[car]/traffic", "k": 3})
        assert status == 202
        status2, body2 = gateway.handle("POST", "/query", {
            "tenant": "limited", "spec": "count[car]/traffic", "k": 5})
        assert status2 == 429
        assert body2["reason"] == "max_inflight"
        _poll(gateway, body["id"])  # completion releases the slot
        status3, _body3 = gateway.handle("POST", "/query", {
            "tenant": "limited", "spec": "count[car]/traffic", "k": 5})
        assert status3 == 202
        # Both ledgers saw the refusal.
        stats = gateway.service.stats()
        assert stats.rejections["limited"]["max_inflight"] >= 1
        samples = parse_metrics_text(gateway.metrics.render())
        assert samples[("everest_gateway_queries_rejected_total",
                        (("tenant", "limited"),
                         ("reason", "max_inflight")))] >= 1

    def test_stream_open_append_and_duplicate(self, gateway):
        status, body = gateway.handle("POST", "/stream", {
            "tenant": "bob", "stream": "flow-a",
            "spec": "count[car]/traffic", "initial_frames": 240,
            "k": 3})
        assert status == 201
        assert body["watermark"] == 240
        assert json.loads(body["report_json"])  # live answer included
        status, body = gateway.handle("POST", "/append", {
            "tenant": "bob", "stream": "flow-a", "frames": 40})
        assert status == 200
        assert body["applied"] is True
        assert body["watermark"] == 280
        assert len(body["reports"]) == 1
        assert json.loads(body["reports"][0])
        status, body = gateway.handle("POST", "/stream", {
            "tenant": "bob", "stream": "flow-a",
            "spec": "count[car]/traffic", "initial_frames": 240})
        assert status == 409
        status, _ = gateway.handle("POST", "/append", {
            "stream": "missing", "frames": 10})
        assert status == 404

    def test_metrics_and_stats_endpoints(self, gateway):
        status, text = gateway.handle("GET", "/metrics")
        assert status == 200
        samples = parse_metrics_text(text)
        depth = samples[("everest_service_queue_depth", ())]
        assert depth >= 0
        hit_rate = samples[("everest_service_phase1_hit_rate", ())]
        assert 0.0 <= hit_rate <= 1.0 or math.isnan(hit_rate)
        status, stats = gateway.handle("GET", "/stats")
        assert status == 200
        assert stats["workers"] == 2
        assert isinstance(stats["rejections"], dict)

    def test_stats_to_json_round_trips(self, gateway):
        stats = gateway.service.stats()
        decoded = json.loads(stats.to_json())
        assert decoded["submitted"] == stats.submitted
        assert decoded["rejections"] == stats.rejections
        assert decoded["phase1_hit_rate"] == stats.phase1_hit_rate
        # Mapping-style compatibility for pre-dataclass callers.
        assert stats["submitted"] == stats.submitted
        assert "builds" in stats
        assert stats.get("nonsense", 42) == 42


def test_gateway_owns_or_wraps_service():
    with pytest.raises(ConfigurationError):
        from repro.service import QueryService

        service = QueryService(workers=1, use_processes=False)
        try:
            Gateway(service, workers=3)
        finally:
            service.close()


# ----------------------------------------------------------------------
# HTTP server end to end
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def server(gateway):
    with GatewayServer(gateway) as srv:
        yield srv


def _http(server, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        server.address + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            raw = response.read()
            content_type = response.headers.get("Content-Type", "")
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        content_type = error.headers.get("Content-Type", "")
        status = error.code
    if "application/json" in content_type:
        return status, json.loads(raw)
    return status, raw.decode()


class TestHTTPServer:
    def test_query_over_sockets_byte_identical(self, gateway, server):
        status, body = _http(server, "POST", "/query", {
            "tenant": "carol", "spec": "count[car]/traffic", "k": 6})
        assert status == 202
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, result = _http(
                server, "GET", f"/result/{body['id']}")
            if result["status"] != "pending":
                break
            time.sleep(0.05)
        assert result["status"] == "done"
        reference = resolve_query_spec(
            "count[car]/traffic", config=EverestConfig.fast(),
            **VIDEO_KWARGS)
        expected = reference.query().topk(6).guarantee(0.9) \
            .deterministic_timing().run().to_json()
        assert result["report_json"] == expected

    def test_http_error_statuses(self, server):
        assert _http(server, "POST", "/query",
                     {"spec": "garbage"})[0] == 400
        assert _http(server, "GET", "/result/qnope")[0] == 404
        assert _http(server, "PUT", "/query", {})[0] == 405
        status, body = _http(server, "GET", "/healthz")
        assert status == 200 and body["ok"] is True

    def test_metrics_exposition_over_http(self, server):
        status, text = _http(server, "GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert parse_metrics_text(text)

    def test_oversized_body_is_413(self, gateway, server):
        import socket

        # Declare a body over the limit; the server must refuse from
        # the Content-Length alone, before reading a single body byte.
        oversize = gateway.config.max_body_bytes + 1
        head = (f"POST /query HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {oversize}\r\n\r\n").encode()
        with socket.create_connection(
                (server.host, server.port), timeout=30) as sock:
            sock.sendall(head)
            response = sock.recv(65536)
        assert response.split(b"\r\n")[0] == \
            b"HTTP/1.1 413 Payload Too Large"

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.address + "/query", data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_keep_alive_serves_multiple_requests(self, server):
        from http.client import HTTPConnection

        conn = HTTPConnection(server.host, server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Load generator (plans, transports, reconciliation)
# ----------------------------------------------------------------------

class TestLoadgen:
    def test_zipf_pmf_is_a_decreasing_distribution(self):
        from repro.gateway.loadgen import zipf_pmf

        pmf = zipf_pmf(50, 1.1)
        assert pmf.shape == (50,)
        assert abs(pmf.sum() - 1.0) < 1e-12
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)

    def test_build_plan_is_deterministic_and_sorted(self):
        from repro.gateway.loadgen import LoadSpec, build_plan

        spec = LoadSpec(
            specs=("count[car]/traffic", "count[car]/dashcam"),
            num_tenants=30, num_queries=40, duration=1.0,
            streams=(("s0", "count[car]/traffic", 240),),
            appends_per_stream=3, seed=4)
        one, two = build_plan(spec), build_plan(spec)
        assert one == two
        assert len(one) == 40 + 3
        offsets = [op.time_offset for op in one]
        assert offsets == sorted(offsets)
        assert {op.kind for op in one} == {"query", "append"}
        assert all(op.tenant.startswith("t") for op in one)

    def test_tiny_open_loop_run_reconciles_over_http(self):
        """A fresh gateway, a tiny plan, exact /metrics agreement."""
        from repro.gateway.loadgen import (
            HTTPTransport,
            InProcessTransport,
            LoadSpec,
            build_plan,
            reconcile,
            run_plan,
        )

        spec = LoadSpec(
            specs=("count[car]/traffic",),
            num_tenants=20, num_queries=6, duration=0.3,
            streams=(("lg-s0", "count[car]/traffic", 240),),
            appends_per_stream=2, append_frames=20, seed=11)
        plan = build_plan(spec)
        gateway = Gateway(
            config=GatewayConfig(video_kwargs=dict(VIDEO_KWARGS)),
            workers=2, use_processes=False)
        with gateway, GatewayServer(gateway) as fresh_server:
            inproc = InProcessTransport(gateway)
            status, _ = inproc.request("POST", "/stream", {
                "tenant": "t00000", "stream": "lg-s0",
                "spec": "count[car]/traffic",
                "initial_frames": 240, "k": 3})
            assert status == 201

            transport = HTTPTransport(
                fresh_server.host, fresh_server.port, pool_size=4)
            report = run_plan(transport, plan, guns=2,
                              poll_timeout=120.0)
            status, metrics_text = transport.request("GET", "/metrics")
            transport.close()

        assert status == 200
        assert report.fired_ops == report.plan_ops == len(plan)
        assert report.unresolved == 0
        assert report.total(report.failed) == 0
        assert report.appends_errored == 0
        problems = reconcile(report, metrics_text)
        assert not problems, "\n".join(problems)
        # Frame-exact watermark accounting: zero dropped appends.
        applied = report.appends_applied.get("t00000", 0)
        assert report.watermarks.get("lg-s0", 240) == 240 + 20 * applied
        # Every served report is byte-identical to inline execution.
        references = {}
        for result_id, served in report.reports.items():
            _tenant, spec_string, k, guarantee = \
                report.accepted[result_id]
            key = (spec_string, k, guarantee)
            if key not in references:
                references[key] = resolve_query_spec(
                    spec_string, config=EverestConfig.fast(),
                    **VIDEO_KWARGS).query().topk(k) \
                    .guarantee(guarantee).deterministic_timing() \
                    .run().to_json()
            assert served == references[key]
