"""Integration tests: the Phase 2 cleaning loop and the full engine."""

import numpy as np
import pytest

from repro.config import EverestConfig, Phase2Config
from repro.core import EverestEngine, TopKCleaner
from repro.core.cleaner import Phase2Result
from repro.errors import (
    GuaranteeUnreachableError,
    OracleBudgetExceededError,
    QueryError,
)
from repro.metrics import evaluate_answer
from repro.oracle import counting_udf
from repro.oracle.base import exact_scores

from conftest import make_relation


def make_clean_fn(true_scores):
    calls = []

    def clean_fn(ids):
        calls.append(list(ids))
        return np.asarray([true_scores[i] for i in ids], dtype=float)

    clean_fn.calls = calls
    return clean_fn


class TestCleanerUnit:
    def test_reaches_threshold(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 4, size=20).astype(float)
        pmfs = []
        for score in true:
            pmf = np.full(5, 0.05)
            pmf[int(score)] += 0.8
            pmfs.append(pmf / pmf.sum())
        relation = make_relation(pmfs)
        # Seed certainty on a few tuples (Phase 1 labels).
        for position in (0, 1, 2):
            relation.mark_certain(position, true[position])
        cleaner = TopKCleaner(
            relation, make_clean_fn(true), Phase2Config(batch_size=2))
        result = cleaner.run(k=3, thres=0.9)
        assert result.confidence >= 0.9
        assert len(result.answer_ids) == 3

    def test_answer_is_exact_under_high_threshold(self):
        rng = np.random.default_rng(1)
        true = rng.integers(0, 6, size=30).astype(float)
        pmfs = []
        for score in true:
            pmf = np.full(7, 0.02)
            pmf[int(score)] += 0.5
            # Adversarial: also place mass on a wrong level.
            pmf[(int(score) + 3) % 7] += 0.36
            pmfs.append(pmf / pmf.sum())
        relation = make_relation(pmfs)
        for position in range(3):
            relation.mark_certain(position, true[position])
        cleaner = TopKCleaner(
            relation, make_clean_fn(true), Phase2Config(batch_size=1))
        result = cleaner.run(k=3, thres=0.99)
        kth = np.sort(true)[::-1][2]
        assert all(true[i] >= kth for i in result.answer_ids), \
            "a 0.99-confidence answer on exact-proxy data must be exact"

    def test_certain_result_condition(self):
        """Every returned frame has an oracle-confirmed score."""
        rng = np.random.default_rng(2)
        true = rng.integers(0, 4, size=15).astype(float)
        pmfs = [np.ones(5) / 5 for _ in true]
        relation = make_relation(pmfs)
        relation.mark_certain(0, true[0])
        relation.mark_certain(1, true[1])
        cleaner = TopKCleaner(relation, make_clean_fn(true), Phase2Config())
        result = cleaner.run(k=2, thres=0.8)
        for frame, score in zip(result.answer_ids, result.answer_scores):
            position = relation.position(frame)
            assert relation.certain[position]
            assert score == true[frame]

    def test_bootstrap_when_too_few_certain(self):
        true = np.array([3.0, 1.0, 2.0, 0.0, 4.0])
        pmfs = [np.ones(5) / 5 for _ in true]
        relation = make_relation(pmfs)  # nothing certain
        cleaner = TopKCleaner(relation, make_clean_fn(true), Phase2Config())
        result = cleaner.run(k=2, thres=0.5)
        assert result.confidence >= 0.5
        assert relation.num_certain >= 2

    def test_relation_smaller_than_k(self):
        relation = make_relation([[0.5, 0.5]])
        cleaner = TopKCleaner(
            relation, make_clean_fn({0: 1.0}), Phase2Config())
        with pytest.raises(GuaranteeUnreachableError):
            cleaner.run(k=5, thres=0.5)

    def test_invalid_parameters(self, tiny_relation):
        cleaner = TopKCleaner(
            tiny_relation, make_clean_fn({}), Phase2Config())
        with pytest.raises(QueryError):
            cleaner.run(k=0, thres=0.5)
        with pytest.raises(QueryError):
            cleaner.run(k=1, thres=1.5)

    def test_fully_cleaned_relation_confidence_one(self):
        true = np.array([2.0, 0.0, 1.0])
        pmfs = [np.ones(3) / 3 for _ in true]
        relation = make_relation(pmfs)
        cleaner = TopKCleaner(relation, make_clean_fn(true), Phase2Config())
        result = cleaner.run(k=1, thres=1.0)
        assert result.confidence == 1.0
        assert result.answer_ids == [0]

    def test_confidence_trace_recorded(self):
        rng = np.random.default_rng(3)
        true = rng.integers(0, 4, size=12).astype(float)
        pmfs = [np.ones(5) / 5 for _ in true]
        relation = make_relation(pmfs)
        relation.mark_certain(0, true[0])
        relation.mark_certain(1, true[1])
        cleaner = TopKCleaner(relation, make_clean_fn(true), Phase2Config())
        result = cleaner.run(k=2, thres=0.9)
        assert len(result.confidence_trace) == result.iterations + 1
        assert result.confidence_trace[-1] >= 0.9


class TestEngineEndToEnd:
    @pytest.fixture(scope="class")
    def engine(self, traffic_video, fast_config):
        return EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)

    def test_meets_probabilistic_guarantee(self, engine):
        report = engine.topk(k=5, thres=0.9)
        assert report.confidence >= 0.9
        assert len(report.answer_ids) == 5

    def test_answer_scores_are_exact(self, engine, traffic_video):
        report = engine.topk(k=5, thres=0.9)
        for frame, score in zip(report.answer_ids, report.answer_scores):
            assert score == traffic_video.true_count(frame)

    def test_high_precision(self, engine, traffic_video):
        report = engine.topk(k=10, thres=0.9)
        truth = traffic_video.counts.astype(float)
        metrics = evaluate_answer(report.answer_ids, truth, 10)
        assert metrics.precision >= 0.9

    def test_speedup_positive_and_cost_accounted(self, engine):
        report = engine.topk(k=5, thres=0.9)
        assert report.simulated_seconds > 0
        assert report.scan_seconds > report.simulated_seconds * 0.5
        assert report.breakdown.phase1_seconds > 0
        assert report.breakdown.confirm_oracle >= 0

    def test_cleans_only_a_fraction(self, engine):
        report = engine.topk(k=5, thres=0.9)
        assert report.cleaned_fraction < 0.5

    def test_phase1_cached_across_queries(self, engine):
        first = engine.topk(k=5, thres=0.9)
        second = engine.topk(k=10, thres=0.9)
        assert first.breakdown.label_sample == pytest.approx(
            second.breakdown.label_sample)

    def test_lower_threshold_not_more_work(self, engine):
        strict = engine.topk(k=5, thres=0.95)
        loose = engine.topk(k=5, thres=0.5)
        assert loose.cleaned <= strict.cleaned

    def test_oracle_budget_enforced(self, traffic_video, fast_config):
        from dataclasses import replace
        config = replace(
            fast_config, phase2=Phase2Config(oracle_budget=3))
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=config)
        with pytest.raises(OracleBudgetExceededError):
            engine.topk(k=20, thres=0.99)

    def test_summary_renders(self, engine):
        report = engine.topk(k=5, thres=0.9)
        text = report.summary()
        assert "Top-5" in text and "speedup" in text

    def test_tailgating_udf_end_to_end(self, dashcam_video, fast_config):
        from repro.oracle import tailgating_udf
        scoring = tailgating_udf()
        engine = EverestEngine(dashcam_video, scoring, config=fast_config)
        report = engine.topk(k=5, thres=0.9)
        truth = exact_scores(scoring, dashcam_video)
        metrics = evaluate_answer(report.answer_ids, truth, 5)
        assert report.confidence >= 0.9
        assert metrics.precision >= 0.6

    def test_sentiment_udf_end_to_end(self, sentiment_video, fast_config):
        from repro.oracle import sentiment_udf
        scoring = sentiment_udf()
        engine = EverestEngine(sentiment_video, scoring, config=fast_config)
        report = engine.topk(k=5, thres=0.9)
        assert report.confidence >= 0.9
