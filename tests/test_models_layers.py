"""Numerical-gradient and shape tests for the numpy layer zoo.

Every layer's analytic backward pass is validated against central
finite differences — the canonical correctness test for a from-scratch
deep-learning substrate.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    MDNHead,
    ReLU,
    SGD,
)

EPS = 1e-5


def numerical_gradient(fn, array, eps=EPS):
    """Central-difference gradient of scalar ``fn`` wrt ``array``."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x, seed=0):
    """Validate input and parameter gradients via finite differences."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x, training=True)
    upstream = rng.normal(size=out.shape)

    def loss():
        return float(np.sum(layer.forward(x, training=False) * upstream))

    layer.zero_grads()
    layer.forward(x, training=True)
    grad_x = layer.backward(upstream)

    num_grad_x = numerical_gradient(loss, x)
    assert np.allclose(grad_x, num_grad_x, atol=1e-4), "input gradient"

    for name, param in layer.params.items():
        num_grad = numerical_gradient(loss, param)
        assert np.allclose(layer.grads[name], num_grad, atol=1e-4), \
            f"parameter gradient {name}"


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=1)
        out = layer.forward(np.ones((2, 4)))
        assert out.shape == (2, 3)

    def test_gradients(self):
        rng = np.random.default_rng(0)
        check_layer_gradients(Dense(5, 3, seed=1), rng.normal(size=(4, 5)))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            Dense(4, 3).forward(np.ones((2, 5)))


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]

    def test_gradients(self):
        rng = np.random.default_rng(1)
        # Keep activations away from the kink for finite differences.
        x = rng.normal(size=(4, 6))
        x[np.abs(x) < 0.05] = 0.2
        check_layer_gradients(ReLU(), x)


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape


class TestConv2D:
    def test_same_padding_shape(self):
        layer = Conv2D(1, 4, 3, seed=1)
        out = layer.forward(np.ones((2, 1, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_gradients(self):
        rng = np.random.default_rng(2)
        check_layer_gradients(
            Conv2D(2, 3, 3, seed=3), rng.normal(size=(2, 2, 5, 5)))

    def test_known_kernel(self):
        """A 1x1 identity kernel must reproduce the input."""
        layer = Conv2D(1, 1, 1, pad=0, seed=0)
        layer.params["W"][...] = 1.0
        layer.params["b"][...] = 0.0
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        out = layer.forward(x)
        assert np.allclose(out, x)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            Conv2D(1, 4).forward(np.ones((2, 3, 8, 8)))


class TestMaxPool2D:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert out[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_gradients(self):
        rng = np.random.default_rng(3)
        # Distinct values avoid ties in argmax for finite differences.
        x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8) / 10.0
        check_layer_gradients(MaxPool2D(2), x)

    def test_ragged_edge_truncated(self):
        x = np.ones((1, 1, 5, 5))
        out = MaxPool2D(2).forward(x)
        assert out.shape == (1, 1, 2, 2)


class TestMDNHead:
    def test_mixture_shapes_and_validity(self):
        head = MDNHead(6, 3, seed=1)
        raw = head.forward(np.random.default_rng(0).normal(size=(5, 6)))
        mix = head.mixture(raw)
        assert mix.pi.shape == (5, 3)
        assert np.allclose(mix.pi.sum(axis=1), 1.0)
        assert (mix.sigma > 0).all()

    def test_gradients(self):
        rng = np.random.default_rng(4)
        head = MDNHead(4, 2, seed=2)
        x = rng.normal(size=(6, 4))
        y = rng.normal(size=6)

        def loss():
            raw = head.forward(x, training=False)
            return head.nll(raw, y)

        head.zero_grads()
        head.forward(x, training=True)
        _, grad_x = head.loss_and_backward(y)
        num_grad_x = numerical_gradient(loss, x)
        assert np.allclose(grad_x, num_grad_x, atol=1e-4)
        for name, param in head.params.items():
            num_grad = numerical_gradient(loss, param)
            assert np.allclose(head.grads[name], num_grad, atol=1e-4), name

    def test_nll_decreases_under_sgd(self):
        rng = np.random.default_rng(5)
        head = MDNHead(3, 2, seed=3)
        x = rng.normal(size=(64, 3))
        y = x @ np.array([1.0, -0.5, 0.2])

        class _Model:
            layers = []
            head_ref = head

            @property
            def parameters(self):
                for name, value in head.params.items():
                    yield head, name, value

        model = _Model()
        optimizer = SGD(0.05)
        losses = []
        for _ in range(60):
            head.zero_grads()
            head.forward(x, training=True)
            loss, _ = head.loss_and_backward(y)
            losses.append(loss)
            optimizer.step(model)
        assert losses[-1] < losses[0] - 0.3


class TestOptimizers:
    def _quadratic_model(self):
        layer = Dense(1, 1, seed=0)
        layer.params["W"][...] = 5.0
        layer.params["b"][...] = 0.0

        class _Model:
            @property
            def parameters(self):
                for name, value in layer.params.items():
                    yield layer, name, value

        return layer, _Model()

    def _minimize(self, optimizer, steps=200):
        layer, model = self._quadratic_model()
        for _ in range(steps):
            # d(w^2)/dw = 2w on the weight; ignore bias.
            layer.grads["W"][...] = 2.0 * layer.params["W"]
            layer.grads["b"][...] = 0.0
            optimizer.step(model)
        return float(layer.params["W"][0, 0])

    def test_sgd_converges(self):
        assert abs(self._minimize(SGD(0.1))) < 1e-3

    def test_sgd_momentum_converges(self):
        assert abs(self._minimize(SGD(0.05, momentum=0.9))) < 1e-2

    def test_adam_converges(self):
        assert abs(self._minimize(Adam(0.3))) < 1e-2

    def test_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SGD(-1.0)
        with pytest.raises(ConfigurationError):
            Adam(1e-3, beta1=1.0)
