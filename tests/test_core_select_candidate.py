"""Tests for Select-candidate (Equations 4-8).

The closed-form expected confidence is validated against a brute-force
"simulate the cleaning" reference, and the Equation 7 upper bound and
its early-stopping behaviour are checked directly.
"""

import numpy as np
import pytest

from repro.config import SelectCandidateConfig
from repro.core.reference import expected_confidence_bruteforce
from repro.core.select_candidate import CandidateSelector
from repro.core.topk_prob import ConfidenceState

from conftest import make_relation


def build_case(rng, num_tuples=6, levels=4, certain_scores=(3.0, 2.0)):
    """Random relation with the first tuples cleaned as the answer."""
    pmfs = [rng.dirichlet(np.ones(levels)) for _ in range(num_tuples)]
    relation = make_relation(pmfs)
    for position, score in enumerate(certain_scores):
        relation.mark_certain(position, score)
    state = ConfidenceState(relation)
    selector = CandidateSelector(relation, state)
    return relation, state, selector


class TestExpectedConfidence:
    def test_matches_bruteforce_k2(self):
        rng = np.random.default_rng(3)
        for trial in range(8):
            relation, state, selector = build_case(rng)
            k_level = 2  # K-th certain score is 2.0
            p_level = 3  # penultimate is 3.0
            uncertain = relation.uncertain_positions()
            expected = selector.expected_confidences(
                uncertain, k_level, p_level)
            for i, position in enumerate(uncertain):
                brute = expected_confidence_bruteforce(
                    relation, int(position), k=2)
                assert expected[i] == pytest.approx(brute, abs=1e-10), \
                    f"trial {trial} position {position}"

    def test_matches_bruteforce_k1(self):
        """K=1: no penultimate frame; S_p is the grid maximum."""
        rng = np.random.default_rng(5)
        for trial in range(5):
            pmfs = [rng.dirichlet(np.ones(4)) for _ in range(5)]
            relation = make_relation(pmfs)
            relation.mark_certain(0, 2.0)
            state = ConfidenceState(relation)
            selector = CandidateSelector(relation, state)
            uncertain = relation.uncertain_positions()
            expected = selector.expected_confidences(
                uncertain, k_level=2, p_level=relation.grid.max_level)
            for i, position in enumerate(uncertain):
                brute = expected_confidence_bruteforce(
                    relation, int(position), k=1)
                assert expected[i] == pytest.approx(brute, abs=1e-10), \
                    f"trial {trial}"

    def test_expected_at_least_current_confidence(self):
        rng = np.random.default_rng(9)
        relation, state, selector = build_case(rng)
        p_hat = state.topk_prob(2)
        uncertain = relation.uncertain_positions()
        expected = selector.expected_confidences(uncertain, 2, 3)
        assert (expected >= p_hat - 1e-12).all(), \
            "cleaning can never reduce the expected confidence"


class TestUpperBound:
    def test_bound_dominates_expectation(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            relation, state, selector = build_case(rng)
            k_level, p_level = 2, 3
            uncertain = relation.uncertain_positions()
            expected = selector.expected_confidences(
                uncertain, k_level, p_level)
            p_hat = state.topk_prob(k_level)
            gamma = state.joint_cdf(p_level)
            psi = selector.psi(uncertain, k_level, p_level)
            bound = p_hat + gamma * psi
            assert (bound >= expected - 1e-9).all()

    def test_stale_psi_dominates_fresh_psi(self):
        """psi only shrinks as S_k / S_p grow (Equation 8)."""
        rng = np.random.default_rng(17)
        relation, state, selector = build_case(rng)
        uncertain = relation.uncertain_positions()
        stale = selector.psi(uncertain, 1, 2)
        fresh = selector.psi(uncertain, 2, 3)
        assert (stale >= fresh - 1e-12).all()


class TestSelection:
    def test_selects_argmax(self):
        rng = np.random.default_rng(21)
        relation, state, selector = build_case(rng, num_tuples=8)
        uncertain = relation.uncertain_positions()
        expected = selector.expected_confidences(uncertain, 2, 3)
        best = selector.select(0, 2, 3, batch_size=1)
        assert best.size == 1
        assert expected[list(uncertain).index(best[0])] == pytest.approx(
            expected.max())

    def test_batch_selects_top_b(self):
        rng = np.random.default_rng(23)
        relation, state, selector = build_case(rng, num_tuples=10)
        uncertain = relation.uncertain_positions()
        expected = selector.expected_confidences(uncertain, 2, 3)
        batch = selector.select(0, 2, 3, batch_size=3)
        top3 = set(uncertain[np.argsort(-expected)[:3]].tolist())
        assert set(batch.tolist()) == top3

    def test_exhaustive_matches_early_stopped(self):
        rng = np.random.default_rng(29)
        for trial in range(5):
            pmfs = [rng.dirichlet(np.ones(4)) for _ in range(30)]
            relation_a = make_relation(pmfs)
            relation_b = make_relation(pmfs)
            for rel in (relation_a, relation_b):
                rel.mark_certain(0, 3.0)
                rel.mark_certain(1, 2.0)
            fast = CandidateSelector(
                relation_a, ConfidenceState(relation_a),
                SelectCandidateConfig(use_upper_bound=True))
            slow = CandidateSelector(
                relation_b, ConfidenceState(relation_b),
                SelectCandidateConfig(use_upper_bound=False))
            picked_fast = fast.select(0, 2, 3, batch_size=2)
            picked_slow = slow.select(0, 2, 3, batch_size=2)
            exp_fast = fast.expected_confidences(picked_fast, 2, 3)
            exp_slow = slow.expected_confidences(picked_slow, 2, 3)
            # Equal expectation (ties may swap identities).
            assert np.allclose(
                np.sort(exp_fast), np.sort(exp_slow), atol=1e-12), \
                f"trial {trial}"

    def test_skips_cleaned_tuples(self):
        rng = np.random.default_rng(31)
        relation, state, selector = build_case(rng, num_tuples=6)
        first = selector.select(0, 2, 3, batch_size=1)
        state.remove(int(first[0]))
        relation.mark_certain(int(first[0]), 0.0)
        second = selector.select(1, 2, 3, batch_size=1)
        assert second[0] != first[0]

    def test_empty_when_all_certain(self):
        relation = make_relation(
            [[1.0, 0.0], [0.0, 1.0]], certain={0: 0.0, 1: 1.0})
        state = ConfidenceState(relation)
        selector = CandidateSelector(relation, state)
        assert selector.select(0, 1, 1, batch_size=4).size == 0

    def test_stats_track_examination(self):
        rng = np.random.default_rng(37)
        relation, state, selector = build_case(rng, num_tuples=20)
        selector.select(0, 2, 3, batch_size=1)
        assert selector.stats.calls == 1
        assert selector.stats.frames_examined >= 1
        assert selector.stats.frames_available == 18

    def test_resort_schedule(self):
        rng = np.random.default_rng(41)
        relation, state, selector = build_case(rng, num_tuples=12)
        config = selector.config
        selector.select(0, 2, 3, batch_size=1)
        assert selector.stats.resorts == 1
        # Within the warmup, iterations below resort_every reuse the
        # stale order.
        selector.select(1, 2, 3, batch_size=1)
        assert selector.stats.resorts == 1
        selector.select(config.resort_every, 2, 3, batch_size=1)
        assert selector.stats.resorts == 2
        # After the warmup, unchanged levels never trigger a resort...
        selector.select(config.resort_warmup + 1, 2, 3, batch_size=1)
        assert selector.stats.resorts == 2
        # ...but a change of S_k / S_p does.
        selector.select(config.resort_warmup + 2, 3, 3, batch_size=1)
        assert selector.stats.resorts == 3
