"""Failure injection for the federated corpus engine.

Mirrors the ``test_parallel_cost_ledger.py`` discipline: failures must
be *deterministic* (same type, same payload, same canonical position
regardless of shard-worker count or lane) and must leave the ledgers
consistent (a failed allocation charges nothing, so a retry never
double-counts).

* A shard's oracle tripping its per-shard budget mid-allocation fails
  the corpus query with :class:`~repro.errors.ShardBudgetExceededError`
  naming the shard — checked in canonical member order *before* any
  charge from the offending batch lands.
* A global budget trips with the exact error (type and budget) the
  plain concatenated execution raises.
* A crashed process-lane shard worker re-raises in canonical member
  order: when several shards fail in one batch, the parent surfaces
  the lowest-indexed member's error, whichever future finished first.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import EverestConfig, Session, VideoCorpus
from repro.config import Phase1Config
from repro.corpus.federated import (
    FederatedOracle,
    InlineShardBackend,
    PoolShardBackend,
)
from repro.errors import (
    OracleBudgetExceededError,
    ShardBudgetExceededError,
)
from repro.oracle import CostModel, counting_udf
from repro.parallel.pool import PersistentPool, available_cpus
from repro.video import TrafficVideo

FAST = EverestConfig(
    phase1=Phase1Config(
        sample_fraction=0.05,
        min_train_samples=96,
        holdout_samples=48,
        cmdn_grid=((3, 12),),
        epochs=15,
    ),
)


class ExplodingVideo(TrafficVideo):
    """A member whose oracle reads always crash (picklable)."""

    def frame(self, index):
        raise RuntimeError(f"shard {self.name} exploded")


@pytest.fixture(scope="module")
def udf():
    return counting_udf("car")


@pytest.fixture(scope="module")
def corpus(udf):
    videos = [
        TrafficVideo(f"fail-cam{i}", 300, seed=60 + i) for i in range(3)
    ]
    built = VideoCorpus.open(videos, udf, config=FAST)
    built.prepare()
    return built


def make_oracle(udf, videos, *, backend=None, budget=None,
                shard_budgets=None, caches=None):
    """A standalone federated oracle over plain member videos."""
    lengths = [len(v) for v in videos]
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    return FederatedOracle(
        udf,
        CostModel(wall_clock=False),
        videos=videos,
        member_names=[v.name for v in videos],
        offsets=offsets,
        backend=backend if backend is not None
        else InlineShardBackend(videos, udf),
        shard_costs=[CostModel(wall_clock=False) for _ in videos],
        caches=caches if caches is not None else [None] * len(videos),
        budget=budget,
        shard_budgets=shard_budgets,
    )


# ----------------------------------------------------------------------
# Per-shard budgets: deterministic error, no charge from a failed batch.


@pytest.mark.parametrize("shard_workers", [1, 2])
def test_shard_budget_error_is_deterministic(corpus, shard_workers):
    query = (
        corpus.query().topk(3).guarantee(0.999)
        .shard_budget("fail-cam2", 4).deterministic_timing()
    )
    with pytest.raises(ShardBudgetExceededError) as excinfo:
        query.run_detailed(shard_workers=shard_workers)
    assert excinfo.value.budget == 4
    assert excinfo.value.member == "fail-cam2"
    assert "fail-cam2" in str(excinfo.value)


def test_shard_budget_precheck_charges_nothing(udf):
    videos = [TrafficVideo(f"pre-{i}", 120, seed=70 + i) for i in range(2)]
    oracle = make_oracle(udf, videos, shard_budgets=[None, 3])

    # A healthy batch charges normally.
    first = oracle.score(None, [0, 1, 120, 121])
    assert first.shape == (4,)
    assert oracle.calls == 4
    assert oracle.cost_model.units("oracle_confirm") == 4
    assert oracle.shard_calls == [2, 2]

    # This batch would put shard 1 over its cap: it must fail before
    # *any* ledger (global or shard) or counter moves — including the
    # earlier, in-budget shard's.
    with pytest.raises(ShardBudgetExceededError) as excinfo:
        oracle.score(None, [2, 122, 123])
    assert excinfo.value.member == "pre-1"
    assert oracle.calls == 4
    assert oracle.cost_model.units("oracle_confirm") == 4
    assert oracle.shard_calls == [2, 2]
    for cost in oracle.shard_costs:
        assert cost.units("oracle_confirm") == 2
        assert cost.units("decode") == 2

    # The failure is retryable: a conforming batch still succeeds and
    # the ledgers resume from exactly where they stopped.
    again = oracle.score(None, [2, 122])
    assert again.shape == (2,)
    assert oracle.cost_model.units("oracle_confirm") == 6
    assert oracle.shard_calls == [3, 3]


def test_global_budget_matches_concatenated_reference(corpus, udf):
    """The federated global budget trips exactly like the plain run."""
    from repro.api.executor import QueryExecutor

    query = (corpus.query().topk(3).guarantee(0.999)
             .oracle_budget(6).deterministic_timing())
    state = corpus.merged_state()
    from repro.video.views import ConcatVideo

    reference_session = Session(
        ConcatVideo([m.video for m in corpus.members], name=corpus.name),
        udf, config=FAST)
    reference_session.adopt_phase1(state.entry, FAST)
    with pytest.raises(OracleBudgetExceededError) as reference:
        QueryExecutor(reference_session).execute_detailed(query.plan())
    with pytest.raises(OracleBudgetExceededError) as federated:
        query.run_detailed()
    assert federated.value.budget == reference.value.budget == 6
    assert type(federated.value) is type(reference.value)


def test_shard_budget_error_pickles_intact():
    error = ShardBudgetExceededError(7, "cam-x")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, ShardBudgetExceededError)
    assert isinstance(clone, OracleBudgetExceededError)
    assert (clone.budget, clone.member) == (7, "cam-x")
    assert "cam-x" in str(clone)


# ----------------------------------------------------------------------
# Construction-time validation: malformed corpora fail eagerly.


class TestCorpusValidation:
    def test_empty_corpus_rejected(self):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            VideoCorpus([])

    def test_mismatched_udfs_rejected(self, udf):
        from repro.errors import CorpusError
        from repro.oracle.sentiment import sentiment_udf

        a = Session(TrafficVideo("val-a", 60, seed=1), udf, config=FAST)
        b = Session(
            TrafficVideo("val-b", 60, seed=2), sentiment_udf(),
            config=FAST)
        with pytest.raises(CorpusError):
            VideoCorpus([a, b])

    def test_duplicate_member_names_rejected(self, udf):
        from repro.errors import CorpusError

        video = TrafficVideo("val-dup", 60, seed=3)
        sessions = [
            Session(video, udf, config=FAST),
            Session(TrafficVideo("val-dup", 60, seed=4), udf,
                    config=FAST),
        ]
        with pytest.raises(CorpusError):
            VideoCorpus(sessions)

    def test_bad_split_boundaries_rejected(self, udf):
        from repro.errors import CorpusError

        session = Session(
            TrafficVideo("val-split", 100, seed=5), udf, config=FAST)
        for bad in ([0], [100], [60, 30], [30, 30]):
            with pytest.raises(CorpusError):
                VideoCorpus.from_split(session, bad)

    def test_locate_and_shard_arithmetic(self, corpus):
        from repro.errors import FrameIndexError

        assert corpus.total_frames == 900
        assert list(corpus.offsets()) == [0, 300, 600]
        assert corpus.locate(0) == (0, 0)
        assert corpus.locate(299) == (0, 299)
        assert corpus.locate(300) == (1, 0)
        assert corpus.member_of(899) == ("fail-cam2", 299)
        with pytest.raises(FrameIndexError):
            corpus.locate(900)
        with pytest.raises(FrameIndexError):
            corpus.locate(-1)

    def test_scan_seconds_covers_the_fleet(self, corpus):
        costs = corpus.resolved_unit_costs()
        per_frame = costs["oracle_infer"] + costs["decode"]
        assert corpus.scan_seconds() == pytest.approx(900 * per_frame)

    def test_shard_budget_clauses_validate(self, corpus):
        from repro.errors import CorpusError

        with pytest.raises(CorpusError):
            corpus.query().shard_budget("nonexistent", 5)
        with pytest.raises(ValueError):
            corpus.query().shard_budget("fail-cam0", 0)
        with pytest.raises(ValueError):
            corpus.query().with_config("not-a-config")


# ----------------------------------------------------------------------
# Process-lane shard workers: canonical-order error surfacing.


def test_pool_lane_reraises_in_canonical_shard_order(udf):
    videos = [
        TrafficVideo("pool-ok", 100, seed=80),
        ExplodingVideo("pool-boom-a", 100, seed=81),
        ExplodingVideo("pool-boom-b", 100, seed=82),
    ]
    with PersistentPool(workers=min(2, available_cpus())) as pool:
        backend = PoolShardBackend(pool, videos, udf)
        oracle = make_oracle(udf, videos, backend=backend)
        # One batch spanning all three shards: both exploding members
        # fail in their workers; the parent must surface the *first*
        # member's error (canonical order), not whichever future
        # happened to finish first.
        with pytest.raises(RuntimeError) as excinfo:
            oracle.score(None, [5, 105, 205])
        assert "pool-boom-a" in str(excinfo.value)

        # The healthy shard scores through the pool bit-identically to
        # an inline backend.
        pooled = oracle.score(None, [5, 6, 7])
        inline = make_oracle(udf, videos).score(None, [5, 6, 7])
        np.testing.assert_array_equal(pooled, inline)


def test_pooled_prepare_reraises_in_canonical_member_order(udf):
    videos = [
        ExplodingVideo("prep-boom-a", 80, seed=90),
        ExplodingVideo("prep-boom-b", 80, seed=91),
    ]
    corpus = VideoCorpus.open(videos, udf, config=FAST)
    with pytest.raises(RuntimeError) as excinfo:
        corpus.prepare(workers=2)
    assert "prep-boom-a" in str(excinfo.value)


def test_inline_lane_reraises_in_canonical_shard_order(udf):
    videos = [
        ExplodingVideo("inline-boom-a", 100, seed=83),
        ExplodingVideo("inline-boom-b", 100, seed=84),
    ]
    for workers in (1, 2):
        oracle = make_oracle(
            udf, videos,
            backend=InlineShardBackend(videos, udf, workers=workers))
        with pytest.raises(RuntimeError) as excinfo:
            oracle.score(None, [150, 50])
        assert "inline-boom-a" in str(excinfo.value), f"workers={workers}"
