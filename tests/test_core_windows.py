"""Tests for Top-K tumbling windows (paper Section 3.4, Equation 9)."""

import numpy as np
import pytest

from repro.config import EverestConfig
from repro.core import EverestEngine
from repro.core.windows import (
    WindowCleaner,
    build_window_relation,
    num_windows,
    window_bounds,
    window_truth,
)
from repro.errors import ConfigurationError, QueryError
from repro.metrics import evaluate_answer
from repro.models import GaussianMixture
from repro.oracle import CostModel, Oracle, counting_udf
from repro.video.diff import DiffResult


def identity_diff(num_frames):
    """A diff result that retained every frame."""
    return DiffResult(
        retained=np.arange(num_frames),
        representative=np.arange(num_frames),
        num_frames=num_frames,
    )


class TestWindowHelpers:
    def test_num_windows_ragged(self):
        assert num_windows(100, 30) == 4
        assert num_windows(90, 30) == 3
        with pytest.raises(ConfigurationError):
            num_windows(10, 0)

    def test_window_bounds(self):
        assert window_bounds(0, 30, 100) == (0, 30)
        assert window_bounds(3, 30, 100) == (90, 100)

    def test_window_truth_averages(self):
        truth = np.arange(10.0)
        scores = window_truth(truth, 5)
        assert scores.tolist() == [2.0, 7.0]

    def test_window_truth_ragged(self):
        truth = np.array([1.0, 2.0, 3.0])
        scores = window_truth(truth, 2)
        assert scores.tolist() == [1.5, 3.0]


class TestEquation9:
    def test_moment_aggregation_all_retained(self):
        """With every frame retained, Eq. 9's window mean must equal
        the average of frame mixture means and the variance the
        1/L-weighted sum of frame variances."""
        n = 6
        mu = np.arange(n, dtype=float)[:, None]
        sigma = np.full((n, 1), 0.3)
        mixtures = GaussianMixture(pi=np.ones((n, 1)), mu=mu, sigma=sigma)
        relation = build_window_relation(
            mixtures, np.arange(n), identity_diff(n),
            window_size=3, floor=0.0, step=0.1)
        assert len(relation) == 2
        expected = relation.expected_scores()
        assert expected[0] == pytest.approx(1.0, abs=0.1)
        assert expected[1] == pytest.approx(4.0, abs=0.1)

    def test_segment_weighting(self):
        """Discarded frames inherit their representative's moments with
        segment-length weights."""
        n = 4
        mixtures = GaussianMixture(
            pi=np.ones((2, 1)),
            mu=np.array([[0.0], [8.0]]),
            sigma=np.ones((2, 1)) * 0.5,
        )
        # Frames 0,1 map to retained 0; frames 2,3 to retained 2.
        diff = DiffResult(
            retained=np.array([0, 2]),
            representative=np.array([0, 0, 2, 2]),
            num_frames=n,
        )
        relation = build_window_relation(
            mixtures, np.array([0, 2]), diff,
            window_size=4, floor=0.0, step=0.1)
        # Window mean = (2*0 + 2*8)/4 = 4.
        assert relation.expected_scores()[0] == pytest.approx(4.0, abs=0.1)

    def test_misaligned_mixtures_rejected(self):
        mixtures = GaussianMixture(
            pi=np.ones((2, 1)), mu=np.zeros((2, 1)), sigma=np.ones((2, 1)))
        with pytest.raises(ConfigurationError):
            build_window_relation(
                mixtures, np.arange(3), identity_diff(3),
                window_size=2, floor=0.0, step=0.1)


class TestWindowCleaner:
    def test_sampled_confirmation(self, traffic_video):
        cost = CostModel()
        oracle = Oracle(counting_udf("car"), cost)
        cleaner = WindowCleaner(
            video=traffic_video, oracle=oracle,
            window_size=30, sample_fraction=0.1)
        scores = cleaner([0, 1])
        assert scores.shape == (2,)
        # 10% of 30 frames = 3 per window.
        assert oracle.calls == 6

    def test_sample_mean_near_true_mean(self, traffic_video):
        oracle = Oracle(counting_udf("car"), CostModel())
        cleaner = WindowCleaner(
            video=traffic_video, oracle=oracle,
            window_size=30, sample_fraction=1.0)
        truth = window_truth(traffic_video.counts.astype(float), 30)
        scores = cleaner([2])
        assert scores[0] == pytest.approx(truth[2])

    def test_frames_within_bounds(self, traffic_video):
        oracle = Oracle(counting_udf("car"), CostModel())
        cleaner = WindowCleaner(
            video=traffic_video, oracle=oracle, window_size=30)
        frames = cleaner.frames_for(3)
        assert (frames >= 90).all() and (frames < 120).all()

    def test_deterministic_sampling(self, traffic_video):
        oracle = Oracle(counting_udf("car"), CostModel())
        a = WindowCleaner(
            video=traffic_video, oracle=oracle, window_size=30, seed=5)
        b = WindowCleaner(
            video=traffic_video, oracle=oracle, window_size=30, seed=5)
        assert np.array_equal(a.frames_for(1), b.frames_for(1))


class TestWindowQueries:
    def test_window_query_end_to_end(self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        report = engine.topk_windows(k=5, thres=0.9, window_size=30)
        assert report.confidence >= 0.9
        assert report.window_size == 30
        truth = window_truth(traffic_video.counts.astype(float), 30)
        metrics = evaluate_answer(report.answer_ids, truth, 5)
        assert metrics.precision >= 0.6  # sampling jitter allowed

    def test_window_size_one_delegates_to_frames(
            self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        report = engine.topk_windows(k=5, thres=0.9, window_size=1)
        assert report.window_size is None

    def test_invalid_window_size(self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        with pytest.raises(QueryError):
            engine.topk_windows(k=5, thres=0.9, window_size=0)

    def test_window_ids_in_range(self, traffic_video, fast_config):
        engine = EverestEngine(
            traffic_video, counting_udf("car"), config=fast_config)
        report = engine.topk_windows(k=5, thres=0.9, window_size=50)
        count = num_windows(len(traffic_video), 50)
        assert all(0 <= w < count for w in report.answer_ids)
