"""Shared fixtures for the test suite.

Expensive artifacts (videos, trained proxies, Phase 1 runs) are
session-scoped so the suite stays fast while every module gets
realistic inputs.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Allow test modules to import shared helpers from this directory
# (``from conftest import make_relation``) regardless of rootdir.
sys.path.insert(0, os.path.dirname(__file__))

from repro.config import EverestConfig, Phase1Config
from repro.core.uncertain import QuantizationGrid, UncertainRelation
from repro.models import train_proxy_grid
from repro.oracle import CostModel, Oracle, counting_udf
from repro.video import DashcamVideo, SentimentVideo, TrafficVideo


@pytest.fixture(scope="session")
def traffic_video() -> TrafficVideo:
    """A small but realistic counting video."""
    return TrafficVideo("fixture-traffic", 1_500, seed=42)


@pytest.fixture(scope="session")
def dashcam_video() -> DashcamVideo:
    return DashcamVideo("fixture-dashcam", 1_000, seed=43)


@pytest.fixture(scope="session")
def sentiment_video() -> SentimentVideo:
    return SentimentVideo("fixture-vlog", 800, seed=44)


@pytest.fixture(scope="session")
def fast_config() -> EverestConfig:
    return EverestConfig.fast()


@pytest.fixture(scope="session")
def trained_proxy(traffic_video):
    """A trained FeatureMDN proxy on the traffic fixture."""
    rng = np.random.default_rng(0)
    train_idx = rng.choice(len(traffic_video), 250, replace=False)
    holdout_idx = rng.choice(len(traffic_video), 80, replace=False)
    grid = train_proxy_grid(
        traffic_video.batch_pixels(train_idx),
        traffic_video.counts[train_idx],
        traffic_video.batch_pixels(holdout_idx),
        traffic_video.counts[holdout_idx],
        config=Phase1Config(cmdn_grid=((3, 16),), epochs=25),
    )
    return grid.proxy


def make_relation(pmfs, certain=None, step=1.0, floor=0.0):
    """Build a small hand-specified relation for algorithm tests.

    ``pmfs`` is a list of probability vectors (will be padded to a
    common length); ``certain`` maps position -> exact score.
    """
    num_levels = max(len(p) for p in pmfs)
    matrix = np.zeros((len(pmfs), num_levels))
    for i, p in enumerate(pmfs):
        matrix[i, : len(p)] = p
        matrix[i] /= matrix[i].sum()
    grid = QuantizationGrid(floor=floor, step=step, num_levels=num_levels)
    relation = UncertainRelation(np.arange(len(pmfs)), matrix, grid)
    for position, score in (certain or {}).items():
        relation.mark_certain(position, score)
    return relation


@pytest.fixture
def tiny_relation():
    """Table 1a from the paper: three frames, three count levels."""
    return make_relation([
        [0.78, 0.21, 0.01],
        [0.49, 0.42, 0.09],
        [0.16, 0.48, 0.36],
    ])


@pytest.fixture
def counting_oracle(traffic_video):
    return Oracle(counting_udf("car"), CostModel())
