"""Live traffic monitoring: maintain a top-k answer while video arrives.

The batch engine answers "the busiest moments of a *finished* video".
A city traffic desk wants the same answer continuously, over a camera
that never stops: after every arriving chunk, the current Top-5
busiest frames, still certified to the 0.9 probabilistic guarantee —
without re-paying Phase 1 (CMDN training) or re-asking the oracle
about frames it already explained.

This example opens a streaming session over the Table 7 "archie"
stand-in, subscribes a query, feeds the video in chunks, and prints
the per-append economics: each report carries the *batch-equivalent*
cost (what a from-scratch run over the same frames would charge),
while the "fresh" column shows the oracle work the live engine
actually paid — the delta, not the history. A checkpoint at the end
shows `Session.resume` warm-starting with zero Phase-1 oracle calls.

Run:  python examples/live_stream.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import EverestConfig, Session


def main() -> None:
    # A scaled-down stand-in for the 19.7-hour Archie intersection
    # feed; the first quarter is the bootstrap segment Phase 1 trains
    # on, the rest "arrives" in chunks below.
    session = Session.open_stream(
        "archie", "count[car]",
        initial_frames=3_000, min_frames=12_000,
        config=EverestConfig())
    live = (session.query()
            .topk(5)
            .guarantee(0.9)
            .subscribe())

    print(f"bootstrap @ {session.watermark} frames: "
          f"{live.latest.summary()}")
    print()
    header = (f"{'watermark':>10}  {'delta':>6}  {'confidence':>10}  "
              f"{'batch-equiv calls':>17}  {'fresh calls':>11}  "
              f"{'append secs':>11}")
    print(header)
    print("-" * len(header))

    chunk = 1_500
    while session.video.remaining >= chunk:
        result = session.append(chunk)
        report = live.latest
        print(f"{result.watermark:>10,}  {result.segment.num_frames:>6}  "
              f"{report.confidence:>10.3f}  {report.oracle_calls:>17,}  "
              f"{result.fresh_oracle_calls:>11}  "
              f"{result.wall_seconds:>10.2f}s")

    stats = session.stats
    print()
    print(f"total fresh oracle calls across the stream: "
          f"{stats.fresh_oracle_calls:,} "
          f"(a batch re-run per chunk would have re-paid "
          f"{sum(r.oracle_calls for s in session.append_log for r in s.reports):,})")

    # Persist the Phase-1 artifacts and prove the warm start.
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "archie-stream"
        session.checkpoint(store)
        resumed = Session.resume(store)
        labels_before = resumed.stats.fresh_label_calls
        answer = (resumed.query().topk(5).guarantee(0.9).subscribe())
        fresh_labels = resumed.stats.fresh_label_calls - labels_before
        print(f"resumed from {store.name}: watermark="
              f"{resumed.watermark:,}, phase-1 oracle calls on "
              f"resume={fresh_labels}, answer unchanged="
              f"{answer.latest.answer_ids == live.latest.answer_ids}")


if __name__ == "__main__":
    main()
