"""Federated top-k over a fleet of cameras — one answer, many shards.

A city operator asks "the top-10 busiest moments across all three
feeds from last week". The corpus opens one session per camera, runs
Phase 1 independently per shard, merges the per-shard uncertain
relations into one global relation over namespaced frame keys, and
drives a single Phase-2 cleaning loop whose candidate selector
allocates the oracle budget greedily across shards by expected
confidence gain. The report — answer, confidence, ledger — is
byte-identical to running the paper's engine over the concatenated
footage, but every artifact stayed per-shard.

Also shown: resharding one archive with ``VideoCorpus.from_split``
(zero Phase-1 re-work) and the registry's corpus spec grammar.

Run:  PYTHONPATH=src python examples/corpus_topk.py
"""

from __future__ import annotations

from repro import EverestConfig, Session, VideoCorpus
from repro.api import resolve_corpus
from repro.oracle import counting_udf
from repro.video import TrafficVideo


def main() -> None:
    config = EverestConfig.fast()

    # -- a fleet of three cameras, one global question ----------------
    cameras = [
        TrafficVideo(f"intersection-{i}", 1_200, seed=100 + i)
        for i in range(3)
    ]
    corpus = VideoCorpus.open(cameras, counting_udf("car"), config=config)
    query = (corpus.query().topk(10).guarantee(0.9)
             .deterministic_timing())
    print(query.explain(), "\n")

    outcome = query.run_detailed()
    report = outcome.report
    print(report.summary())
    print("answer by shard:")
    for name, local in outcome.answer_members():
        print(f"  {name} frame {local}")
    print("oracle budget allocation:", outcome.allocation())
    merged = outcome.merged_cost()
    print(f"merged ledger: {merged.total_seconds():.0f}s simulated "
          f"({merged.units('oracle_confirm'):.0f} confirms across "
          f"{corpus.num_members} shards)\n")

    # -- reshard an existing archive (no Phase-1 re-work) -------------
    archive = Session(
        TrafficVideo("archive", 1_500, seed=9), counting_udf("car"),
        config=config)
    archive.phase1()  # the archive's one-off build
    shards = VideoCorpus.from_split(archive, [500, 1_000])
    split_report = (shards.query().topk(5).guarantee(0.9)
                    .deterministic_timing().run())
    whole_report = (archive.query().topk(5).guarantee(0.9)
                    .deterministic_timing().run())
    print(f"split-vs-whole byte-identical: "
          f"{split_report.to_json() == whole_report.to_json()}")

    # -- the registry spec grammar ------------------------------------
    named = resolve_corpus(
        "count[car]@{traffic,dashcam}", num_frames=800, config=config)
    print(f"resolved corpus {named.name!r}: "
          f"{named.num_members} members, {named.total_frames} frames")


if __name__ == "__main__":
    main()
