"""Serve the multi-tenant HTTP/JSON gateway on localhost.

Starts a :class:`~repro.gateway.GatewayServer` over a private
:class:`~repro.service.QueryService` and blocks until Ctrl-C. Tenants
address work with registry strings (``count[car]/traffic``,
``count[car]@{traffic,dashcam}``) and poll for async results; quotas,
Prometheus metrics and streaming appends all ride along.

Run:  PYTHONPATH=src python examples/gateway_serve.py

Then, from another terminal::

    curl -s localhost:8314/healthz
    ID=$(curl -s -X POST localhost:8314/query \
         -d '{"tenant": "alice", "spec": "count[car]/traffic", "k": 5}' \
         | python -c 'import json,sys; print(json.load(sys.stdin)["id"])')
    curl -s localhost:8314/result/$ID
    curl -s -X POST localhost:8314/stream -d \
        '{"stream": "cam-1", "spec": "count[car]/dashcam", "initial_frames": 300}'
    curl -s -X POST localhost:8314/append -d '{"stream": "cam-1", "frames": 50}'
    curl -s localhost:8314/metrics | grep everest_gateway
"""

from __future__ import annotations

from repro.gateway import Gateway, GatewayConfig, GatewayServer, QuotaPolicy

PORT = 8314


def main() -> None:
    gateway = Gateway(
        config=GatewayConfig(
            video_kwargs={"num_frames": 2_000, "seed": 1},
            # Everyone gets a sane default; "demo-abuser" shows 429s.
            default_quota=QuotaPolicy(rate=10.0, burst=20,
                                      max_inflight=32),
            tenant_quotas={
                "demo-abuser": QuotaPolicy(rate=0.5, burst=1,
                                           max_inflight=2),
            },
        ),
        workers=4,
    )
    with gateway:
        server = GatewayServer(gateway, port=PORT)
        print(f"gateway listening on http://127.0.0.1:{PORT}")
        print("try: curl -s -X POST localhost:8314/query "
              "-d '{\"spec\": \"count[car]/traffic\", \"k\": 5}'")
        server.serve_forever()


if __name__ == "__main__":
    main()
