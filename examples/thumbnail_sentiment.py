"""Thumbnail generation: the Top-10 happiest moments of a video.

The paper's second motivating use case: a social platform picks video
thumbnails by asking a deep visual sentimentalizer for the Top-10
happiest moments. Demonstrates a third UDF family (bounded continuous
scores in [0, 1]) and compares Everest's guaranteed answer with the
unverified proxy-only ranking (the CMDN-only baseline).

Run:  python examples/thumbnail_sentiment.py
"""

from __future__ import annotations

from repro import EverestConfig
from repro.api import Session
from repro.baselines import cmdn_only_topk
from repro.metrics import evaluate_answer
from repro.oracle import sentiment_udf
from repro.video import SentimentVideo


def main() -> None:
    video = SentimentVideo("vlog", 6_000, seed=21)
    scoring = sentiment_udf(quantization_step=0.02)
    config = EverestConfig()

    session = Session(video, scoring, config=config)
    report = session.query().topk(10).guarantee(0.9).run()
    truth = video.happiness.copy()

    print(report.summary())
    print()
    print("Everest's guaranteed Top-10 happiest frames:")
    for rank, (frame, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        print(f"  {rank:>2}. frame {frame:<6} happiness={score:.3f}")

    # Continuous scores tie at the quantization step's resolution.
    everest_quality = evaluate_answer(
        report.answer_ids, truth, 10, tolerance=0.02)
    proxy = cmdn_only_topk(video, scoring, 10, config=config)
    proxy_quality = evaluate_answer(
        proxy.answer_ids, truth, 10, tolerance=0.02)

    print()
    print("answer quality (vs exhaustive oracle scan):")
    print(f"  everest   : {everest_quality.as_row()} "
          f"(confidence {report.confidence:.3f})")
    print(f"  cmdn-only : {proxy_quality.as_row()} (no guarantee)")
    print(f"everest speedup over scan-and-test: {report.speedup:.1f}x")


if __name__ == "__main__":
    main()
