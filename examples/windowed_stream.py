"""Standing "last five minutes" query: a window sliding over a stream.

A traffic desk rarely wants the busiest moments *ever* — it wants the
busiest moments of the last few minutes, continuously. This example
opens a sliding-window streaming session over the Table 7 "archie"
stand-in and drives the window with both kinds of event:

* ``append(n)`` — frames arrive; the window front advances;
* ``tick(n)`` — time passes with no arrivals; old frames expire out
  of the back of the window.

Each event delivers one refreshed report, still certified to the 0.9
probabilistic guarantee, and each is byte-identical to a from-scratch
batch run over just the window's frames. The "fresh" column shows the
oracle work the live engine actually paid per event — proportional to
the delta, not the window, and zero inference for pure expiry.

Run:  python examples/windowed_stream.py
"""

from __future__ import annotations

from repro import EverestConfig, Session


def main() -> None:
    # The first 3000 frames are the bootstrap segment Phase 1 trains
    # on; answers then cover only the trailing 100 seconds of stream
    # time (3000 frames at 30 fps).
    session = Session.open_stream(
        "archie", "count[car]",
        initial_frames=3_000, min_frames=12_000,
        window_seconds=100.0,
        config=EverestConfig())
    live = (session.query()
            .topk(5)
            .guarantee(0.9)
            .deterministic_timing()
            .subscribe())

    print(f"bootstrap @ {session.watermark} frames, window "
          f"[{session.window_lo}, {session.watermark}): "
          f"{live.latest.summary()}")
    print()
    header = (f"{'event':>12}  {'window':>15}  {'confidence':>10}  "
              f"{'tuples':>6}  {'fresh confirms':>14}  "
              f"{'fresh inference':>15}")
    print(header)
    print("-" * len(header))

    def show(kind, result):
        report = live.latest
        print(f"{kind:>12}  "
              f"[{session.window_lo:>6,}, {session.watermark:>6,})  "
              f"{report.confidence:>10.3f}  {report.num_tuples:>6,}  "
              f"{result.fresh_confirm_calls:>14}  "
              f"{result.fresh_inferred_frames:>15}")

    # Rush hour: frames arrive faster than they expire.
    for _ in range(3):
        show("append(1500)", session.append(1_500))
    # The camera idles: pure expiry, the answer narrows with no new
    # arrivals — and no proxy inference at all.
    for _ in range(2):
        show("tick(1000)", session.tick(1_000))
    # Arrivals resume.
    show("append(1500)", session.append(1_500))

    # The standing answer is exactly the batch answer over the window.
    reference = (session.batch_session().query()
                 .topk(5).guarantee(0.9)
                 .deterministic_timing().run())
    print()
    print(f"byte-identical to a fresh batch run over "
          f"[{session.window_lo:,}, {session.watermark:,}): "
          f"{live.latest.to_json() == reference.to_json()}")
    print(f"expiry events logged: {len(session.expiry_log)}; "
          f"total fresh oracle calls: "
          f"{session.stats.fresh_oracle_calls:,}")


if __name__ == "__main__":
    main()
