"""Property valuation: find a street's peak foot-traffic windows.

The paper's first motivating use case: a shop's rent tracks its peak
foot traffic, so an analyst asks for the Top-5 30-frame windows with
the highest average pedestrian count instead of manually counting.

This example drives the whole pipeline by registry strings: the
Table 7 "daxi-old-street" stand-in (a pedestrian street) and the
"count[person]" UDF name open a session, which then runs a Top-K
*window* query and prints the busiest moments as time ranges.

Run:  python examples/traffic_peak_hours.py
"""

from __future__ import annotations

from repro import EverestConfig
from repro.api import open_session
from repro.core.windows import window_bounds, window_truth
from repro.metrics import evaluate_answer


def timestamp(frame: int, fps: float) -> str:
    seconds = frame / fps
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def main() -> None:
    # Scaled-down stand-in for the 80-hour Daxi Old Street video.
    window_size = 30  # one second of 30 fps video per window
    session = open_session(
        "daxi-old-street", "count[person]",
        config=EverestConfig(), min_frames=8_000)
    video = session.video

    report = (session.query()
              .windows(size=window_size)
              .topk(5)
              .guarantee(0.9)
              .run())

    print(report.summary())
    print()
    print(f"{'rank':<6}{'window':<9}{'time range':<22}{'avg persons'}")
    for rank, (window, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        start, end = window_bounds(window, window_size, len(video))
        time_range = (
            f"{timestamp(start, video.fps)}-{timestamp(end, video.fps)}")
        print(f"{rank:<6}{window:<9}{time_range:<22}{score:.2f}")

    truth = window_truth(video.counts.astype(float), window_size)
    metrics = evaluate_answer(report.answer_ids, truth, 5)
    print()
    print(f"quality vs exhaustive oracle scan: {metrics.as_row()}")
    print(f"speedup over scan-and-test: {report.speedup:.1f}x")


if __name__ == "__main__":
    main()
