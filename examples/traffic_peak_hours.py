"""Property valuation: find a street's peak foot-traffic windows.

The paper's first motivating use case: a shop's rent tracks its peak
foot traffic, so an analyst asks for the Top-5 30-frame windows with
the highest average pedestrian count instead of manually counting.

This example uses the Table 7 "daxi-old-street" stand-in (a pedestrian
street), runs a Top-K *window* query, and prints the busiest moments
as time ranges.

Run:  python examples/traffic_peak_hours.py
"""

from __future__ import annotations

import numpy as np

from repro import EverestConfig, EverestEngine
from repro.core.windows import window_bounds, window_truth
from repro.metrics import evaluate_answer
from repro.oracle import counting_udf
from repro.video import build_dataset


def timestamp(frame: int, fps: float) -> str:
    seconds = frame / fps
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def main() -> None:
    # Scaled-down stand-in for the 80-hour Daxi Old Street video.
    video = build_dataset("daxi-old-street", min_frames=8_000)
    scoring = counting_udf("person")
    window_size = 30  # one second of 30 fps video per window

    engine = EverestEngine(video, scoring, config=EverestConfig())
    report = engine.topk_windows(k=5, thres=0.9, window_size=window_size)

    print(report.summary())
    print()
    print(f"{'rank':<6}{'window':<9}{'time range':<22}{'avg persons'}")
    for rank, (window, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        start, end = window_bounds(window, window_size, len(video))
        time_range = (
            f"{timestamp(start, video.fps)}-{timestamp(end, video.fps)}")
        print(f"{rank:<6}{window:<9}{time_range:<22}{score:.2f}")

    truth = window_truth(video.counts.astype(float), window_size)
    metrics = evaluate_answer(report.answer_ids, truth, 5)
    print()
    print(f"quality vs exhaustive oracle scan: {metrics.as_row()}")
    print(f"speedup over scan-and-test: {report.speedup:.1f}x")


if __name__ == "__main__":
    main()
