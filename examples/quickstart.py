"""Quickstart: Top-K frames with a probabilistic guarantee.

Builds a synthetic traffic video, opens a query session, asks Everest
for the Top-10 frames with the most cars at 90% confidence, and
compares the answer against the ground truth the oracle would produce
on a full scan.

The declarative API separates the three concerns: a ``Session`` opens
a (video, UDF) pair and caches Phase 1; the fluent builder describes
the query; ``run()`` executes the compiled plan. (Legacy note: the
original surface — ``EverestEngine(video, scoring).topk(k=10,
thres=0.9)`` — still works and is a thin facade over the same
session.)

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EverestConfig
from repro.api import Session
from repro.metrics import evaluate_answer
from repro.oracle import counting_udf
from repro.video import TrafficVideo


def main() -> None:
    # A 5,000-frame synthetic street scene (deterministic per seed).
    # Tall, narrow rush-hour bursts make the peaks genuinely rare —
    # the regime in which Top-K search beats a full scan.
    video = TrafficVideo(
        "quickstart", 5_000, seed=7,
        base_level=1.0, burst_amplitude=10.0, num_bursts=3,
        max_objects=16)

    # The default UDF from the paper (Figure 3): the score of a frame
    # is the number of cars found by the (simulated) YOLOv3 oracle.
    session = Session(video, counting_udf("car"), config=EverestConfig())

    query = session.query().topk(10).guarantee(0.9)
    print(query.explain())
    print()
    report = query.run()

    print(report.summary())
    print()
    print(f"{'rank':<6}{'frame':<8}{'oracle score':<14}{'true score'}")
    for rank, (frame, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        print(f"{rank:<6}{frame:<8}{score:<14.0f}"
              f"{video.true_count(frame)}")

    truth = video.counts.astype(float)
    metrics = evaluate_answer(report.answer_ids, truth, 10)
    print()
    print(f"quality vs ground truth: {metrics.as_row()}")
    print(f"simulated runtime: {report.simulated_seconds:,.0f}s "
          f"vs scan-and-test {report.scan_seconds:,.0f}s "
          f"-> {report.speedup:.1f}x speedup")
    print(f"oracle invocations: {report.oracle_calls:,} of "
          f"{len(video):,} frames")


if __name__ == "__main__":
    main()
