"""Quickstart: Top-K frames with a probabilistic guarantee.

Builds a synthetic traffic video, asks Everest for the Top-10 frames
with the most cars at 90% confidence, and compares the answer against
the ground truth the oracle would produce on a full scan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EverestConfig, EverestEngine
from repro.metrics import evaluate_answer
from repro.oracle import counting_udf
from repro.video import TrafficVideo


def main() -> None:
    # A 5,000-frame synthetic street scene (deterministic per seed).
    # Tall, narrow rush-hour bursts make the peaks genuinely rare —
    # the regime in which Top-K search beats a full scan.
    video = TrafficVideo(
        "quickstart", 5_000, seed=7,
        base_level=1.0, burst_amplitude=10.0, num_bursts=3,
        max_objects=16)

    # The default UDF from the paper (Figure 3): the score of a frame
    # is the number of cars found by the (simulated) YOLOv3 oracle.
    scoring = counting_udf("car")

    engine = EverestEngine(video, scoring, config=EverestConfig())
    report = engine.topk(k=10, thres=0.9)

    print(report.summary())
    print()
    print(f"{'rank':<6}{'frame':<8}{'oracle score':<14}{'true score'}")
    for rank, (frame, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        print(f"{rank:<6}{frame:<8}{score:<14.0f}"
              f"{video.true_count(frame)}")

    truth = video.counts.astype(float)
    metrics = evaluate_answer(report.answer_ids, truth, 10)
    print()
    print(f"quality vs ground truth: {metrics.as_row()}")
    print(f"simulated runtime: {report.simulated_seconds:,.0f}s "
          f"vs scan-and-test {report.scan_seconds:,.0f}s "
          f"-> {report.speedup:.1f}x speedup")
    print(f"oracle invocations: {report.oracle_calls:,} of "
          f"{len(video):,} frames")


if __name__ == "__main__":
    main()
