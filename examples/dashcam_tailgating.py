"""Fleet management: flag the most dangerous tailgating moments.

The paper's third motivating use case: a fleet manager queries the
Top-K dashcam frames ranked by lead-vehicle proximity (scored by a
deep depth estimator) to assess a driver's safety awareness.

Demonstrates a *user-defined scoring function* with continuous scores:
the tailgating UDF supplies its own quantization step (0.5), exactly
as Section 3.2 requires for non-counting scores.

Run:  python examples/dashcam_tailgating.py
"""

from __future__ import annotations

from repro import EverestConfig
from repro.api import Session
from repro.metrics import evaluate_answer
from repro.oracle import tailgating_udf
from repro.oracle.base import exact_scores
from repro.video import build_dataset


def main() -> None:
    video = build_dataset("dashcam-california", min_frames=8_000)
    scoring = tailgating_udf(max_distance=60.0, quantization_step=0.5)

    session = Session(video, scoring, config=EverestConfig())
    report = session.query().topk(20).guarantee(0.9).run()

    print(report.summary())
    print()
    print(f"{'rank':<6}{'frame':<8}{'danger score':<14}{'distance (m)'}")
    for rank, (frame, score) in enumerate(
            zip(report.answer_ids, report.answer_scores), start=1):
        distance = video.true_distance(frame)
        print(f"{rank:<6}{frame:<8}{score:<14.1f}{distance:.1f}")

    truth = exact_scores(scoring, video)
    # Continuous scores tie at the quantization step's resolution.
    metrics = evaluate_answer(report.answer_ids, truth, 20, tolerance=0.5)
    print()
    print(f"quality vs exhaustive oracle scan: {metrics.as_row()}")
    print(f"speedup over scan-and-test: {report.speedup:.1f}x")
    closest = video.distances.min()
    print(f"closest approach in the whole video: {closest:.1f} m "
          f"(top answer: {video.true_distance(report.answer_ids[0]):.1f} m)")


if __name__ == "__main__":
    main()
