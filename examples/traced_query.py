"""Where did my query's time go? End-to-end tracing walkthrough.

A small burst of Top-K queries runs through a
:class:`~repro.service.QueryService` with tracing on. Every query
comes back with a span tree — admission, queue wait, Phase-1
build/lease, lane dispatch, each clean-loop iteration with its oracle
confirmations — carrying wall seconds *and* the simulated ledger
seconds the cost model charged inside each span. Tracing never
changes an answer: reports stay byte-identical to an untraced run
(DESIGN.md §12).

Run:  PYTHONPATH=src python examples/traced_query.py

Honors the ambient switches::

    REPRO_TRACE=1              # what QueryService picks up by default
    REPRO_TRACE_LOG=/tmp/trace.jsonl   # rotated JSONL event log
    REPRO_TRACE_PROFILE=1      # attach cProfile top-10s to spans

then feed the log to ``scripts/trace_report.py`` (``--chrome`` for a
flamegraph in about://tracing or https://ui.perfetto.dev).
"""

from __future__ import annotations

from repro import EverestConfig, QueryService
from repro.trace import NULL_TRACER, Tracer, chrome_trace

#: (tenant, k, thres) — enough shapes to make the tree interesting.
WORKLOAD = [
    ("city-ops", 10, 0.90),
    ("city-ops", 25, 0.90),
    ("retail", 5, 0.95),
]


def print_tree(trace) -> None:
    """Indented span tree with wall / simulated seconds per span."""
    dump = trace.to_dict()
    children = {}
    for span in dump["spans"]:
        children.setdefault(span["parent_id"], []).append(span)

    def walk(span, depth):
        marks = []
        if span["sim_seconds"]:
            marks.append(f"sim={span['sim_seconds']:.3f}s")
        if span["status"] != "ok":
            marks.append(span["status"])
        if span["attrs"].get("process") == "worker":
            marks.append("worker")
        extra = f"  [{', '.join(marks)}]" if marks else ""
        print(f"    {'  ' * depth}{span['name']:<{24 - 2 * depth}s}"
              f"{1e3 * span['duration']:9.2f} ms{extra}")
        kids = children.get(span["span_id"], [])
        # Collapse long runs of same-name siblings (iterations) so the
        # tree stays readable; the full detail is in the exports.
        by_name = {}
        for child in kids:
            by_name.setdefault(child["name"], []).append(child)
        shown = set()
        for child in kids:
            run = by_name[child["name"]]
            if len(run) <= 4 or child is run[0] or child is run[-1]:
                walk(child, depth + 1)
            elif child["name"] not in shown:
                shown.add(child["name"])
                hidden = len(run) - 2
                total_ms = 1e3 * sum(s["duration"] for s in run[1:-1])
                print(f"    {'  ' * (depth + 1)}... {hidden} more "
                      f"{child['name']} spans ({total_ms:.2f} ms)")

    root = dump["spans"][0]
    print(f"  {trace.trace_id}  {dump['name']}")
    walk(root, 0)


def main() -> None:
    tracer = Tracer.from_env()
    if tracer is NULL_TRACER:  # run plain: still show the trees
        tracer = Tracer()

    with QueryService(workers=2, tracer=tracer) as service:
        session = service.open_session(
            "traffic", "count[car]",
            num_frames=1_000, seed=7, config=EverestConfig.fast())
        futures = [
            service.submit(
                session.query().topk(k).guarantee(thres),
                tenant=tenant)
            for tenant, k, thres in WORKLOAD
        ]
        reports = service.gather(futures, timeout=600)

    print(f"{len(reports)} queries done; "
          f"{tracer.completed} traces retained\n")
    for trace in tracer.traces():
        print_tree(trace)
        print()

    events = chrome_trace(tracer.traces())["traceEvents"]
    print(f"chrome export: {len(events)} trace_event records "
          f"(see README 'Observability' to load a flamegraph)")
    if tracer.log is not None:
        print(f"JSONL event log: {tracer.log.path}")


if __name__ == "__main__":
    main()
