"""A multi-tenant query service over shared traffic footage.

Three tenants fire a burst of Top-K queries at the same two videos
through one :class:`~repro.service.QueryService`. The service builds
each video's Phase 1 exactly once (single-flight, however many
queries race on it), lets queries reuse each other's cleaned frames
through the shared score cache, and keeps tenants honest with
oracle-budget fairness — all while every report stays byte-identical
to what a plain serial session would have produced.

Run:  PYTHONPATH=src python examples/query_service.py
"""

from __future__ import annotations

from repro import EverestConfig, QueryService

#: (tenant, video, k, thres) — a small mixed burst.
WORKLOAD = [
    ("city-ops",   "traffic", 10, 0.90),
    ("city-ops",   "traffic", 25, 0.90),
    ("retail",     "traffic",  5, 0.95),
    ("retail",     "dashcam", 10, 0.90),
    ("insurance",  "dashcam",  5, 0.90),
    ("insurance",  "dashcam",  5, 0.99),
]


def main() -> None:
    config = EverestConfig.fast()
    with QueryService(workers=4, max_pending=64) as service:
        sessions = {
            "traffic": service.open_session(
                "traffic", "count[car]",
                num_frames=2_000, seed=7, config=config),
            "dashcam": service.open_session(
                "dashcam", "tailgating",
                num_frames=2_000, seed=8, config=config),
        }

        futures = [
            (tenant, video, service.submit(
                sessions[video].query().topk(k).guarantee(thres),
                tenant=tenant))
            for tenant, video, k, thres in WORKLOAD
        ]
        print(f"submitted {len(futures)} queries from "
              f"{len({t for t, _, _ in futures})} tenants\n")

        for tenant, video, future in futures:
            report = future.result(timeout=600)
            print(f"  [{tenant:9s}] {video}: top-{report.k} "
                  f"(thres={report.thres:g}) -> confidence "
                  f"{report.confidence:.3f}, {report.oracle_calls} "
                  f"oracle calls charged")

        stats = service.stats()
        print(f"\nPhase-1 builds: {stats['builds']} "
              f"(for {len(sessions)} videos, {len(WORKLOAD)} queries)")
        print(f"shared score cache: {stats['cached_scores']} frames")
        print("fairness charges (oracle seconds):")
        for tenant, charge in sorted(service.tenant_charges().items()):
            print(f"  {tenant:9s} {charge:8.1f}s")
        total = service.merged_cost().total_seconds()
        print(f"service-level merged ledger: {total:,.0f}s simulated")


if __name__ == "__main__":
    main()
