"""Scoring-function (UDF) protocol and the oracle wrapper.

The paper's UDF contract (Figure 3) is a Python callable that takes
frames and returns their *oracle* scores. :class:`ScoringFunction`
captures that plus the metadata Everest needs to build the uncertain
relation:

* ``quantization_step`` — ``None`` for counting UDFs (integer support),
  otherwise the user-supplied step (paper Section 3.2);
* ``score_floor`` — the smallest possible score (0 for counts).

:class:`Oracle` wraps a scoring function with cost accounting: every
invocation charges the simulated per-frame latency to a
:class:`~repro.oracle.cost.CostModel` and counts calls, which is what
the speedup evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import OracleBudgetExceededError
from ..trace import add_event
from ..video.frame import Frame
from ..video.synthetic import SyntheticVideo
from .cost import CostModel


@dataclass(frozen=True)
class ScoringFunction:
    """A user-defined scoring function (paper Figure 3).

    Attributes
    ----------
    name:
        Human-readable UDF name (e.g. ``"count[car]"``).
    score_frames:
        Callable mapping a list of :class:`Frame` to a float array of
        oracle scores.
    cost_key:
        Ledger key whose per-unit latency this UDF charges per frame.
    quantization_step:
        ``None`` for integer-valued scores (counting); otherwise the
        discretization step for the uncertain relation.
    score_floor:
        Smallest possible score (used as the quantization origin).
    """

    name: str
    score_frames: Callable[[List[Frame]], np.ndarray]
    cost_key: str = "oracle_infer"
    quantization_step: Optional[float] = None
    score_floor: float = 0.0
    #: Optional fast path returning the exact score of *every* frame of
    #: a video at once. Used only by the evaluation harness to compute
    #: ground-truth metrics without paying per-frame Frame construction;
    #: the query pipeline never calls it.
    exact_scores_fn: Optional[Callable[["SyntheticVideo"], np.ndarray]] = None

    @property
    def integer_valued(self) -> bool:
        return self.quantization_step is None

    @property
    def step(self) -> float:
        """The effective quantization step (1.0 for counting UDFs)."""
        return 1.0 if self.quantization_step is None else self.quantization_step

    def __call__(self, frames: List[Frame]) -> np.ndarray:
        return np.asarray(self.score_frames(frames), dtype=np.float64)


class Oracle:
    """Accurate but slow scorer with cost and budget accounting."""

    def __init__(
        self,
        scoring: ScoringFunction,
        cost_model: Optional[CostModel] = None,
        *,
        budget: Optional[int] = None,
        cost_key: Optional[str] = None,
    ):
        self.scoring = scoring
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.budget = budget
        #: Ledger key charged per frame; defaults to the UDF's own key.
        #: The engine overrides it to attribute labelling vs confirming
        #: work to separate Table 8 columns.
        self.cost_key = cost_key or scoring.cost_key
        self.calls = 0

    @property
    def name(self) -> str:
        return self.scoring.name

    def score(
        self, video: SyntheticVideo, indices: Sequence[int]
    ) -> np.ndarray:
        """Oracle-score the given frames, charging latency per frame.

        Raises :class:`OracleBudgetExceededError` when an invocation
        budget was set and would be exceeded.
        """
        indices = list(indices)
        if self.budget is not None and self.calls + len(indices) > self.budget:
            raise OracleBudgetExceededError(self.budget)
        self.calls += len(indices)
        self.cost_model.charge(self.cost_key, len(indices))
        add_event(
            "oracle_confirm", frames=len(indices), fresh=len(indices),
            cached=0, cost_key=self.cost_key)
        frames = [video.frame(i) for i in indices]
        return self.scoring(frames)

    def score_all(self, video: SyntheticVideo) -> np.ndarray:
        """Scan-and-test: oracle-score every frame of the video."""
        return self.score(video, range(len(video)))


def exact_scores(scoring: ScoringFunction, video: SyntheticVideo) -> np.ndarray:
    """Ground-truth scores of every frame, for metrics only (no cost).

    Uses the UDF's fast path when available, otherwise scores frames
    one by one without charging the ledger.
    """
    if scoring.exact_scores_fn is not None:
        return np.asarray(scoring.exact_scores_fn(video), dtype=np.float64)
    frames = [video.frame(i) for i in range(len(video))]
    return scoring(frames)
