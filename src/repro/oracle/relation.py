"""The video relation model (paper Table 2).

For analytical processing, video data is modeled as a relation where
each tuple corresponds to one detected object in one frame:
``(ts, class, polygon, objectID, content, features)``. A relation fully
materialized by an accurate detector is the ground truth — and fully
materializing it is exactly the cost Everest avoids. This module exists
as the substrate: it can materialize the relation (paying oracle cost
per frame), answer per-frame aggregates, and back the scan-and-test
baseline and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..video.frame import BoundingBox
from ..video.synthetic import SyntheticVideo
from .cost import CostModel
from .detector import SimulatedObjectDetector
from .tracker import IoUTracker


@dataclass(frozen=True)
class VideoTuple:
    """One row of the video relation (Table 2)."""

    timestamp: float
    frame_index: int
    label: str
    box: BoundingBox
    object_id: int


class VideoRelation:
    """A (possibly partial) materialization of the video relation."""

    def __init__(self, video_name: str):
        self.video_name = video_name
        self.tuples: List[VideoTuple] = []
        self._frames_seen: set = set()

    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def frames_materialized(self) -> int:
        return len(self._frames_seen)

    def add_frame(
        self,
        frame_index: int,
        timestamp: float,
        assignments: Sequence[tuple],
    ) -> None:
        """Insert the (object_id, box) pairs detected in one frame."""
        self._frames_seen.add(frame_index)
        for object_id, box in assignments:
            self.tuples.append(VideoTuple(
                timestamp=timestamp,
                frame_index=frame_index,
                label=box.label,
                box=box,
                object_id=object_id,
            ))

    def count_per_frame(
        self, label: Optional[str] = None
    ) -> Dict[int, int]:
        """Objects per materialized frame (0 rows -> 0 count)."""
        counts: Dict[int, int] = {i: 0 for i in self._frames_seen}
        for row in self.tuples:
            if label is None or row.label == label:
                counts[row.frame_index] += 1
        return counts

    def distinct_objects(self, label: Optional[str] = None) -> int:
        ids = {
            row.object_id for row in self.tuples
            if label is None or row.label == label
        }
        return len(ids)

    def object_lifetimes(self) -> Dict[int, int]:
        """Number of frames each object id appears in."""
        lifetimes: Dict[int, int] = {}
        for row in self.tuples:
            lifetimes[row.object_id] = lifetimes.get(row.object_id, 0) + 1
        return lifetimes


def materialize_relation(
    video: SyntheticVideo,
    *,
    detector: Optional[SimulatedObjectDetector] = None,
    tracker: Optional[IoUTracker] = None,
    indices: Optional[Iterable[int]] = None,
    cost_model: Optional[CostModel] = None,
    cost_key: str = "oracle_infer",
) -> VideoRelation:
    """Materialize (part of) the ground-truth video relation.

    Charges one oracle invocation per materialized frame — this is the
    expensive operation Everest's two-phase design avoids doing for the
    whole video.
    """
    detector = detector or SimulatedObjectDetector()
    tracker = tracker or IoUTracker()
    relation = VideoRelation(video.name)
    frame_indices = sorted(indices) if indices is not None \
        else range(len(video))
    for index in frame_indices:
        frame = video.frame(index)
        if cost_model is not None:
            cost_model.charge(cost_key, 1)
        detections = detector.detect(frame)
        assignments = tracker.update(index, detections)
        relation.add_frame(index, frame.timestamp, assignments)
    return relation
