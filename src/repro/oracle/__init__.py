"""Oracle substrate: simulated deep models, UDFs, tracking, cost model.

The accurate-but-slow "oracle" in the paper is a deep CNN (YOLOv3 for
counting, a monocular depth estimator for tailgating, a sentimentalizer
for thumbnails). Here every oracle reveals the simulator's ground truth
while charging realistic per-frame latency to a :class:`CostModel`
ledger, so invocation-count economics — the thing the paper's speedups
measure — are preserved without a GPU.
"""

from .base import Oracle, ScoringFunction
from .cost import (
    CostModel,
    DEFAULT_UNIT_COSTS,
    merge_cost_models,
    scan_cost_seconds,
)
from .detector import (
    DetectorErrorModel,
    SimulatedObjectDetector,
    counting_udf,
)
from .depth import SimulatedDepthEstimator, tailgating_udf
from .sentiment import SimulatedSentimentalizer, sentiment_udf
from .tracker import IoUTracker, Track
from .relation import VideoRelation, VideoTuple, materialize_relation

__all__ = [
    "Oracle",
    "ScoringFunction",
    "CostModel",
    "DEFAULT_UNIT_COSTS",
    "merge_cost_models",
    "scan_cost_seconds",
    "DetectorErrorModel",
    "SimulatedObjectDetector",
    "counting_udf",
    "SimulatedDepthEstimator",
    "tailgating_udf",
    "SimulatedSentimentalizer",
    "sentiment_udf",
    "IoUTracker",
    "Track",
    "VideoRelation",
    "VideoTuple",
    "materialize_relation",
]
