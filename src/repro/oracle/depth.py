"""Simulated monocular depth estimator and the tailgating UDF.

Stands in for the self-supervised depth estimator (Godard et al.) the
paper uses in its fleet-management experiment (Section 4.2.5): the
score of a dashcam frame is how *dangerously close* the lead vehicle
is. Higher score = more dangerous, so Top-K returns the worst
tailgating moments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..video.frame import Frame
from .base import ScoringFunction


class SimulatedDepthEstimator:
    """Per-frame lead-vehicle distance with optional estimation noise."""

    def __init__(self, *, noise_std: float = 0.0, seed: int = 0):
        if noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        self.noise_std = noise_std
        self.seed = seed

    def distance(self, frame: Frame) -> float:
        true_distance = frame.truth_value("distance")
        if self.noise_std == 0.0:
            return float(true_distance)
        rng = np.random.default_rng((self.seed, frame.index))
        return float(max(0.1, true_distance + rng.normal(0, self.noise_std)))

    def distances(self, frames: List[Frame]) -> np.ndarray:
        return np.asarray([self.distance(f) for f in frames], dtype=np.float64)


@dataclass(frozen=True)
class TailgatingScorer:
    """Picklable frame scorer: ``max(0, max_distance - distance)``."""

    model: SimulatedDepthEstimator
    max_distance: float

    def __call__(self, frames: List[Frame]) -> np.ndarray:
        return np.maximum(0.0, self.max_distance - self.model.distances(frames))


@dataclass(frozen=True)
class TailgatingExactScores:
    """Ground-truth fast path for the noiseless depth estimator."""

    max_distance: float

    def __call__(self, video) -> np.ndarray:
        distances = video.truth_array("distance")
        return np.maximum(0.0, self.max_distance - distances)


def tailgating_udf(
    *,
    max_distance: float = 60.0,
    quantization_step: float = 0.5,
    estimator: Optional[SimulatedDepthEstimator] = None,
    cost_key: str = "depth_oracle_infer",
) -> ScoringFunction:
    """Tailgating danger score: ``max_distance - distance``.

    Continuous-valued, so the user supplies ``quantization_step`` as the
    paper requires for non-counting scoring functions (Section 3.2).
    """
    model = estimator or SimulatedDepthEstimator()
    exact_fn = (
        TailgatingExactScores(max_distance) if estimator is None else None)
    return ScoringFunction(
        name="tailgating",
        score_frames=TailgatingScorer(model, max_distance),
        cost_key=cost_key,
        quantization_step=quantization_step,
        score_floor=0.0,
        exact_scores_fn=exact_fn,
    )
