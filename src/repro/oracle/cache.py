"""Shared memoization of revealed exact scores.

Oracle answers are immutable facts about frames: once a frame's exact
score has been revealed — as a Phase-1 label, a Phase-2 confirmation,
or a drift audit — revealing it again costs nothing but latency.
:class:`ScoreCache` memoizes those revelations and
:class:`CachingOracle` is an :class:`~repro.oracle.base.Oracle` that
consults the cache before paying for a physical UDF invocation, while
charging its cost ledger and counting calls exactly as the base oracle
would. Reports produced through a caching oracle are therefore
bit-identical to uncached runs; only the *physical* work shrinks.

The cache started life inside the streaming layer (one cache per
streaming session, shared by the label oracle, the drift auditor and
every subscription). The query service promotes it to service scope:
one bounded cache per (video, UDF) artifact group, shared by every
concurrent query over that group, so one query's cleaned tuples become
every later query's warm start (DESIGN.md §8). Service-scope caches
are bounded (``max_entries``, LRU) and thread-safe — eviction and
concurrent access can change which invocations are physical, never
what any query answers or charges.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, OracleBudgetExceededError
from ..trace import add_event
from .base import Oracle
from .cost import CostModel


class ScoreCache:
    """A memo of revealed exact frame scores, optionally bounded.

    Keyed by frame id; scores are deterministic per frame, so an entry
    never invalidates. With ``max_entries`` set, the cache evicts its
    least-recently-used entries — correctness is unaffected (a future
    query re-reveals the score physically), only physical work grows.
    All operations take an internal lock so service worker threads can
    share one instance.
    """

    def __init__(
        self,
        scores: Optional[Dict[int, float]] = None,
        *,
        max_entries: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be None or >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._scores: "OrderedDict[int, float]" = OrderedDict()
        self.evictions = 0
        for frame, score in (scores or {}).items():
            self.put(frame, score)

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, frame: int) -> bool:
        with self._lock:
            return int(frame) in self._scores

    def get(self, frame: int) -> float:
        with self._lock:
            frame = int(frame)
            self._scores.move_to_end(frame)
            return self._scores[frame]

    def put(self, frame: int, score: float) -> None:
        with self._lock:
            frame = int(frame)
            self._scores[frame] = float(score)
            self._scores.move_to_end(frame)
            if self.max_entries is not None:
                while len(self._scores) > self.max_entries:
                    self._scores.popitem(last=False)
                    self.evictions += 1

    def lookup(self, frames: Iterable[int]) -> Dict[int, float]:
        """The cached subset of ``frames`` as one consistent snapshot.

        A single locked pass — unlike per-frame ``get`` calls, a
        concurrent eviction cannot invalidate an entry between the
        membership test and the read.
        """
        with self._lock:
            found: Dict[int, float] = {}
            for frame in frames:
                frame = int(frame)
                score = self._scores.get(frame)
                if score is not None:
                    self._scores.move_to_end(frame)
                    found[frame] = score
            return found

    def merge(self, items: Iterable[Tuple[int, float]]) -> None:
        """Fold ``(frame, score)`` pairs in (bulk :meth:`put`)."""
        for frame, score in items:
            self.put(frame, score)

    def as_dict(self) -> Dict[int, float]:
        with self._lock:
            return dict(self._scores)

    # -- pickling (streaming checkpoints persist the cache) ------------
    def __getstate__(self):
        with self._lock:
            return {
                "scores": dict(self._scores),
                "max_entries": self.max_entries,
                "evictions": self.evictions,
            }

    def __setstate__(self, state):
        # Tolerate the pre-promotion layout too: the streaming-era
        # class pickled its raw __dict__ ({"_scores": {...}}), and old
        # checkpoints resolve to this class through the re-export.
        scores = state.get("scores", state.get("_scores", {}))
        self.max_entries = state.get("max_entries")
        self._lock = threading.Lock()
        self._scores = OrderedDict(
            (int(k), float(v)) for k, v in scores.items())
        self.evictions = state.get("evictions", 0)


class CachingOracle(Oracle):
    """An :class:`~repro.oracle.base.Oracle` that memoizes revelations.

    Charging, call counting, and budget enforcement are identical to
    the base oracle — a query's ledger and
    :class:`~repro.core.result.QueryReport.oracle_calls` must match an
    uncached run's exactly. Only the *physical* UDF invocation is
    skipped for frames already in the cache; ``fresh_calls`` counts the
    misses and ``fresh_scores`` holds this oracle's own revelations
    (what a pool worker ships back to the service-scope cache).
    """

    def __init__(
        self,
        scoring,
        cost_model: Optional[CostModel] = None,
        *,
        cache: ScoreCache,
        budget: Optional[int] = None,
        cost_key: Optional[str] = None,
    ):
        super().__init__(
            scoring, cost_model, budget=budget, cost_key=cost_key)
        self.cache = cache
        self.fresh_calls = 0
        self.fresh_scores: Dict[int, float] = {}

    def score(self, video, indices: Sequence[int]) -> np.ndarray:
        indices = [int(i) for i in indices]
        if self.budget is not None and \
                self.calls + len(indices) > self.budget:
            raise OracleBudgetExceededError(self.budget)
        self.calls += len(indices)
        self.cost_model.charge(self.cost_key, len(indices))
        # One consistent snapshot up front: a bounded shared cache may
        # evict concurrently, so membership is decided exactly once.
        known = self.cache.lookup(indices)
        seen = set()
        missing = [
            i for i in indices
            if i not in known and not (i in seen or seen.add(i))
        ]
        if missing:
            frames = [video.frame(i) for i in missing]
            for i, score in zip(missing, self.scoring(frames)):
                score = float(score)
                known[i] = score
                self.fresh_scores[i] = score
                self.cache.put(i, score)
            self.fresh_calls += len(missing)
        add_event(
            "oracle_confirm", frames=len(indices), fresh=len(missing),
            cached=len(indices) - len(missing), cost_key=self.cost_key)
        return np.asarray(
            [known[i] for i in indices], dtype=np.float64)
