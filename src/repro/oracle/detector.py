"""Simulated deep object detector (the YOLOv3 stand-in).

The paper treats a video relation materialized by an accurate deep CNN
as ground truth (Section 2). Our simulator *defines* the ground truth,
so the accurate detector simply reveals the simulator's annotations —
after paying the oracle's per-frame latency. An optional error model
(miss / false-positive rates, localization jitter) turns the same class
into degraded detectors for baselines such as TinyYOLOv3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..video.frame import BoundingBox, Frame
from .base import ScoringFunction


@dataclass(frozen=True)
class DetectorErrorModel:
    """Controlled imperfection for a simulated detector.

    ``miss_rate`` drops each true object independently;
    ``false_positive_rate`` adds spurious detections per frame
    (Poisson); ``jitter`` perturbs box corners (pixels).
    """

    miss_rate: float = 0.0
    false_positive_rate: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate < 1.0:
            raise ConfigurationError("miss_rate must be in [0, 1)")
        if self.false_positive_rate < 0.0:
            raise ConfigurationError("false_positive_rate must be >= 0")
        if self.jitter < 0.0:
            raise ConfigurationError("jitter must be >= 0")


PERFECT = DetectorErrorModel()


class SimulatedObjectDetector:
    """Bounding-box detector over synthetic frames.

    With the default (perfect) error model this is the oracle; with a
    lossy error model it emulates cheaper detectors.
    """

    def __init__(
        self,
        object_label: Optional[str] = None,
        error_model: DetectorErrorModel = PERFECT,
        *,
        latency_key: str = "oracle_infer",
    ):
        self.object_label = object_label
        self.error_model = error_model
        self.latency_key = latency_key

    def detect(self, frame: Frame) -> List[BoundingBox]:
        """Detect objects in one frame (label-filtered)."""
        return self.detect_boxes(
            frame.objects, frame_index=frame.index,
            resolution=frame.resolution)

    def detect_boxes(
        self,
        true_boxes: Sequence[BoundingBox],
        *,
        frame_index: int,
        resolution: Tuple[int, int] = (24, 24),
    ) -> List[BoundingBox]:
        """Apply the error model to ground-truth boxes directly.

        Lets batch scanners skip pixel rendering when only annotations
        are needed (the error model depends on the frame index, not the
        pixels).
        """
        boxes = [
            box for box in true_boxes
            if self.object_label is None or box.label == self.object_label
        ]
        em = self.error_model
        if em.miss_rate == 0.0 and em.false_positive_rate == 0.0 \
                and em.jitter == 0.0:
            return boxes

        rng = np.random.default_rng((em.seed, frame_index))
        kept: List[BoundingBox] = []
        for box in boxes:
            if rng.random() < em.miss_rate:
                continue
            if em.jitter > 0.0:
                dx, dy = rng.normal(0.0, em.jitter, 2)
                box = BoundingBox(
                    x=box.x + dx, y=box.y + dy,
                    width=box.width, height=box.height, label=box.label,
                )
            kept.append(box)
        height, width = resolution
        for _ in range(rng.poisson(em.false_positive_rate)):
            cx, cy = rng.uniform(0, width), rng.uniform(0, height)
            size = rng.uniform(2.0, max(3.0, width / 4.0))
            kept.append(BoundingBox(
                x=cx - size / 2, y=cy - size / 2,
                width=size, height=size,
                label=self.object_label or "object",
            ))
        return kept

    def detect_batch(self, frames: Sequence[Frame]) -> List[List[BoundingBox]]:
        return [self.detect(frame) for frame in frames]

    def count(self, frame: Frame) -> int:
        return len(self.detect(frame))


@dataclass(frozen=True)
class CountScorer:
    """Picklable frame scorer: score = number of detected objects.

    A plain class (not a closure) so :class:`ScoringFunction` instances
    built from it can cross process boundaries in parallel sweeps.
    """

    model: SimulatedObjectDetector

    def __call__(self, frames: List[Frame]) -> np.ndarray:
        return np.asarray(
            [len(objects) for objects in self.model.detect_batch(frames)],
            dtype=np.float64,
        )


@dataclass(frozen=True)
class CountExactScores:
    """Ground-truth fast path for the perfect counting oracle.

    The default detector is the perfect oracle, so the video's
    ground-truth count array is exactly its output.
    """

    object_label: str

    def __call__(self, video) -> np.ndarray:
        if getattr(video, "object_label", None) == self.object_label:
            return video.truth_array("count")
        return np.zeros(len(video))


def counting_udf(
    object_label: str = "car",
    *,
    detector: Optional[SimulatedObjectDetector] = None,
    cost_key: str = "oracle_infer",
) -> ScoringFunction:
    """The paper's default UDF (Figure 3): score = number of objects."""
    model = detector or SimulatedObjectDetector(object_label)
    exact_fn = CountExactScores(object_label) if detector is None else None
    return ScoringFunction(
        name=f"count[{object_label}]",
        score_frames=CountScorer(model),
        cost_key=cost_key,
        quantization_step=None,
        score_floor=0.0,
        exact_scores_fn=exact_fn,
    )
