"""IoU-based object tracker (paper Section 2, video relation model).

To recognize identical objects across frames so they share an
``objectID``, the paper invokes a tracker that takes polygons from two
consecutive frames and decides whether they represent the same object.
This module implements the standard greedy IoU matcher used by such
trackers: detections in frame ``t`` are matched to tracks alive at
``t-1`` in descending IoU order; unmatched detections open new tracks;
tracks unmatched for ``max_age`` frames are closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..video.frame import BoundingBox


@dataclass
class Track:
    """One tracked object: its id and the boxes it matched per frame."""

    object_id: int
    boxes: Dict[int, BoundingBox] = field(default_factory=dict)
    last_frame: int = -1

    @property
    def first_frame(self) -> int:
        return min(self.boxes) if self.boxes else -1

    @property
    def length(self) -> int:
        return len(self.boxes)


class IoUTracker:
    """Greedy IoU matcher assigning stable object ids across frames."""

    def __init__(self, *, iou_threshold: float = 0.3, max_age: int = 3):
        if not 0.0 < iou_threshold <= 1.0:
            raise ConfigurationError("iou_threshold must be in (0, 1]")
        if max_age < 0:
            raise ConfigurationError("max_age must be >= 0")
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self._next_id = 0
        self._active: List[Track] = []
        self.tracks: List[Track] = []

    def reset(self) -> None:
        self._next_id = 0
        self._active = []
        self.tracks = []

    def update(
        self, frame_index: int, detections: Sequence[BoundingBox]
    ) -> List[Tuple[int, BoundingBox]]:
        """Advance the tracker by one frame; returns (id, box) pairs."""
        # Expire stale tracks first.
        self._active = [
            t for t in self._active
            if frame_index - t.last_frame <= self.max_age
        ]

        # All candidate (iou, track_pos, det_pos) pairs above threshold,
        # greedily matched in descending IoU order.
        candidates = []
        for ti, track in enumerate(self._active):
            last_box = track.boxes[track.last_frame]
            for di, det in enumerate(detections):
                if det.label != last_box.label:
                    continue
                iou = last_box.iou(det)
                if iou >= self.iou_threshold:
                    candidates.append((iou, ti, di))
        candidates.sort(reverse=True)

        matched_tracks = set()
        matched_dets = set()
        assignments: List[Tuple[int, BoundingBox]] = []
        for iou, ti, di in candidates:
            if ti in matched_tracks or di in matched_dets:
                continue
            matched_tracks.add(ti)
            matched_dets.add(di)
            track = self._active[ti]
            track.boxes[frame_index] = detections[di]
            track.last_frame = frame_index
            assignments.append((track.object_id, detections[di]))

        for di, det in enumerate(detections):
            if di in matched_dets:
                continue
            track = Track(object_id=self._next_id)
            self._next_id += 1
            track.boxes[frame_index] = det
            track.last_frame = frame_index
            self._active.append(track)
            self.tracks.append(track)
            assignments.append((track.object_id, det))

        assignments.sort(key=lambda pair: pair[0])
        return assignments

    @property
    def num_tracks(self) -> int:
        return len(self.tracks)
