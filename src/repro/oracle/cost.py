"""Simulated-latency cost model.

The paper reports end-to-end wall-clock times on a GTX1080Ti. Without a
GPU, absolute times are meaningless here, but the paper's *speedups*
are ratios of per-frame model latencies times invocation counts — which
we can account exactly. Every component charges its work to a
:class:`CostModel` ledger using calibrated per-unit latencies
(:data:`DEFAULT_UNIT_COSTS`, chosen to match the hardware ratios the
paper reports: a 5 fps oracle, a ~25x faster specialized CMDN, fast
decode, etc.). Reported "runtime" is then the ledger total, and speedup
is the ratio of ledger totals — preserving the shape of Figures 4-9 and
Table 8.

Real wall-clock of the *algorithmic* parts (select-candidate,
topk-prob) is additionally measured with :meth:`CostModel.timer` and
added to the total, since those run at native speed in both the paper
and here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from ..errors import ConfigurationError

#: Simulated seconds per unit of work, calibrated to the paper's setup.
DEFAULT_UNIT_COSTS: Dict[str, float] = {
    # YOLOv3-class oracle at ~5 fps (paper Section 1).
    "oracle_infer": 0.2,
    # Depth-estimation oracle (Godard et al.), similar order.
    "depth_oracle_infer": 0.2,
    # Specialized CMDN inference (~125 fps on the paper's GPU).
    "cmdn_infer": 0.008,
    # CMDN training, per sample per epoch. The paper trains its 12-model
    # grid on up to 30000 samples in "less than several minutes", which
    # puts one sample-epoch at roughly a millisecond of GPU time.
    "cmdn_train": 1.2e-3,
    # Video decode per frame (Decord, ~3000 fps).
    "decode": 0.0003,
    # Difference detector per frame (pixel MSE, vectorized).
    "diff_detect": 0.0002,
    # TinyYOLOv3 (~100 fps).
    "tiny_infer": 0.01,
    # HOG + SVM over hundreds of sub-windows per frame (slow, CPU).
    "hog_infer": 0.08,
    # NoScope-style specialized binary classifier inference.
    "specialized_infer": 0.008,
}


@dataclass
class CostEntry:
    """Accumulated work for one ledger key."""

    units: float = 0.0
    seconds: float = 0.0


class CostModel:
    """A ledger of simulated latencies plus measured algorithm time.

    ``wall_clock=False`` puts the ledger in deterministic mode:
    :meth:`timer` stops measuring real time (simulated charges are
    unaffected), so two runs of the same deterministic workload — e.g.
    the same query on different pool workers — produce bit-identical
    ledgers and therefore bit-identical reports.
    """

    def __init__(
        self,
        unit_costs: Optional[Mapping[str, float]] = None,
        *,
        wall_clock: bool = True,
    ):
        merged = dict(DEFAULT_UNIT_COSTS)
        if unit_costs:
            merged.update(unit_costs)
        for key, value in merged.items():
            if value < 0:
                raise ConfigurationError(
                    f"unit cost for {key!r} must be >= 0, got {value}")
        self.unit_costs: Dict[str, float] = merged
        self.wall_clock = wall_clock
        self._entries: Dict[str, CostEntry] = {}

    def _entry(self, key: str) -> CostEntry:
        return self._entries.setdefault(key, CostEntry())

    def charge(self, key: str, units: float = 1.0) -> float:
        """Charge ``units`` of work under ``key``; returns seconds added."""
        if units < 0:
            raise ConfigurationError("units must be >= 0")
        per_unit = self.unit_costs.get(key, 0.0)
        seconds = units * per_unit
        entry = self._entry(key)
        entry.units += units
        entry.seconds += seconds
        return seconds

    def add_seconds(self, key: str, seconds: float) -> None:
        """Record measured wall-clock seconds under ``key``."""
        if seconds < 0:
            raise ConfigurationError("seconds must be >= 0")
        self._entry(key).seconds += seconds

    @contextmanager
    def timer(self, key: str) -> Iterator[None]:
        """Measure a ``with`` block's wall time into ``key``.

        A no-op in deterministic mode (``wall_clock=False``).
        """
        if not self.wall_clock:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(key, time.perf_counter() - start)

    def units(self, key: str) -> float:
        return self._entries.get(key, CostEntry()).units

    def seconds(self, key: str) -> float:
        return self._entries.get(key, CostEntry()).seconds

    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self._entries.values())

    def breakdown(self) -> Dict[str, float]:
        """Seconds per key, sorted descending."""
        items = sorted(
            self._entries.items(), key=lambda kv: kv[1].seconds, reverse=True)
        return {key: entry.seconds for key, entry in items}

    def fractions(self) -> Dict[str, float]:
        """Share of total seconds per key (empty ledger -> empty dict)."""
        total = self.total_seconds()
        if total <= 0:
            return {}
        return {k: s / total for k, s in self.breakdown().items()}

    def reset(self) -> None:
        self._entries.clear()

    def copy(self) -> "CostModel":
        clone = CostModel(self.unit_costs, wall_clock=self.wall_clock)
        for key, entry in self._entries.items():
            clone._entries[key] = CostEntry(entry.units, entry.seconds)
        return clone

    def merge_from(self, other: "CostModel") -> "CostModel":
        """Fold another ledger's charges into this one (in place).

        Entry units and seconds add key-wise; unit costs are left
        untouched (they describe how *future* charges price, not what
        was already spent). Returns ``self`` for chaining. This is how
        per-worker Phase 2 ledgers from a parallel sweep combine into
        one sweep-level ledger without double-counting: each worker
        charges only its own query's work, and the shared Phase 1
        ledger is merged exactly once by the caller.
        """
        for key, entry in other._entries.items():
            mine = self._entry(key)
            mine.units += entry.units
            mine.seconds += entry.seconds
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={e.seconds:.1f}s" for k, e in self._entries.items())
        return f"CostModel({parts})"


def merge_cost_models(
    models: "list[CostModel] | tuple[CostModel, ...]",
    *,
    unit_costs: Optional[Mapping[str, float]] = None,
    wall_clock: Optional[bool] = None,
) -> CostModel:
    """A fresh ledger holding the key-wise sum of ``models``' charges.

    ``wall_clock`` propagates from the inputs unless overridden: the
    merge is deterministic exactly when *every* input ledger is
    (``wall_clock=False``). The old behaviour — always constructing a
    ``wall_clock=True`` merge — silently re-enabled :meth:`~CostModel.timer`
    on the fold of an all-deterministic workload, breaking the
    bit-identical-ledger guarantee for anything charged post-merge. An
    empty ``models`` keeps the wall-clock default.
    """
    models = list(models)
    if wall_clock is None:
        wall_clock = any(m.wall_clock for m in models) if models else True
    merged = CostModel(unit_costs, wall_clock=wall_clock)
    for model in models:
        merged.merge_from(model)
    return merged


def scan_cost_seconds(
    num_frames: int,
    *,
    oracle_key: str = "oracle_infer",
    unit_costs: Optional[Mapping[str, float]] = None,
) -> float:
    """Simulated cost of the naive scan-and-test baseline.

    Scan decodes and oracle-scores every frame; decoding is sequential
    and therefore perfectly prefetched (paper Section 3.5), so its cost
    still counts but never stalls — we model both as pure latency.
    """
    costs = dict(DEFAULT_UNIT_COSTS)
    if unit_costs:
        costs.update(unit_costs)
    return num_frames * (costs[oracle_key] + costs["decode"])
