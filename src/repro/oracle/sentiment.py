"""Simulated visual sentimentalizer and the thumbnail UDF.

Stands in for Sentribute-style image sentiment models: the score of a
frame is its happiness in ``[0, 1]``. Used by the thumbnail-generation
use case from the paper's introduction (Top-10 happiest moments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..video.frame import Frame
from .base import ScoringFunction


class SimulatedSentimentalizer:
    """Per-frame happiness score with optional estimation noise."""

    def __init__(self, *, noise_std: float = 0.0, seed: int = 0):
        if noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        self.noise_std = noise_std
        self.seed = seed

    def happiness(self, frame: Frame) -> float:
        value = frame.truth_value("happiness")
        if self.noise_std:
            rng = np.random.default_rng((self.seed, frame.index))
            value = value + rng.normal(0, self.noise_std)
        return float(min(1.0, max(0.0, value)))

    def happiness_batch(self, frames: List[Frame]) -> np.ndarray:
        return np.asarray(
            [self.happiness(f) for f in frames], dtype=np.float64)


@dataclass(frozen=True)
class SentimentScorer:
    """Picklable frame scorer: batch happiness in ``[0, 1]``."""

    model: SimulatedSentimentalizer

    def __call__(self, frames: List[Frame]) -> np.ndarray:
        return self.model.happiness_batch(frames)


@dataclass(frozen=True)
class SentimentExactScores:
    """Ground-truth fast path for the noiseless sentimentalizer."""

    def __call__(self, video) -> np.ndarray:
        return np.clip(video.truth_array("happiness"), 0.0, 1.0)


def sentiment_udf(
    *,
    quantization_step: float = 0.02,
    model: Optional[SimulatedSentimentalizer] = None,
    cost_key: str = "oracle_infer",
) -> ScoringFunction:
    """Happiness score in ``[0, 1]`` with a user-chosen quantization."""
    sentimentalizer = model or SimulatedSentimentalizer()
    exact_fn = SentimentExactScores() if model is None else None
    return ScoringFunction(
        name="happiness",
        score_frames=SentimentScorer(sentimentalizer),
        cost_key=cost_key,
        quantization_step=quantization_step,
        score_floor=0.0,
        exact_scores_fn=exact_fn,
    )
