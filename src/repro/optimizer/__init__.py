"""Cost-based multi-query optimization (DESIGN.md §11).

Three pieces, layered on the concurrent query service:

* :class:`~repro.optimizer.estimator.CostEstimator` — per-(video, UDF,
  config) cost predictions calibrated online from the ledger history
  :class:`~repro.oracle.cost.CostModel` already records, persisted
  through the §7 artifact store.
* :class:`~repro.optimizer.planner.WorkloadPlanner` — orders a set of
  pending submissions cheapest-first with shared-artifact awareness
  and chooses each query's lane.
* :class:`~repro.optimizer.policy.CostOrderedPolicy` — the pluggable
  :class:`~repro.service.scheduler.OrderingPolicy` that applies the
  same discipline inside the FairScheduler's per-tenant queues
  (fairness across tenants is untouched).

``QueryService(ordering="cost")`` wires all three together.
"""

from .estimator import CalibrationStats, CostEstimator, CostPrediction
from .planner import PlannedQuery, WorkloadPlan, WorkloadPlanner
from .policy import CostOrderedPolicy

__all__ = [
    "CalibrationStats",
    "CostEstimator",
    "CostOrderedPolicy",
    "CostPrediction",
    "PlannedQuery",
    "WorkloadPlan",
    "WorkloadPlanner",
]
