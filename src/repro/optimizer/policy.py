"""Cost-based batch composition for the FairScheduler.

:class:`CostOrderedPolicy` is the optimizer's
:class:`~repro.service.scheduler.OrderingPolicy`: cross-tenant
fairness stays exactly where it was (the scheduler's deficit rule on
accumulated oracle charge picks *which tenant* runs), and this policy
decides *which of that tenant's jobs* a freed worker serves:

* the queued job with the smallest estimated physical cost leads —
  cheapest-first, with submission order breaking ties so equal-cost
  work keeps FIFO semantics;
* every same-``batch_key`` job anywhere in the queue rides along (up
  to ``max_batch``), not just immediately adjacent ones — an
  interleaved sweep over two artifacts still dispatches as one pool
  round trip per artifact.

The cost function sees the scheduler payload (the service passes its
estimator's physical-cost prediction); a payload it cannot price — a
stream refresh, a corpus job, a cost function error — prices as 0.0,
which degrades exactly to FIFO-with-gathering for those jobs.
"""

from __future__ import annotations

from typing import Callable, Deque, List

from ..service.scheduler import Job, OrderingPolicy


class CostOrderedPolicy(OrderingPolicy):
    """Cheapest-first within a tenant, same-key jobs gathered."""

    def __init__(self, cost_fn: Callable[[object], float]):
        self._cost_fn = cost_fn

    def _cost(self, payload) -> float:
        try:
            return float(self._cost_fn(payload))
        except Exception:  # noqa: BLE001 - pricing must never block work
            return 0.0

    def take_batch(self, queue: Deque[Job], max_batch: int) -> List[Job]:
        jobs = list(queue)
        lead = min(jobs, key=lambda job: (self._cost(job.payload), job.seq))
        batch = [lead]
        if lead.batch_key is not None:
            for job in jobs:
                if len(batch) >= max_batch:
                    break
                if job is not lead and job.batch_key == lead.batch_key:
                    batch.append(job)
        taken = {id(job) for job in batch}
        queue.clear()
        queue.extend(job for job in jobs if id(job) not in taken)
        return batch
