"""Workload-level planning: order, lanes and batch composition.

Given a set of pending submissions, :class:`WorkloadPlanner` produces a
:class:`WorkloadPlan` — an execution order plus per-query predictions —
that minimizes the *physical* cost the workload pays:

* **Shared-artifact grouping.** Queries on the same Phase-1 artifact
  (same ``(video content, UDF, phase1_key)``) run consecutively: the
  first query of a group pays the cold build (or finds it warm) and
  every later one rides the shared store instead of thrashing the
  residency LRU. The group's first query is its cache-warmer — it runs
  *before* the queries it warms, which is the whole point.
* **Cheapest-first.** Groups are ordered by their predicted total
  physical cost, and queries inside a group by their predicted Phase-2
  cost — the ``sort_by_cost`` discipline of workload-level query
  optimizers, on the ledger-calibrated estimates of
  :class:`~repro.optimizer.estimator.CostEstimator`.
* **Lane choice.** Each prediction carries the lane
  (inline vs process pool) whose observed overhead its work clears.

The plan is *advisory about cost, never about bytes*: reports are pure
functions of (video, scoring, config, plan), so any execution order
produces byte-identical reports — the optimizer bench asserts exactly
that while gating the cost margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.plan import QueryPlan
from ..api.query import Query
from ..api.session import Session, phase1_key
from ..errors import QueryError
from ..service.artifacts import artifact_digest, group_key
from .estimator import CostEstimator, CostPrediction


@dataclass(frozen=True)
class PlannedQuery:
    """One submission with its predicted cost and chosen lane."""

    #: Position in the caller's original submission list.
    index: int
    session: Session
    plan: QueryPlan
    prediction: CostPrediction
    #: Identity of the Phase-1 artifact the query needs.
    artifact: tuple

    @property
    def digest(self) -> str:
        return artifact_digest(self.artifact)


@dataclass(frozen=True)
class WorkloadPlan:
    """An ordered workload: ``items`` run first-to-last."""

    items: Tuple[PlannedQuery, ...]

    @property
    def estimated_physical_seconds(self) -> float:
        return sum(i.prediction.physical_seconds for i in self.items)

    @property
    def estimated_total_seconds(self) -> float:
        return sum(i.prediction.total_seconds for i in self.items)

    def order(self) -> List[int]:
        """Original submission indices in execution order."""
        return [item.index for item in self.items]

    def explain(self) -> str:
        """Render the planned order as an indented, readable table."""
        lines = [
            f"WorkloadPlan: {len(self.items)} queries, "
            f"~{self.estimated_physical_seconds:.1f}s physical "
            f"(~{self.estimated_total_seconds:.1f}s ledger)",
        ]
        for position, item in enumerate(self.items):
            plan = item.plan
            lines.append(
                f"  {position:3d}. [#{item.index}] "
                f"{plan.video_name}/{plan.udf_name} "
                f"top-{plan.k}@{plan.thres:g} {plan.mode} · "
                f"{item.prediction.describe()}"
            )
        return "\n".join(lines)


class WorkloadPlanner:
    """Orders pending submissions cheapest-first, artifacts shared."""

    def __init__(self, estimator: CostEstimator, *, artifacts=None):
        self.estimator = estimator
        #: Optional :class:`~repro.service.artifacts.SharedArtifacts`
        #: consulted for residency and score-cache coverage.
        self.artifacts = artifacts

    # ------------------------------------------------------------------
    def plan(
        self,
        queries: Sequence,
        *,
        session: Optional[Session] = None,
        pool_available: bool = False,
    ) -> WorkloadPlan:
        """Plan a set of pending submissions.

        ``queries`` holds fluent :class:`~repro.api.query.Query`
        objects (session implied) or compiled
        :class:`~repro.api.plan.QueryPlan` objects (pass ``session=``,
        exactly like ``QueryService.submit``).
        """
        resolved = [
            self._resolve(index, query, session)
            for index, query in enumerate(queries)
        ]
        # Group by artifact; predict each query with warm=True for
        # every group member after the first — the planner itself is
        # what makes them warm by running the group head first.
        groups: Dict[tuple, List[Tuple[int, Session, QueryPlan]]] = {}
        for index, qsession, qplan in resolved:
            artifact = (
                group_key(qsession.video, qsession.scoring),
                phase1_key(qplan.config),
            )
            groups.setdefault(artifact, []).append((index, qsession, qplan))

        planned_groups: List[List[PlannedQuery]] = []
        for artifact, members in groups.items():
            already_warm = self._warm(artifact, members[0][1])
            coverage = self._coverage(artifact[0], members[0][2])
            predictions = [
                PlannedQuery(
                    index=index,
                    session=qsession,
                    plan=qplan,
                    prediction=self.estimator.predict(
                        qplan,
                        group=artifact[0],
                        digest=artifact_digest(artifact),
                        warm=already_warm,
                        cache_coverage=coverage,
                        pool_available=pool_available,
                    ),
                    artifact=artifact,
                )
                for index, qsession, qplan in members
            ]
            # Cheapest Phase 2 leads the group (it is the warmer);
            # submission order breaks ties so planning is stable.
            predictions.sort(
                key=lambda p: (p.prediction.phase2_seconds, p.index))
            # Only the head can pay the build: re-predict the rest warm.
            head, rest = predictions[0], predictions[1:]
            rest = [
                PlannedQuery(
                    index=p.index,
                    session=p.session,
                    plan=p.plan,
                    prediction=self.estimator.predict(
                        p.plan,
                        group=artifact[0],
                        digest=p.digest,
                        warm=True,
                        cache_coverage=coverage,
                        pool_available=pool_available,
                    ),
                    artifact=artifact,
                )
                for p in rest
            ]
            planned_groups.append([head, *rest])

        # Cheapest group first; head index breaks ties for stability.
        planned_groups.sort(key=lambda g: (
            sum(item.prediction.physical_seconds for item in g),
            g[0].index,
        ))
        return WorkloadPlan(
            items=tuple(item for g in planned_groups for item in g))

    # ------------------------------------------------------------------
    def _resolve(
        self, index: int, query, session: Optional[Session]
    ) -> Tuple[int, Session, QueryPlan]:
        if isinstance(query, Query):
            return index, query.session, query.plan()
        if isinstance(query, QueryPlan):
            if session is None:
                raise QueryError(
                    "planning a compiled QueryPlan needs session=...")
            return index, session, query
        raise QueryError(
            f"plan expects a Query or QueryPlan, got {query!r}")

    def _warm(self, artifact: tuple, session: Session) -> bool:
        if session.phase1_cached(
                config=None, key=artifact[1]):
            return True
        if self.artifacts is not None:
            return self.artifacts.resident(artifact)
        return False

    def _coverage(self, group, plan: QueryPlan) -> float:
        if self.artifacts is None or plan.num_tuples <= 0:
            return 0.0
        cache = self.artifacts.score_cache(group)
        return min(1.0, len(cache) / plan.num_tuples)
