"""Per-(video, UDF, config) cost prediction calibrated from ledgers.

The :class:`CostEstimator` is the optimizer's model of what a query
*will* cost before it runs, built from what past queries *did* cost —
the :class:`~repro.oracle.cost.CostModel` ledgers every build and every
query already record:

* **Phase 1** — a cold build's simulated cost, keyed by the artifact
  digest. History is exact (build ledgers are bit-identical run to
  run); with no history the
  :func:`~repro.api.session.estimate_phase1_seconds` prior stands in.
  A *warm* artifact (resident in the shared store or pinned by the
  session) predicts zero new Phase-1 cost — the shared-artifact
  awareness the planner orders by.
* **Phase 2** — expected oracle confirmations, keyed by
  ``(group, mode, k)`` and observed from each completed query's
  ``oracle_confirm`` ledger units. The share expected to be served
  physically free by the group score cache scales with the caller's
  measured cache coverage.
* **Lanes** — observed wall-clock per executed query on each lane
  (``"inline"`` / ``"process"``), which is where pickling and IPC
  overheads show up. A query whose predicted Phase-2 work does not
  clear the process lane's observed overhead is routed inline.

Estimator state persists through the §7 artifact store
(:mod:`repro.streaming.store`: pickled state + sha256-verified
manifest) so a restarted service starts calibrated, and it is updated
online after every completed query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.plan import QueryPlan
from ..api.session import estimate_phase1_seconds

#: Lane the estimator assumes before any observation: the process
#: lane's per-batch round trip (pickling + IPC) costs roughly this
#: many seconds of overhead.
DEFAULT_PROCESS_OVERHEAD = 0.05

#: With no confirm history, expect the cleaning loop to confirm about
#: this many batches before the guarantee binds (rough prior — the
#: first completed query on the group replaces it).
PRIOR_CONFIRM_BATCHES = 4.0


@dataclass
class _Running:
    """A mean over observed samples (sum / count)."""

    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def as_state(self) -> Tuple[float, int]:
        return (self.total, self.count)


@dataclass(frozen=True)
class CostPrediction:
    """What one pending query is expected to cost, and on which lane.

    ``phase1_seconds`` is the *new* simulated cost the query would
    trigger (zero when the artifact is warm); ``phase2_seconds`` is
    the full simulated Phase-2 ledger the report will account
    regardless of sharing; ``physical_seconds`` is what actually gets
    paid — cold builds plus cache-missing confirmations plus lane
    overhead — and is the quantity cheapest-first ordering minimizes.
    """

    phase1_seconds: float
    phase1_warm: bool
    confirm_calls: float
    fresh_fraction: float
    phase2_seconds: float
    lane: str
    lane_overhead_seconds: float

    @property
    def physical_seconds(self) -> float:
        return (
            self.phase1_seconds
            + self.phase2_seconds * self.fresh_fraction
            + self.lane_overhead_seconds
        )

    @property
    def total_seconds(self) -> float:
        """Ledger view: Phase 1 (if cold) + full Phase 2."""
        return self.phase1_seconds + self.phase2_seconds

    def describe(self) -> str:
        tier = "warm" if self.phase1_warm else "cold"
        return (
            f"{tier} phase1={self.phase1_seconds:.2f}s "
            f"confirms~{self.confirm_calls:.0f} "
            f"({1 - self.fresh_fraction:.0%} cached) "
            f"lane={self.lane} "
            f"physical~{self.physical_seconds:.2f}s"
        )


@dataclass(frozen=True)
class CalibrationStats:
    """How well predictions have tracked actual ledgers so far."""

    observed: int = 0
    estimated_seconds: float = 0.0
    actual_seconds: float = 0.0

    @property
    def mean_abs_relative_error(self) -> float:
        """Mean of |estimate - actual| / actual over observed queries."""
        return self._error_sum / self.observed if self.observed else 0.0

    # dataclass(frozen) + derived sum: carried explicitly.
    _error_sum: float = 0.0


class CostEstimator:
    """Ledger-history-calibrated cost predictions (thread-safe)."""

    def __init__(self, *, path=None):
        self._lock = threading.Lock()
        #: artifact digest -> observed build ledger totals.
        self._builds: Dict[str, _Running] = {}
        #: (group, mode, k) -> observed oracle_confirm units.
        self._confirms: Dict[tuple, _Running] = {}
        #: lane -> observed wall seconds per executed query.
        self._lane_wall: Dict[str, _Running] = {}
        self._observed = 0
        self._estimated_sum = 0.0
        self._actual_sum = 0.0
        self._error_sum = 0.0
        self.path = path
        if path is not None:
            self.load(missing_ok=True)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        plan: QueryPlan,
        *,
        group,
        digest: str,
        warm: bool,
        cache_coverage: float = 0.0,
        pool_available: bool = False,
    ) -> CostPrediction:
        """Predict one query's cost under the current shared state.

        ``warm`` says whether the Phase-1 artifact already exists
        (resident or session-pinned); ``cache_coverage`` is the share
        of the relation already revealed in the group score cache;
        ``pool_available`` gates whether ``"process"`` may be chosen.
        """
        with self._lock:
            phase1 = 0.0 if warm else self._phase1_estimate(plan, digest)
            confirms = self._confirm_estimate(plan, group)
            overhead = self._process_overhead()
        per_confirm = (
            plan.unit_costs.get("oracle_confirm", 0.0)
            + plan.unit_costs.get("decode", 0.0)
        )
        phase2 = confirms * per_confirm
        fresh = max(0.0, 1.0 - max(0.0, min(1.0, cache_coverage)))
        # Lane: ship to the pool only when the predicted physical
        # Phase-2 work clears the observed per-batch overhead —
        # otherwise pickling dominates and inline is strictly better.
        if pool_available and phase2 * fresh >= overhead:
            lane, lane_overhead = "process", overhead
        else:
            lane, lane_overhead = "inline", 0.0
        return CostPrediction(
            phase1_seconds=phase1,
            phase1_warm=warm,
            confirm_calls=confirms,
            fresh_fraction=fresh,
            phase2_seconds=phase2,
            lane=lane,
            lane_overhead_seconds=lane_overhead,
        )

    def _phase1_estimate(self, plan: QueryPlan, digest: str) -> float:
        history = self._builds.get(digest)
        if history is not None and history.mean is not None:
            return history.mean
        return estimate_phase1_seconds(
            plan.num_frames, plan.unit_costs, plan.config)

    def _confirm_estimate(self, plan: QueryPlan, group) -> float:
        history = self._confirms.get((group, plan.mode, plan.k))
        if history is not None and history.mean is not None:
            return history.mean
        prior = plan.k * plan.config.phase2.batch_size \
            * PRIOR_CONFIRM_BATCHES
        return float(min(plan.num_tuples, prior))

    def _process_overhead(self) -> float:
        observed = self._lane_wall.get("process")
        if observed is not None and observed.mean is not None:
            inline = self._lane_wall.get("inline")
            baseline = inline.mean if inline and inline.mean else 0.0
            return max(0.0, observed.mean - baseline)
        return DEFAULT_PROCESS_OVERHEAD

    # ------------------------------------------------------------------
    # Online calibration
    # ------------------------------------------------------------------
    def observe_build(self, digest: str, cost_model) -> None:
        """Record one Phase-1 build's ledger total under its digest."""
        with self._lock:
            self._builds.setdefault(digest, _Running()) \
                .add(cost_model.total_seconds())

    def observe_query(
        self,
        plan: QueryPlan,
        *,
        group,
        phase2_cost,
        wall_seconds: float,
        lane: str,
        predicted: Optional[CostPrediction] = None,
    ) -> None:
        """Fold one completed query back into the model.

        ``phase2_cost`` is the query's per-query ledger (deterministic
        under the service contract), ``wall_seconds`` the measured
        execution time on ``lane``. When the caller kept the
        ``predicted`` estimate, the estimated-vs-actual pair feeds the
        calibration error :meth:`calibration` reports.
        """
        actual = phase2_cost.total_seconds()
        with self._lock:
            self._confirms.setdefault(
                (group, plan.mode, plan.k), _Running()) \
                .add(phase2_cost.units("oracle_confirm"))
            self._lane_wall.setdefault(lane, _Running()).add(wall_seconds)
            if predicted is not None:
                self._observed += 1
                self._estimated_sum += predicted.phase2_seconds
                self._actual_sum += actual
                if actual > 0:
                    self._error_sum += \
                        abs(predicted.phase2_seconds - actual) / actual

    def calibration(self) -> CalibrationStats:
        with self._lock:
            return CalibrationStats(
                observed=self._observed,
                estimated_seconds=self._estimated_sum,
                actual_seconds=self._actual_sum,
                _error_sum=self._error_sum,
            )

    # ------------------------------------------------------------------
    # Persistence (§7 artifact store)
    # ------------------------------------------------------------------
    def _state(self) -> Dict[str, object]:
        return {
            "builds": {k: v.as_state() for k, v in self._builds.items()},
            "confirms": {k: v.as_state() for k, v in self._confirms.items()},
            "lane_wall": {
                k: v.as_state() for k, v in self._lane_wall.items()},
            "calibration": (
                self._observed, self._estimated_sum,
                self._actual_sum, self._error_sum,
            ),
        }

    def save(self, path=None) -> None:
        """Persist history to a checkpoint directory (atomic, verified)."""
        from ..streaming.store import write_checkpoint

        target = path if path is not None else self.path
        if target is None:
            raise ValueError("CostEstimator.save needs a path")
        with self._lock:
            state = self._state()
        write_checkpoint(target, state, metadata={"kind": "cost_estimator"})

    def load(self, path=None, *, missing_ok: bool = False) -> bool:
        """Load history from a checkpoint directory; True when loaded.

        A missing or torn checkpoint is a cold start when
        ``missing_ok`` (the constructor path) — calibration simply
        begins from priors again.
        """
        from pathlib import Path

        from ..errors import CheckpointError
        from ..streaming.store import read_checkpoint

        target = path if path is not None else self.path
        if target is None:
            raise ValueError("CostEstimator.load needs a path")
        try:
            state, _manifest = read_checkpoint(Path(target))
        except CheckpointError:
            if missing_ok:
                return False
            raise
        with self._lock:
            self._builds = {
                k: _Running(*v) for k, v in state["builds"].items()}
            self._confirms = {
                k: _Running(*v) for k, v in state["confirms"].items()}
            self._lane_wall = {
                k: _Running(*v) for k, v in state["lane_wall"].items()}
            (self._observed, self._estimated_sum,
             self._actual_sum, self._error_sum) = state["calibration"]
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostEstimator(builds={len(self._builds)}, "
            f"confirm_keys={len(self._confirms)}, "
            f"observed={self._observed})"
        )
