"""The corpus abstraction: N member videos behind one frame namespace.

A :class:`VideoCorpus` owns one :class:`~repro.api.session.Session`
per member (the unit of per-shard Phase-1 reuse — service-bound
members lease their builds single-flight through
:class:`~repro.service.artifacts.SharedArtifacts`, streaming members
maintain theirs incrementally) plus the merged corpus-level state the
federated engine executes against:

* **Shard identity.** Members are ordered; member ``m`` owns the
  global frame range ``[offset[m], offset[m] + len(m))`` where
  ``offset`` is the cumulative length of the preceding members. All
  cross-shard structures — the merged relation's tuple ids, ledger
  merge order, error precedence — follow this one canonical order.
* **Merged Phase-1 state.** Per plan configuration, the member
  Phase-1 entries are merged into one corpus
  :class:`~repro.api.session.Phase1Entry` (see
  :func:`~repro.corpus.federated.merge_phase1_entries`) adopted by an
  internal session over the :class:`~repro.video.views.ConcatVideo`.
  The merge is cached and fingerprinted against the member entries, so
  a streaming member's append transparently invalidates it.
* **Split corpora.** :meth:`VideoCorpus.from_split` reshards an
  existing single-video session into slice members that *adopt* the
  archive's Phase-1 wholesale — no re-sampling, no re-training — which
  is what makes a federated query over the shards byte-identical to
  the unsplit query (the equivalence harness's strongest property).
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.session import Phase1Entry, Session, build_phase1_entry, phase1_key
from ..config import EverestConfig
from ..errors import CorpusError, FrameIndexError
from ..oracle.cost import CostModel
from ..parallel.pool import resolve_workers
from ..video.views import ConcatVideo, VideoSlice


@dataclass
class CorpusMember:
    """One shard: a name plus the session owning its video and Phase 1."""

    name: str
    session: Session

    @property
    def video(self):
        return self.session.video

    @property
    def streaming(self) -> bool:
        """Streaming members maintain Phase 1 incrementally."""
        return hasattr(self.session, "append")


@dataclass
class _MergedState:
    """Corpus-level execution state for one ``phase1_key``."""

    #: The merged corpus Phase-1 entry the internal session adopted.
    entry: Phase1Entry
    #: Per-shard Phase-1 ledgers, canonical member order (one entry —
    #: the archive's — for split corpora).
    phase1_costs: List[CostModel]
    #: Internal session over the concat view, merged entry adopted.
    session: Session
    #: Member-entry identities + lengths the merge was computed from.
    fingerprint: Tuple


class VideoCorpus:
    """An ordered set of member videos served as one top-k target."""

    def __init__(
        self,
        sessions: Sequence[Session],
        *,
        name: Optional[str] = None,
        member_names: Optional[Sequence[str]] = None,
    ):
        if not sessions:
            raise CorpusError("a corpus needs at least one member")
        if member_names is None:
            member_names = [session.video.name for session in sessions]
        if len(member_names) != len(sessions):
            raise CorpusError(
                f"{len(member_names)} member names for "
                f"{len(sessions)} sessions")
        if len(set(member_names)) != len(member_names):
            raise CorpusError(
                f"member names must be unique, got {list(member_names)}")
        self.members: List[CorpusMember] = [
            CorpusMember(name=str(n), session=s)
            for n, s in zip(member_names, sessions)
        ]
        first = sessions[0]
        for member in self.members[1:]:
            if member.session.scoring.name != first.scoring.name:
                raise CorpusError(
                    f"corpus members must share one UDF; member "
                    f"{member.name!r} uses "
                    f"{member.session.scoring.name!r}, member "
                    f"{self.members[0].name!r} uses "
                    f"{first.scoring.name!r}")
            if member.session.resolved_unit_costs() != \
                    first.resolved_unit_costs():
                raise CorpusError(
                    f"corpus members must share one unit-cost map; "
                    f"member {member.name!r} differs")
        self.name = name if name is not None \
            else "+".join(m.name for m in self.members)
        self.scoring = first.scoring
        self.config = first.config
        #: Set by :meth:`from_split`: the archive session whose whole
        #: Phase 1 every shard adopts instead of building its own.
        self._split_source: Optional[Session] = None
        self._merged_states: Dict[tuple, _MergedState] = {}
        # Serializes merge builds: concurrent service submissions of
        # the same corpus wait for one merge instead of redoing it
        # (the per-member Phase-1 builds already go single-flight
        # through the shared artifact layer when service-bound).
        self._merge_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        videos: Sequence,
        scoring,
        *,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
        name: Optional[str] = None,
        **video_kwargs,
    ) -> "VideoCorpus":
        """Open a corpus over videos (objects or registry names).

        One session per member is opened with the shared ``scoring``
        (object or ``"count[car]"``-style spec) and configuration;
        ``video_kwargs`` are forwarded to every registry-name build.
        """
        from ..api.registry import resolve_udf

        if isinstance(scoring, str):
            scoring = resolve_udf(scoring)
        sessions = [
            Session.open(
                video, scoring, config=config, unit_costs=unit_costs,
                **(video_kwargs if isinstance(video, str) else {}))
            for video in videos
        ]
        return cls(sessions, name=name)

    @classmethod
    def from_split(
        cls,
        session: Session,
        boundaries: Sequence[int],
        *,
        name: Optional[str] = None,
    ) -> "VideoCorpus":
        """Reshard one archive session into a federated corpus.

        ``boundaries`` are strictly increasing split points in
        ``(0, len(video))``; the members are the slices between them.
        Shards adopt the archive's Phase-1 artifacts wholesale (the
        slice offsets coincide with the archive's frame ids), so
        federated execution is byte-identical to querying the unsplit
        session at the same global budget — no Phase-1 oracle call is
        ever repeated.
        """
        total = len(session.video)
        points = [int(b) for b in boundaries]
        if points != sorted(points) or len(set(points)) != len(points):
            raise CorpusError(
                f"split boundaries must be strictly increasing, "
                f"got {points}")
        if points and not (0 < points[0] and points[-1] < total):
            raise CorpusError(
                f"split boundaries must lie in (0, {total}), got {points}")
        edges = [0, *points, total]
        slices = [
            VideoSlice(session.video, start, stop)
            for start, stop in zip(edges[:-1], edges[1:])
        ]
        members = [
            Session(video, session.scoring, config=session.config,
                    unit_costs=session._unit_costs)
            for video in slices
        ]
        corpus = cls(
            members,
            name=name if name is not None else session.video.name,
            member_names=[video.name for video in slices],
        )
        corpus._split_source = session
        return corpus

    # ------------------------------------------------------------------
    # Shard identity
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    @property
    def total_frames(self) -> int:
        return sum(len(member.video) for member in self.members)

    def offsets(self) -> np.ndarray:
        """Global frame id of each member's frame 0 (member order)."""
        lengths = [len(member.video) for member in self.members]
        return np.concatenate(([0], np.cumsum(lengths[:-1]))).astype(
            np.int64)

    def locate(self, global_id: int) -> Tuple[int, int]:
        """``(member_index, local_frame)`` owning a global frame id."""
        global_id = int(global_id)
        if global_id < 0 or global_id >= self.total_frames:
            raise FrameIndexError(global_id, self.total_frames)
        offsets = self.offsets()
        member = int(
            np.searchsorted(offsets, global_id, side="right")) - 1
        return member, global_id - int(offsets[member])

    def member_of(self, global_id: int) -> Tuple[str, int]:
        """``(member_name, local_frame)`` owning a global frame id."""
        member, local = self.locate(global_id)
        return self.members[member].name, local

    def resolved_unit_costs(self) -> Dict[str, float]:
        return self.members[0].session.resolved_unit_costs()

    def scan_seconds(self) -> float:
        """Simulated scan-and-test cost over the whole corpus."""
        return sum(
            member.session.scan_seconds() for member in self.members)

    # ------------------------------------------------------------------
    # Phase 1: per-shard builds and the merged corpus entry
    # ------------------------------------------------------------------
    def _member_entry(
        self, member: CorpusMember, config: EverestConfig
    ) -> Phase1Entry:
        # Streaming sessions pin (phase1, diff, seed) themselves; their
        # incremental entry is the shard's Phase 1 regardless of the
        # corpus plan's Phase-2 knobs.
        if member.streaming:
            return member.session.phase1()
        return member.session.phase1(config)

    def prepare(
        self,
        config: Optional[EverestConfig] = None,
        *,
        workers: Optional[int] = None,
    ) -> List[Phase1Entry]:
        """Build (or fetch) every member's Phase-1 entry, in order.

        ``workers > 1`` fans the missing *plain-session* builds across
        a process pool — each worker runs one shard's sampling, CMDN
        grid training and proxy inference, and the parent adopts the
        (purely simulated, bit-identical) entries in canonical member
        order, re-raising the earliest member's failure first. Members
        that are streaming, service-bound, or already built are served
        in-process. Split corpora adopt the archive's entry and build
        nothing.
        """
        config = config if config is not None else self.config
        workers = resolve_workers(workers)
        if self._split_source is not None:
            entry = self._split_source.phase1(config)
            return [entry] * self.num_members

        key = phase1_key(config)
        buildable = [
            member for member in self.members
            if not member.streaming
            and member.session.artifacts is None
            and key not in member.session._phase1_cache
        ]
        if workers > 1 and len(buildable) > 1:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(buildable))) as pool:
                futures = [
                    pool.submit(
                        build_phase1_entry,
                        member.video,
                        member.session.scoring,
                        member.session._unit_costs,
                        config,
                    )
                    for member in buildable
                ]
                # Canonical member order: the earliest shard's failure
                # is the one the serial loop would hit first.
                for future in futures:
                    error = future.exception()
                    if error is not None:
                        raise error
                for member, future in zip(buildable, futures):
                    member.session.adopt_phase1(future.result(), config)
        return [
            self._member_entry(member, config) for member in self.members
        ]

    def _fingerprint(self, config: EverestConfig) -> Tuple:
        if self._split_source is not None:
            entry = self._split_source._phase1_cache.get(
                phase1_key(config))
            return (id(entry), self.total_frames)
        key = phase1_key(config)
        parts = []
        for member in self.members:
            if member.streaming:
                entry = member.session._entry
            else:
                entry = member.session._phase1_cache.get(key)
            parts.append((id(entry), len(member.video)))
        return tuple(parts)

    def merged_state(self, config: Optional[EverestConfig] = None,
                     *, workers: Optional[int] = None) -> _MergedState:
        """The corpus-level execution state for ``config`` (cached).

        Builds member entries on demand (:meth:`prepare`), merges them
        into one global relation / entry, and binds an internal session
        over the concat view. The cache is fingerprinted against the
        member entries and lengths, so a streaming member's append
        rebuilds the merge while closed corpora pay it once.
        """
        config = config if config is not None else self.config
        key = phase1_key(config)
        with self._merge_lock:
            return self._merged_state_locked(config, key, workers)

    def _merged_state_locked(self, config, key, workers) -> _MergedState:
        from .federated import merge_phase1_entries

        cached = self._merged_states.get(key)
        if cached is not None and \
                cached.fingerprint == self._fingerprint(config):
            return cached

        entries = self.prepare(config, workers=workers)
        if self._split_source is not None:
            entry = entries[0]
            phase1_costs = [entry.cost_model]
        else:
            entry = merge_phase1_entries(
                entries,
                self.offsets(),
                floor=self.scoring.score_floor,
                step=(config.phase1.quantization_step
                      if config.phase1.quantization_step is not None
                      else self.scoring.step),
                truncate_sigmas=config.phase1.truncate_sigmas,
            )
            phase1_costs = [e.cost_model for e in entries]
        concat = ConcatVideo(
            [member.video for member in self.members], name=self.name)
        session = Session(
            concat, self.scoring, config=config,
            unit_costs=self.members[0].session._unit_costs)
        session.adopt_phase1(entry, config)
        state = _MergedState(
            entry=entry,
            phase1_costs=phase1_costs,
            session=session,
            fingerprint=self._fingerprint(config),
        )
        self._merged_states[key] = state
        return state

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self) -> "CorpusQuery":
        """Start building a federated top-k query (fluent API)."""
        from .query import CorpusQuery

        return CorpusQuery(corpus=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VideoCorpus({self.name!r}, members={self.member_names}, "
            f"frames={self.total_frames})"
        )
