"""Live federated answers over streaming corpora.

A :class:`CorpusSubscription` keeps one federated top-k answer current
while corpus members grow: it registers a lightweight hook with every
*streaming* member, and whichever member appends next triggers one
global refresh — the merged corpus state is fingerprint-invalidated by
the member's new Phase-1 entry, re-merged, and the federated query
re-certified over the union. Closed members simply keep contributing
their (cached) shards to every refresh.

The refreshed report lands both here (``subscription.latest``) and in
the appending member's :class:`~repro.streaming.session.AppendResult`
alongside its single-video subscriptions, so streaming callers observe
corpus answers through the interface they already poll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from ..core.result import QueryReport
from ..errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .federated import CorpusOutcome
    from .query import CorpusQuery


class _MemberHook:
    """The per-member adapter a streaming session refreshes per append.

    Implements the session's subscription protocol (``refresh`` /
    ``trim``) but delegates to the corpus-level subscription — the
    member's executor argument is ignored, because a corpus refresh
    re-runs the *federated* engine, not a single-member query.
    """

    def __init__(self, subscription: "CorpusSubscription"):
        self.subscription = subscription

    def refresh(self, executor) -> QueryReport:
        return self.subscription.refresh()

    def trim(self, max_history: int) -> None:
        self.subscription.trim(max_history)


@dataclass
class CorpusSubscription:
    """One continuously maintained federated top-k answer."""

    query: object  # repro.corpus.query.CorpusQuery (frozen dataclass)
    reports: List[QueryReport] = field(default_factory=list)
    #: The full outcome behind each report (allocation, ledgers).
    outcomes: List["CorpusOutcome"] = field(default_factory=list)

    @classmethod
    def attach(cls, query: "CorpusQuery") -> "CorpusSubscription":
        """Register with every streaming member and refresh once."""
        streaming = [
            member for member in query.corpus.members if member.streaming
        ]
        if not streaming:
            raise QueryError(
                "corpus subscriptions need at least one streaming "
                "member; open members with Session.open_stream(...)")
        subscription = cls(query=query)
        subscription.refresh()
        for member in streaming:
            member.session.attach_subscription(_MemberHook(subscription))
        return subscription

    @property
    def latest(self) -> QueryReport:
        if not self.reports:
            raise QueryError("subscription has not produced a report yet")
        return self.reports[-1]

    @property
    def latest_outcome(self) -> "CorpusOutcome":
        if not self.outcomes:
            raise QueryError("subscription has not produced a report yet")
        return self.outcomes[-1]

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def refresh(self) -> QueryReport:
        """Re-certify the federated answer over the current members."""
        outcome = self.query.run_detailed()
        self.outcomes.append(outcome)
        self.reports.append(outcome.report)
        return outcome.report

    def trim(self, max_history: int) -> None:
        """Drop all but the last ``max_history`` reports."""
        del self.reports[:-max_history]
        del self.outcomes[:-max_history]
