"""The fluent, immutable federated query builder.

Mirrors :class:`~repro.api.query.Query` clause for clause (eager
validation, copy-on-write) over a
:class:`~repro.corpus.corpus.VideoCorpus` instead of one session, and
compiles to the *same* :class:`~repro.api.plan.QueryPlan` type — the
plan targets the corpus's concat view, which is what makes federated
execution byte-comparable to a plain run of the compiled plan::

    outcome = (corpus.query()
               .topk(10).guarantee(0.9)
               .oracle_budget(500)
               .run_detailed())
    outcome.allocation()     # confirms per shard
    outcome.merged_cost()    # canonical corpus ledger

``shard_budget`` adds per-member oracle caps on top of the global
budget; ``subscribe`` maintains the answer live over streaming
members. Sliding ``window(seconds=...)`` clauses restrict every member
to its own last-N-seconds range (one plan range per shard, in global
ids); *tumbling* window clauses are deliberately absent — tumbling
aggregation across shard boundaries is undefined.
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from ..api.plan import QueryPlan
from ..api.query import _UNSET
from ..config import EverestConfig
from ..errors import ConfigurationError, CorpusError, QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.result import QueryReport
    from .corpus import VideoCorpus
    from .federated import CorpusOutcome
    from .subscription import CorpusSubscription


@dataclass(frozen=True)
class CorpusQuery:
    """An immutable, partially built federated top-k query."""

    corpus: "VideoCorpus" = field(repr=False, compare=False)
    _k: int = 50
    _thres: float = 0.9
    _oracle_budget: object = _UNSET
    _shard_budgets: Tuple[Tuple[str, int], ...] = ()
    _config: Optional[EverestConfig] = None
    _deterministic_timing: bool = False
    _window_seconds: Optional[float] = None

    # -- clauses -------------------------------------------------------
    def topk(self, k: int) -> "CorpusQuery":
        """Ask for the top-``k`` frames across every member."""
        if not isinstance(k, numbers.Integral) or isinstance(k, bool) \
                or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        return dataclasses.replace(self, _k=int(k))

    def guarantee(self, thres: float) -> "CorpusQuery":
        """Require the answer to be exact with probability >= ``thres``."""
        if not 0.0 < thres <= 1.0:
            raise QueryError(
                f"guarantee threshold must be in (0, 1], got {thres!r}")
        return dataclasses.replace(self, _thres=float(thres))

    def oracle_budget(self, budget: Optional[int]) -> "CorpusQuery":
        """Cap the *global* Phase-2 oracle spend (``None`` = unbounded)."""
        if budget is not None:
            if not isinstance(budget, numbers.Integral) \
                    or isinstance(budget, bool) or budget < 1:
                raise ConfigurationError(
                    f"oracle_budget must be None or a positive integer, "
                    f"got {budget!r}")
            budget = int(budget)
        return dataclasses.replace(self, _oracle_budget=budget)

    def shard_budget(self, member: str, budget: int) -> "CorpusQuery":
        """Cap one member's share of the oracle spend.

        A shard hitting its cap mid-allocation fails the query with a
        deterministic
        :class:`~repro.errors.ShardBudgetExceededError` *before* any
        charge from the offending batch lands.
        """
        if member not in self.corpus.member_names:
            raise CorpusError(
                f"unknown corpus member {member!r}; members: "
                f"{', '.join(self.corpus.member_names)}")
        if not isinstance(budget, numbers.Integral) \
                or isinstance(budget, bool) or budget < 1:
            raise ConfigurationError(
                f"shard budget must be a positive integer, got {budget!r}")
        budgets = tuple(
            (name, cap) for name, cap in self._shard_budgets
            if name != member
        ) + ((member, int(budget)),)
        return dataclasses.replace(self, _shard_budgets=budgets)

    def with_config(self, config: EverestConfig) -> "CorpusQuery":
        """Override the corpus configuration for this query only."""
        if not isinstance(config, EverestConfig):
            raise ConfigurationError(
                f"with_config expects an EverestConfig, got {config!r}")
        return dataclasses.replace(self, _config=config)

    def deterministic_timing(self, enabled: bool = True) -> "CorpusQuery":
        """Make the report a pure function of the plan and Phase 1."""
        return dataclasses.replace(
            self, _deterministic_timing=bool(enabled))

    def window(self, *, seconds: float) -> "CorpusQuery":
        """Restrict every member to its last ``seconds`` of stream time.

        The compiled plan carries one ``[lo, hi)`` range per member in
        the corpus's concatenated frame namespace; members with a
        stream horizon (windowed streaming sessions) window relative to
        it, sealed members relative to their end (DESIGN.md §13).
        """
        if isinstance(seconds, bool) \
                or not isinstance(seconds, numbers.Real) \
                or not float(seconds) > 0.0 \
                or not float(seconds) < float("inf"):
            raise QueryError(
                f"window seconds must be a positive finite number, "
                f"got {seconds!r}")
        return dataclasses.replace(self, _window_seconds=float(seconds))

    # -- compilation and execution -------------------------------------
    def plan(self) -> QueryPlan:
        """Compile to a plan over the corpus's concatenated namespace."""
        corpus = self.corpus
        config = self._config if self._config is not None \
            else corpus.config
        budget = (
            config.phase2.oracle_budget
            if self._oracle_budget is _UNSET else self._oracle_budget
        )
        return QueryPlan(
            video_name=corpus.name,
            udf_name=corpus.scoring.name,
            num_frames=corpus.total_frames,
            mode="frames",
            k=self._k,
            thres=self._thres,
            window_size=None,
            window_step=None,
            oracle_budget=budget,
            config=config,
            unit_costs=corpus.resolved_unit_costs(),
            deterministic_timing=self._deterministic_timing,
            frame_ranges=self._member_ranges(),
            window_seconds=self._window_seconds,
        )

    def _member_ranges(self):
        """One global-id ``[lo, hi)`` window range per member, or None."""
        from ..video.streaming import window_frames_for

        if self._window_seconds is None:
            return None
        corpus = self.corpus
        ranges = []
        for member, offset in zip(corpus.members, corpus.offsets()):
            video = member.video
            num_frames = len(video)
            horizon = int(getattr(video, "horizon", num_frames))
            window_frames = window_frames_for(
                self._window_seconds, video.fps)
            lo = max(0, horizon - window_frames)
            if lo >= num_frames:
                raise QueryError(
                    f"window of {self._window_seconds:g}s has fully "
                    f"expired on member {member.name!r}: it starts at "
                    f"frame {lo} but the member has only "
                    f"{num_frames} frames")
            ranges.append((int(offset) + lo, int(offset) + num_frames))
        return tuple(ranges)

    def explain(self) -> str:
        """The compiled plan plus the shard map, rendered for humans."""
        corpus = self.corpus
        offsets = corpus.offsets()
        shards = ", ".join(
            f"{member.name}[{int(offset)}:"
            f"{int(offset) + len(member.video)}]"
            for member, offset in zip(corpus.members, offsets)
        )
        budgets = ", ".join(
            f"{name}<={cap}" for name, cap in self._shard_budgets
        ) or "none"
        return "\n".join([
            self.plan().explain(),
            f"  shards   : {shards}",
            f"  caps     : {budgets} (per-shard)",
        ])

    def _shard_budget_list(self):
        caps = dict(self._shard_budgets)
        return [caps.get(name) for name in self.corpus.member_names]

    def run_detailed(
        self,
        *,
        shard_workers: Optional[int] = None,
        backend=None,
    ) -> "CorpusOutcome":
        """Compile and execute federated; returns the full outcome."""
        from .federated import FederatedTopK

        engine = FederatedTopK(
            self.corpus, shard_workers=shard_workers, backend=backend)
        return engine.execute_detailed(
            self.plan(), shard_budgets=self._shard_budget_list())

    def run(
        self,
        *,
        shard_workers: Optional[int] = None,
    ) -> "QueryReport":
        """Compile and execute, returning the global query report."""
        return self.run_detailed(shard_workers=shard_workers).report

    def subscribe(self) -> "CorpusSubscription":
        """Maintain this query live over the corpus's streaming members.

        Requires at least one streaming member; every member append
        refreshes the global federated answer (one report per append).
        """
        from .subscription import CorpusSubscription

        return CorpusSubscription.attach(self)
