"""Federated multi-video top-k: corpora of shards, one global answer.

A :class:`VideoCorpus` bundles N member videos — closed archives,
slices of one archive, or live streams — behind one logical frame
namespace, and :class:`FederatedTopK` answers top-k queries over the
union: Phase 1 runs (or is adopted) independently per shard, a single
merged uncertain relation over ``(shard offset + local frame)`` keys
drives one global Phase-2 cleaning loop, and a federated oracle routes
each confirmation batch to the owning shards while the global budget,
ledger and report stay byte-identical to a plain single-video
execution over the concatenated footage (DESIGN.md §9).

    corpus = VideoCorpus.open(["taipei-bus", "archie-day2"], "count[car]")
    outcome = corpus.query().topk(10).guarantee(0.9).run_detailed()
    outcome.report.summary(); outcome.answer_members()
"""

from .corpus import CorpusMember, VideoCorpus
from .query import CorpusQuery
from .federated import (
    CorpusOutcome,
    FederatedOracle,
    FederatedTopK,
    InlineShardBackend,
    PoolShardBackend,
    merge_phase1_entries,
)
from .subscription import CorpusSubscription

__all__ = [
    "VideoCorpus",
    "CorpusMember",
    "CorpusQuery",
    "CorpusOutcome",
    "CorpusSubscription",
    "FederatedTopK",
    "FederatedOracle",
    "InlineShardBackend",
    "PoolShardBackend",
    "merge_phase1_entries",
]
