"""The federated top-k engine: one global Phase 2 over many shards.

The algorithmic insight is that the paper's Phase-2 machinery never
cares where a tuple's frame physically lives: the uncertain relation,
the CLT confidence state and the Eq-6 candidate selector are functions
of (ids, pmfs) alone. Federation therefore reduces to

1. **merging** per-shard Phase-1 artifacts into one global
   :class:`~repro.core.uncertain.UncertainRelation` over namespaced
   ``offset + local_frame`` ids — on one shared quantization grid, with
   every shard's labelled frames inserted as certain tuples exactly as
   a single-video build would (:func:`merge_phase1_entries`); and
2. **routing** each cleaning batch's confirmations back to the owning
   shards (:class:`FederatedOracle`). The global selector *is* the
   greedy cross-shard budget allocator: every iteration it hands the
   next batch to whichever shards own the frames with the highest
   expected confidence gain (Equation 6 evaluated over the merged
   relation), and the federated oracle enforces the global budget
   before any shard is touched, so the spend — like the answer — is
   identical to a single-video run over the concatenated footage.

Determinism contract (certified by ``tests/test_corpus_equivalence``):
under deterministic timing, the federated report and the canonical
merged ledger are **byte-identical** to a plain
:class:`~repro.api.executor.QueryExecutor` run over the
:class:`~repro.video.views.ConcatVideo` with the same merged entry at
the same global budget — for any shard count, shard-worker count, and
scoring backend (inline threads or the service's process pool).
Failures are deterministic too: per-shard budgets are checked in
canonical member order *before* any charge from the offending batch
lands, and pool-lane shard errors re-raise in canonical member order.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.executor import QueryExecutor
from ..api.session import Phase1Entry
from ..core.phase1 import Phase1Result
from ..core.result import QueryReport
from ..core.uncertain import (
    QuantizationGrid,
    UncertainRelation,
    grid_for,
    quantize_mixtures,
)
from ..errors import (
    OracleBudgetExceededError,
    QueryError,
    ShardBudgetExceededError,
)
from ..oracle.base import Oracle
from ..oracle.cost import CostModel, merge_cost_models
from ..parallel.pool import resolve_workers, thread_map
from ..video.diff import DiffResult

# ----------------------------------------------------------------------
# Phase-1 merging
# ----------------------------------------------------------------------


def merged_grid(
    results: Sequence[Phase1Result],
    *,
    floor: float,
    step: float,
    truncate_sigmas: float,
) -> QuantizationGrid:
    """One quantization grid covering every shard's mixtures and labels.

    Each member's grid is computed exactly as
    :func:`~repro.core.uncertain.grid_for` would for a single-video
    build; the shared grid takes the widest. ``ceil`` is monotone, so
    the maximum of the per-member level counts equals the level count a
    joint build over the concatenated mixtures would choose — which is
    what keeps a corpus-of-one bit-identical to the plain build.
    """
    num_levels = 1
    for result in results:
        grid = grid_for(
            result.mixtures,
            floor=floor,
            step=step,
            extra_scores=list(result.known_scores.values()),
            truncate_sigmas=truncate_sigmas,
        )
        num_levels = max(num_levels, grid.num_levels)
    return QuantizationGrid(floor=floor, step=step, num_levels=num_levels)


def merge_phase1_results(
    results: Sequence[Phase1Result],
    offsets: Sequence[int],
    *,
    floor: float,
    step: float,
    truncate_sigmas: float,
) -> Phase1Result:
    """Merge per-shard Phase-1 results into one global result.

    Mirrors :func:`~repro.core.uncertain.build_relation` structurally:
    retained-frame pmf rows first (member order — globally ascending
    ids, since offsets are cumulative), then one point-mass row per
    labelled-but-not-retained frame in ascending global order, then the
    labelled frames marked certain in member insertion order. For a
    single member this reproduces the plain build bit for bit.

    ``proxy`` / ``grid_result`` / ``mixtures`` carry the *first*
    member's artifacts (canonical; heterogeneous shards train distinct
    proxies and no single model describes the union — the merged
    relation is the cross-shard artifact). The merged result serves
    frame-mode queries only.
    """
    grid = merged_grid(
        results, floor=floor, step=step, truncate_sigmas=truncate_sigmas)

    id_blocks: List[np.ndarray] = []
    pmf_blocks: List[np.ndarray] = []
    rep_blocks: List[np.ndarray] = []
    known_global: Dict[int, float] = {}
    retained_global: set = set()
    total_frames = 0
    for offset, result in zip(offsets, results):
        offset = int(offset)
        retained = result.diff_result.retained.astype(np.int64) + offset
        id_blocks.append(retained)
        retained_global.update(int(i) for i in retained)
        pmf_blocks.append(
            quantize_mixtures(
                result.mixtures, grid, truncate_sigmas=truncate_sigmas))
        rep_blocks.append(
            result.diff_result.representative.astype(np.int64) + offset)
        for frame, score in result.known_scores.items():
            known_global[int(frame) + offset] = float(score)
        total_frames += result.diff_result.num_frames

    extra_ids = sorted(set(known_global) - retained_global)
    full_ids = np.concatenate(
        [*id_blocks, np.asarray(extra_ids, dtype=np.int64)])
    extra_rows = np.zeros((len(extra_ids), grid.num_levels))
    for row, frame in enumerate(extra_ids):
        level = int(grid.level_of(known_global[frame]))
        extra_rows[row, level] = 1.0
    pmf = np.vstack([*pmf_blocks, extra_rows])

    relation = UncertainRelation(full_ids, pmf, grid)
    for frame, score in known_global.items():
        position = relation.position(frame)
        if not relation.certain[position]:
            relation.mark_certain(position, score)
        else:  # pragma: no cover - mirrors build_relation's guard
            relation.exact_scores[position] = float(score)

    diff = DiffResult(
        retained=np.concatenate(id_blocks),
        representative=np.concatenate(rep_blocks),
        num_frames=total_frames,
    )
    first = results[0]
    return Phase1Result(
        relation=relation,
        proxy=first.proxy,
        grid_result=first.grid_result,
        diff_result=diff,
        known_scores=known_global,
        mixtures=first.mixtures,
    )


def merge_phase1_entries(
    entries: Sequence[Phase1Entry],
    offsets: Sequence[int],
    *,
    floor: float,
    step: float,
    truncate_sigmas: float,
) -> Phase1Entry:
    """Merge per-shard entries: artifacts, call counts and ledgers.

    The merged ledger folds the member ledgers key-wise in canonical
    member order — the same association a later
    ``merge_cost_models([*phase1_costs, phase2])`` produces, so the
    corpus ``merged_cost`` is bit-identical to the reference ledger
    built from this entry.
    """
    result = merge_phase1_results(
        [entry.result for entry in entries],
        offsets,
        floor=floor,
        step=step,
        truncate_sigmas=truncate_sigmas,
    )
    return Phase1Entry(
        result=result,
        oracle_calls=sum(entry.oracle_calls for entry in entries),
        cost_model=merge_cost_models(
            [entry.cost_model for entry in entries]),
    )


# ----------------------------------------------------------------------
# Shard scoring backends
# ----------------------------------------------------------------------


class InlineShardBackend:
    """Score shard sub-batches in-process (optionally on threads).

    Jobs are ``(member_index, local_frame_ids)`` pairs in canonical
    member order; results come back aligned. numpy releases the GIL in
    the scoring kernels, so shards overlap under ``workers > 1``, and
    :func:`~repro.parallel.pool.thread_map` consumes results in input
    order — the earliest member's failure is the one that re-raises.
    """

    def __init__(self, videos: Sequence, scoring, *, workers: int = 1):
        self.videos = list(videos)
        self.scoring = scoring
        self.workers = max(1, int(workers))

    def score_many(
        self, jobs: Sequence[Tuple[int, Sequence[int]]]
    ) -> List[np.ndarray]:
        def run(job: Tuple[int, Sequence[int]]) -> np.ndarray:
            member, indices = job
            video = self.videos[member]
            frames = [video.frame(i) for i in indices]
            return np.asarray(self.scoring(frames), dtype=np.float64)

        return thread_map(run, list(jobs), workers=self.workers)


@dataclass(frozen=True)
class _ShardScoreTask:
    """One shard sub-batch shipped to a pool worker."""

    member_key: Tuple[int, int]
    #: Pickled ``(video, scoring)`` — the same ``bytes`` object for
    #: every task on the member, unpickled once per worker (memoized).
    blob: bytes
    indices: Tuple[int, ...]


#: member_key -> (video, scoring), memoized per pool worker.
_WORKER_MEMBERS: Dict[Tuple[int, int], Tuple[object, object]] = {}


def _pool_score_member(task: _ShardScoreTask) -> np.ndarray:
    """Score one shard sub-batch in a pool worker."""
    memo = _WORKER_MEMBERS.get(task.member_key)
    if memo is None:
        memo = pickle.loads(task.blob)
        _WORKER_MEMBERS[task.member_key] = memo
    video, scoring = memo
    frames = [video.frame(i) for i in task.indices]
    return np.asarray(scoring(frames), dtype=np.float64)


class PoolShardBackend:
    """Ship shard sub-batches to a persistent process pool.

    The service's process lane for corpus queries: each member's
    ``(video, scoring)`` is pickled once and memoized per worker (the
    :mod:`repro.service.backend` protocol), so steady-state batches
    ship only frame ids. Futures are gathered in canonical member
    order and the earliest member's exception re-raises first —
    mirroring the sweep runner's grid-order discipline, so a crashed
    shard worker fails the corpus query deterministically.
    """

    _uids = iter(range(1 << 62))

    def __init__(self, pool, videos: Sequence, scoring):
        self.pool = pool
        self.videos = list(videos)
        self.scoring = scoring
        self._uid = next(self._uids)
        self._blobs: List[Optional[bytes]] = [None] * len(self.videos)

    def _blob(self, member: int) -> bytes:
        blob = self._blobs[member]
        if blob is None:
            blob = pickle.dumps(
                (self.videos[member], self.scoring),
                protocol=pickle.HIGHEST_PROTOCOL)
            self._blobs[member] = blob
        return blob

    def score_many(
        self, jobs: Sequence[Tuple[int, Sequence[int]]]
    ) -> List[np.ndarray]:
        futures = [
            self.pool.submit(
                _pool_score_member,
                _ShardScoreTask(
                    member_key=(self._uid, member),
                    blob=self._blob(member),
                    indices=tuple(int(i) for i in indices),
                ),
            )
            for member, indices in jobs
        ]
        for future in futures:
            error = future.exception()
            if error is not None:
                raise error
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# The federated confirming oracle
# ----------------------------------------------------------------------


class FederatedOracle(Oracle):
    """A confirming oracle that routes each batch to its shards.

    Charging, call counting and *global* budget enforcement are
    byte-identical to the plain :class:`~repro.oracle.base.Oracle`: the
    global ledger receives one charge per batch and the budget check
    precedes any work, so a federated report cannot differ from the
    concatenated reference. On top of that it keeps per-shard
    attribution — one :class:`~repro.oracle.cost.CostModel` view, call
    counter and optional budget per member — and consults the members'
    shared score caches (local frame ids) when the corpus is
    service-bound.

    Failure discipline: the global budget, then every shard budget in
    canonical member order, are checked *before* the batch charges
    anything — a failed allocation leaves every ledger (global and
    per-shard) exactly as it was, so retries never double-charge.
    """

    def __init__(
        self,
        scoring,
        cost_model: CostModel,
        *,
        videos: Sequence,
        member_names: Sequence[str],
        offsets: np.ndarray,
        backend,
        shard_costs: Sequence[CostModel],
        caches: Sequence[Optional[object]],
        budget: Optional[int] = None,
        shard_budgets: Optional[Sequence[Optional[int]]] = None,
        cost_key: str = "oracle_confirm",
    ):
        super().__init__(
            scoring, cost_model, budget=budget, cost_key=cost_key)
        self.videos = list(videos)
        self.member_names = list(member_names)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.backend = backend
        self.shard_costs = list(shard_costs)
        self.caches = list(caches)
        self.shard_budgets = list(
            shard_budgets if shard_budgets is not None
            else [None] * len(self.videos))
        self.shard_calls = [0] * len(self.videos)
        self.fresh_calls = 0

    # ------------------------------------------------------------------
    def locate(self, global_id: int) -> Tuple[int, int]:
        member = int(np.searchsorted(
            self.offsets, int(global_id), side="right")) - 1
        return member, int(global_id) - int(self.offsets[member])

    def score(self, video, indices: Sequence[int]) -> np.ndarray:
        indices = [int(i) for i in indices]
        if self.budget is not None and \
                self.calls + len(indices) > self.budget:
            raise OracleBudgetExceededError(self.budget)

        # Group by owning member, preserving intra-batch positions.
        groups: Dict[int, List[Tuple[int, int]]] = {}
        for position, global_id in enumerate(indices):
            member, local = self.locate(global_id)
            groups.setdefault(member, []).append((position, local))
        order = sorted(groups)

        # Per-shard budgets, canonical member order, before any charge.
        for member in order:
            limit = self.shard_budgets[member]
            if limit is not None and \
                    self.shard_calls[member] + len(groups[member]) > limit:
                raise ShardBudgetExceededError(
                    limit, self.member_names[member])

        self.calls += len(indices)
        self.cost_model.charge(self.cost_key, len(indices))

        # Resolve cached scores, then fan the misses out per shard.
        known: Dict[int, Dict[int, float]] = {}
        jobs: List[Tuple[int, List[int]]] = []
        for member in order:
            locals_ = [local for _, local in groups[member]]
            cache = self.caches[member]
            found = cache.lookup(locals_) if cache is not None else {}
            seen: set = set()
            missing = [
                local for local in locals_
                if local not in found
                and not (local in seen or seen.add(local))
            ]
            known[member] = found
            if missing:
                jobs.append((member, missing))
        fresh = self.backend.score_many(jobs) if jobs else []
        for (member, missing), scores in zip(jobs, fresh):
            cache = self.caches[member]
            for local, score in zip(missing, scores):
                score = float(score)
                known[member][local] = score
                if cache is not None:
                    cache.put(local, score)
            self.fresh_calls += len(missing)

        # Per-shard attribution and the scatter back into batch order.
        out = np.empty(len(indices), dtype=np.float64)
        for member in order:
            pairs = groups[member]
            self.shard_calls[member] += len(pairs)
            ledger = self.shard_costs[member]
            ledger.charge(self.cost_key, len(pairs))
            ledger.charge("decode", len(pairs))
            for position, local in pairs:
                out[position] = known[member][local]
        return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class CorpusOutcome:
    """Everything one federated corpus query produced.

    ``report`` is a standard :class:`~repro.core.result.QueryReport`
    whose ``answer_ids`` are global (namespaced) frame ids —
    byte-identical to the concatenated reference execution.
    """

    report: QueryReport
    #: The global Phase-2 ledger behind the report.
    phase2_cost: CostModel
    #: Per-shard Phase-1 ledgers, canonical member order (a single
    #: archive ledger for split corpora).
    phase1_costs: List[CostModel]
    #: Per-shard Phase-2 attribution views (confirm + decode charges).
    shard_costs: List[CostModel]
    #: Confirmations each shard served.
    shard_confirms: List[int]
    member_names: List[str]
    offsets: List[int]
    #: Physical (cache-miss) confirmations, when members share caches.
    fresh_confirm_calls: Optional[int] = None

    def merged_cost(self) -> CostModel:
        """The canonical corpus ledger (DESIGN.md §9 merge order).

        Per-shard Phase-1 ledgers fold in canonical member order, each
        exactly once, then the global Phase-2 ledger — the association
        the reference execution's ``[entry ledger, phase2]`` merge
        produces, so the result is byte-comparable against it.
        """
        return merge_cost_models([*self.phase1_costs, self.phase2_cost])

    def answer_members(self) -> List[Tuple[str, int]]:
        """The answer as ``(member_name, local_frame)`` pairs."""
        offsets = np.asarray(self.offsets, dtype=np.int64)
        resolved = []
        for global_id in self.report.answer_ids:
            member = int(np.searchsorted(
                offsets, int(global_id), side="right")) - 1
            resolved.append(
                (self.member_names[member],
                 int(global_id) - int(offsets[member])))
        return resolved

    def allocation(self) -> Dict[str, int]:
        """Oracle confirmations the selector allocated to each shard."""
        return dict(zip(self.member_names, self.shard_confirms))


class _FederatedExecutor(QueryExecutor):
    """The plain executor with the confirming oracle swapped out.

    Relation cloning, the cleaning loop, ledger assembly and report
    construction are inherited verbatim — the corpus report *is* a
    plain report over the merged relation. Only frame-mode plans are
    accepted: window semantics across shard boundaries are undefined.
    """

    def __init__(
        self,
        session,
        *,
        videos,
        member_names,
        offsets,
        caches,
        backend,
        shard_budgets,
    ):
        super().__init__(session, workers=1)
        self.score_cache = None  # members route their own caches
        self._videos = videos
        self._member_names = member_names
        self._offsets = offsets
        self._caches = caches
        self._backend = backend
        self._shard_budgets = shard_budgets

    def execute_detailed(self, plan):
        if plan.mode != "frames":
            raise QueryError(
                "corpus queries rank frames; window aggregation across "
                "shard boundaries is undefined — query a member "
                "session for windows")
        return super().execute_detailed(plan)

    def _confirm_oracle(self, plan, phase2_cost: CostModel) -> Oracle:
        shard_costs = [
            CostModel(
                plan.unit_costs,
                wall_clock=not plan.deterministic_timing)
            for _ in self._videos
        ]
        return FederatedOracle(
            self.session.scoring,
            phase2_cost,
            videos=self._videos,
            member_names=self._member_names,
            offsets=self._offsets,
            backend=self._backend,
            shard_costs=shard_costs,
            caches=self._caches,
            budget=plan.oracle_budget,
            shard_budgets=self._shard_budgets,
        )


class FederatedTopK:
    """Federated top-k over a :class:`~repro.corpus.corpus.VideoCorpus`.

    ``shard_workers`` fans per-shard confirmation scoring across
    threads (default: ``REPRO_WORKERS``, else serial); ``backend``
    overrides the scoring transport entirely (the service passes a
    :class:`PoolShardBackend` on its process lane). Neither can change
    a report byte.
    """

    def __init__(
        self,
        corpus,
        *,
        shard_workers: Optional[int] = None,
        backend=None,
    ):
        self.corpus = corpus
        self.shard_workers = resolve_workers(shard_workers)
        self.backend = backend

    def execute(self, plan, *,
                shard_budgets: Optional[Sequence[Optional[int]]] = None
                ) -> QueryReport:
        return self.execute_detailed(
            plan, shard_budgets=shard_budgets).report

    def execute_detailed(
        self,
        plan,
        *,
        shard_budgets: Optional[Sequence[Optional[int]]] = None,
    ) -> CorpusOutcome:
        """Run one compiled plan federated; returns the full outcome."""
        corpus = self.corpus
        state = corpus.merged_state(plan.config)
        videos = [member.video for member in corpus.members]
        backend = self.backend if self.backend is not None \
            else InlineShardBackend(
                videos, corpus.scoring, workers=self.shard_workers)
        caches = [
            getattr(member.session, "shared_score_cache", None)
            for member in corpus.members
        ]
        executor = _FederatedExecutor(
            state.session,
            videos=videos,
            member_names=corpus.member_names,
            offsets=corpus.offsets(),
            caches=caches,
            backend=backend,
            shard_budgets=shard_budgets,
        )
        detail = executor.execute_detailed(plan)
        oracle = executor.last_confirm_oracle
        assert isinstance(oracle, FederatedOracle)
        return CorpusOutcome(
            report=detail.report,
            phase2_cost=detail.phase2_cost,
            phase1_costs=list(state.phase1_costs),
            shard_costs=list(oracle.shard_costs),
            shard_confirms=list(oracle.shard_calls),
            member_names=corpus.member_names,
            offsets=[int(o) for o in corpus.offsets()],
            fresh_confirm_calls=(
                oracle.fresh_calls if any(
                    cache is not None for cache in caches) else None),
        )
