"""Phase 2: Top-K processing via online uncertain data cleaning.

Starting from the uncertain relation D0, the cleaner iterates:

1. extract the Top-K of the *certain* tuples (the certain-result
   condition) and compute its confidence with Topk-prob;
2. if the confidence reaches ``thres``, stop;
3. otherwise Select-candidate picks the batch of frames whose cleaning
   maximizes the expected next confidence, the oracle reveals their
   exact scores (batch inference, paper Section 3.5), and the joint CDF
   is updated incrementally.

A bootstrap stage handles the corner where fewer than K tuples are
certain yet (possible with tiny training samples): frames are cleaned
in descending expected score until a K-sized certain answer exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import Phase2Config
from ..errors import GuaranteeUnreachableError, QueryError
from ..trace import span as trace_span
from .select_candidate import CandidateSelector, SelectionStats
from .topk_prob import ConfidenceState
from .uncertain import UncertainRelation

#: Signature of the cleaning callback: tuple ids -> exact scores.
CleanFn = Callable[[Sequence[int]], np.ndarray]


@dataclass
class Phase2Result:
    """Outcome of the cleaning loop."""

    #: Tuple ids of the answer, best score first.
    answer_ids: List[int]
    #: Exact oracle scores aligned with ``answer_ids``.
    answer_scores: List[float]
    #: Confidence p-hat of the answer (>= thres on success).
    confidence: float
    #: Number of Select-candidate iterations run.
    iterations: int
    #: Number of tuples cleaned during Phase 2 (excl. Phase 1 labels).
    cleaned: int
    #: Confidence trace, one entry per iteration.
    confidence_trace: List[float] = field(default_factory=list)
    #: Scan-work instrumentation from the selector.
    selection_stats: Optional[SelectionStats] = None


class TopKCleaner:
    """Ground-truth-in-the-loop uncertain Top-K processor."""

    def __init__(
        self,
        relation: UncertainRelation,
        clean_fn: CleanFn,
        config: Phase2Config = Phase2Config(),
        *,
        reader=None,
        cost_model=None,
    ):
        self.relation = relation
        self.clean_fn = clean_fn
        self.config = config
        self.reader = reader
        self.cost_model = cost_model
        self.state = ConfidenceState(relation)
        self.selector = CandidateSelector(
            relation, self.state, config.select_candidate)
        self.cleaned = 0

    # ------------------------------------------------------------------
    def _clean_positions(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.int64)
        ids = [int(self.relation.ids[p]) for p in positions]
        if self.reader is not None:
            self.reader.prefetch(len(ids))
        scores = np.asarray(self.clean_fn(ids), dtype=np.float64)
        if scores.shape != (len(ids),):
            raise QueryError(
                f"clean_fn returned shape {scores.shape} for {len(ids)} ids")
        # One vectorized pass per batch over the joint CDF and the
        # relation instead of one O(L) update per tuple.
        self.state.remove_many(positions)
        self.relation.mark_certain_many(positions, scores)
        self.cleaned += len(ids)

    def _certain_topk(self, k: int) -> Tuple[np.ndarray, int, int]:
        """Current answer positions plus (S_k, S_p) grid levels.

        Ties break toward lower tuple id, matching the exact-result
        definition used by the metrics.
        """
        certain_positions = np.flatnonzero(self.relation.certain)
        if certain_positions.size < k:
            raise QueryError("fewer than K certain tuples")
        scores = self.relation.exact_scores[certain_positions]
        ids = self.relation.ids[certain_positions]
        order = np.lexsort((ids, -scores))
        top = certain_positions[order[:k]]
        levels = self.relation.grid.level_of(self.relation.exact_scores[top])
        k_level = int(levels[-1])
        p_level = int(levels[-2]) if k >= 2 else self.relation.grid.max_level
        return top, k_level, p_level

    def _bootstrap(self, k: int) -> None:
        """Clean highest-expected-score frames until K are certain."""
        if len(self.relation) < k:
            raise GuaranteeUnreachableError(
                f"relation has {len(self.relation)} tuples, need K={k}")
        while self.relation.num_certain < k:
            missing = k - self.relation.num_certain
            uncertain = self.relation.uncertain_positions()
            expected = self.relation.expected_scores()[uncertain]
            take = min(max(missing, self.config.batch_size), uncertain.size)
            best = np.argsort(-expected, kind="stable")[:take]
            self._clean_positions(uncertain[best])

    # ------------------------------------------------------------------
    def run(self, k: int, thres: float) -> Phase2Result:
        """Clean until the Top-K confidence reaches ``thres``."""
        if k < 1:
            raise QueryError("K must be >= 1")
        if not 0.0 < thres <= 1.0:
            raise QueryError("thres must be in (0, 1]")

        with trace_span(
                "bootstrap", category="phase2",
                ledger=self.cost_model) as boot:
            before = self.cleaned
            self._bootstrap(k)
            if boot is not None:
                boot.set(cleaned=self.cleaned - before)
        trace: List[float] = []
        iteration = 0
        while True:
            with trace_span(
                    "iteration", category="phase2",
                    ledger=self.cost_model) as step:
                top, k_level, p_level = self._certain_topk(k)
                confidence = self.state.topk_prob(k_level)
                trace.append(confidence)
                if step is not None:
                    step.set(iteration=iteration, confidence=confidence)
                if confidence >= thres or self.state.num_uncertain == 0:
                    answer_ids = [int(self.relation.ids[p]) for p in top]
                    answer_scores = [
                        float(self.relation.exact_scores[p]) for p in top]
                    return Phase2Result(
                        answer_ids=answer_ids,
                        answer_scores=answer_scores,
                        confidence=confidence,
                        iterations=iteration,
                        cleaned=self.cleaned,
                        confidence_trace=trace,
                        selection_stats=self.selector.stats,
                    )
                if self.cost_model is not None:
                    with self.cost_model.timer("select_candidate"):
                        candidates = self.selector.select(
                            iteration, k_level, p_level,
                            self.config.batch_size)
                else:
                    candidates = self.selector.select(
                        iteration, k_level, p_level, self.config.batch_size)
                if candidates.size == 0:  # pragma: no cover - defensive
                    raise GuaranteeUnreachableError(
                        "no uncertain tuples left but confidence below thres")
                if self.reader is not None and \
                        self.selector._order is not None:
                    order_ids = self.relation.ids[self.selector._order]
                    self.reader.set_priority_order(order_ids.tolist())
                self._clean_positions(candidates)
                if step is not None:
                    step.set(cleaned=int(candidates.size))
            iteration += 1
