"""The Everest engine: two-phase Top-K queries with guarantees.

:class:`EverestEngine` ties everything together:

* Phase 1 (:mod:`repro.core.phase1`) is run once per (video, UDF) and
  cached — D0 does not depend on K / thres / window size, so parameter
  sweeps re-run only Phase 2, while every report still accounts the
  full Phase 1 cost (the paper re-runs it per query; the ledger
  arithmetic is identical).
* Phase 2 clones the cached relation and runs the cleaning loop with a
  fresh cost ledger, so each query's breakdown (Table 8) is exact.

Example
-------
>>> from repro.video import TrafficVideo
>>> from repro.oracle import counting_udf
>>> from repro.core import EverestEngine
>>> from repro.config import EverestConfig
>>> video = TrafficVideo("demo", 2_000, seed=1)
>>> engine = EverestEngine(video, counting_udf("car"),
...                        config=EverestConfig.fast())
>>> report = engine.topk(k=5, thres=0.9)
>>> report.confidence >= 0.9
True
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..config import EverestConfig
from ..errors import QueryError
from ..oracle.base import Oracle, ScoringFunction
from ..oracle.cost import CostModel
from ..video.synthetic import SyntheticVideo
from .cleaner import TopKCleaner
from .phase1 import Phase1Result, run_phase1
from .result import PhaseBreakdown, QueryReport
from .windows import (
    WINDOW_STEP_DIVISOR,
    WindowCleaner,
    build_window_relation,
    num_windows,
)


class EverestEngine:
    """Top-K video analytics with probabilistic guarantees."""

    def __init__(
        self,
        video: SyntheticVideo,
        scoring: ScoringFunction,
        *,
        config: EverestConfig = EverestConfig(),
        unit_costs: Optional[Dict[str, float]] = None,
    ):
        self.video = video
        self.scoring = scoring
        self.config = config
        # Labelling and confirming charge the same per-frame latency as
        # the UDF's oracle, under dedicated Table 8 ledger keys.
        base = CostModel(unit_costs)
        oracle_unit = base.unit_costs.get(scoring.cost_key, 0.0)
        overrides = dict(unit_costs or {})
        overrides.setdefault("oracle_label", oracle_unit)
        overrides.setdefault("oracle_confirm", oracle_unit)
        self._unit_costs = overrides
        self.phase1_cost = CostModel(overrides)
        self._phase1: Optional[Phase1Result] = None
        self._phase1_oracle_calls = 0

    # ------------------------------------------------------------------
    def _ensure_phase1(self) -> Phase1Result:
        if self._phase1 is None:
            oracle = Oracle(
                self.scoring, self.phase1_cost, cost_key="oracle_label")
            self._phase1 = run_phase1(
                self.video,
                oracle,
                config=self.config.phase1,
                diff_config=self.config.diff,
                cost_model=self.phase1_cost,
                seed=self.config.seed,
            )
            self._phase1_oracle_calls = oracle.calls
        return self._phase1

    @property
    def phase1_result(self) -> Phase1Result:
        """The cached Phase 1 artifacts (runs Phase 1 on first use)."""
        return self._ensure_phase1()

    def scan_seconds(self) -> float:
        """Simulated cost of scan-and-test with this UDF's oracle."""
        costs = CostModel(self._unit_costs).unit_costs
        per_frame = costs.get(self.scoring.cost_key, 0.0) + costs["decode"]
        return len(self.video) * per_frame

    def _breakdown(self, phase2_cost: CostModel) -> PhaseBreakdown:
        p1 = self.phase1_cost
        return PhaseBreakdown(
            label_sample=p1.seconds("oracle_label"),
            cmdn_training=p1.seconds("cmdn_train"),
            populate_d0=(
                p1.seconds("cmdn_infer")
                + p1.seconds("diff_detect")
                + p1.seconds("decode")
            ),
            select_candidate=phase2_cost.seconds("select_candidate"),
            confirm_oracle=(
                phase2_cost.seconds("oracle_confirm")
                + phase2_cost.seconds("decode")
            ),
        )

    # ------------------------------------------------------------------
    def topk(self, k: int = 50, thres: float = 0.9) -> QueryReport:
        """Top-K frames whose answer is exact with probability >= thres."""
        phase1 = self._ensure_phase1()
        phase2_cost = CostModel(self._unit_costs)
        relation = phase1.relation.copy()
        confirm_oracle = Oracle(
            self.scoring,
            phase2_cost,
            cost_key="oracle_confirm",
            budget=self.config.phase2.oracle_budget,
        )

        def clean_fn(ids: Sequence[int]) -> np.ndarray:
            phase2_cost.charge("decode", len(ids))
            return confirm_oracle.score(self.video, ids)

        cleaner = TopKCleaner(
            relation,
            clean_fn,
            self.config.phase2,
            cost_model=phase2_cost,
        )
        outcome = cleaner.run(k, thres)
        return self._report(
            outcome, phase1, phase2_cost,
            k=k, thres=thres, window_size=None,
            oracle_calls=self._phase1_oracle_calls + confirm_oracle.calls,
            num_tuples=len(relation),
        )

    def topk_windows(
        self,
        k: int = 50,
        thres: float = 0.9,
        *,
        window_size: int,
        window_step: Optional[float] = None,
    ) -> QueryReport:
        """Top-K tumbling windows ranked by mean frame score."""
        if window_size < 1:
            raise QueryError("window_size must be >= 1")
        if window_size == 1:
            return self.topk(k, thres)
        phase1 = self._ensure_phase1()
        if window_step is None:
            window_step = self.scoring.step / WINDOW_STEP_DIVISOR
        relation = build_window_relation(
            phase1.mixtures,
            phase1.diff_result.retained,
            phase1.diff_result,
            window_size=window_size,
            floor=self.scoring.score_floor,
            step=window_step,
            truncate_sigmas=self.config.phase1.truncate_sigmas,
        )
        phase2_cost = CostModel(self._unit_costs)
        confirm_oracle = Oracle(
            self.scoring,
            phase2_cost,
            cost_key="oracle_confirm",
            budget=self.config.phase2.oracle_budget,
        )
        clean_fn = WindowCleaner(
            video=self.video,
            oracle=confirm_oracle,
            window_size=window_size,
            sample_fraction=self.config.phase2.window_sample_fraction,
            seed=self.config.seed,
            cost_model=phase2_cost,
        )
        cleaner = TopKCleaner(
            relation,
            clean_fn,
            self.config.phase2,
            cost_model=phase2_cost,
        )
        outcome = cleaner.run(k, thres)
        return self._report(
            outcome, phase1, phase2_cost,
            k=k, thres=thres, window_size=window_size,
            oracle_calls=self._phase1_oracle_calls + confirm_oracle.calls,
            num_tuples=len(relation),
        )

    # ------------------------------------------------------------------
    def _report(
        self,
        outcome,
        phase1: Phase1Result,
        phase2_cost: CostModel,
        *,
        k: int,
        thres: float,
        window_size: Optional[int],
        oracle_calls: int,
        num_tuples: int,
    ) -> QueryReport:
        best = phase1.grid_result.best_history
        return QueryReport(
            video_name=self.video.name,
            udf_name=self.scoring.name,
            k=k,
            thres=thres,
            window_size=window_size,
            num_frames=len(self.video),
            answer_ids=outcome.answer_ids,
            answer_scores=outcome.answer_scores,
            confidence=outcome.confidence,
            iterations=outcome.iterations,
            cleaned=outcome.cleaned,
            num_tuples=num_tuples,
            num_retained=phase1.diff_result.num_retained,
            oracle_calls=oracle_calls,
            breakdown=self._breakdown(phase2_cost),
            scan_seconds=self.scan_seconds(),
            proxy_hyperparameters=best.hyperparameters,
            holdout_nll=best.holdout_nll,
            confidence_trace=outcome.confidence_trace,
            selection_examine_fraction=(
                outcome.selection_stats.examine_fraction
                if outcome.selection_stats else 0.0
            ),
        )
