"""The Everest engine: the legacy imperative facade.

:class:`EverestEngine` predates the declarative query API and is kept
as a thin back-compat shim: it opens a :class:`~repro.api.session.Session`
and translates ``topk()`` / ``topk_windows()`` calls into fluent
queries, so both surfaces share one Phase-1 cache, one executor and
one cost ledger. New code should use the session API directly::

    from repro.api import Session
    session = Session(video, scoring, config=EverestConfig.fast())
    report = session.query().topk(5).guarantee(0.9).run()

Example (legacy surface)
------------------------
>>> from repro.video import TrafficVideo
>>> from repro.oracle import counting_udf
>>> from repro.core import EverestEngine
>>> from repro.config import EverestConfig
>>> video = TrafficVideo("demo", 2_000, seed=1)
>>> engine = EverestEngine(video, counting_udf("car"),
...                        config=EverestConfig.fast())
>>> report = engine.topk(k=5, thres=0.9)
>>> report.confidence >= 0.9
True
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import EverestConfig
from ..oracle.base import ScoringFunction
from ..video.synthetic import SyntheticVideo
from .phase1 import Phase1Result
from .result import QueryReport


class EverestEngine:
    """Top-K video analytics with probabilistic guarantees (legacy API)."""

    def __init__(
        self,
        video: SyntheticVideo,
        scoring: ScoringFunction,
        *,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
    ):
        from ..api.session import Session

        self.session = Session(
            video, scoring, config=config, unit_costs=unit_costs)

    # -- session passthroughs ------------------------------------------
    @property
    def video(self) -> SyntheticVideo:
        return self.session.video

    @property
    def scoring(self) -> ScoringFunction:
        return self.session.scoring

    @property
    def config(self) -> EverestConfig:
        return self.session.config

    @property
    def phase1_result(self) -> Phase1Result:
        """The cached Phase 1 artifacts (runs Phase 1 on first use)."""
        return self.session.phase1_result

    @property
    def phase1_cost(self):
        """The Phase 1 cost ledger (empty until Phase 1 runs)."""
        return self.session.phase1_cost_model()

    @property
    def _unit_costs(self) -> Dict[str, float]:
        return self.session._unit_costs

    def scan_seconds(self) -> float:
        """Simulated cost of scan-and-test with this UDF's oracle."""
        return self.session.scan_seconds()

    # -- queries -------------------------------------------------------
    def topk(self, k: int = 50, thres: float = 0.9) -> QueryReport:
        """Top-K frames whose answer is exact with probability >= thres."""
        return self.session.query().topk(k).guarantee(thres).run()

    def topk_windows(
        self,
        k: int = 50,
        thres: float = 0.9,
        *,
        window_size: int,
        window_step: Optional[float] = None,
    ) -> QueryReport:
        """Top-K tumbling windows ranked by mean frame score."""
        return (
            self.session.query()
            .windows(size=window_size, step=window_step)
            .topk(k)
            .guarantee(thres)
            .run()
        )
