"""Select-candidate: choosing the best frames to clean (Section 3.3.2).

Cleaning frame ``f`` yields an (unknown) new confidence ``X_f``; the
selector picks ``f* = argmax E[X_f]``. Equation 5's case analysis over
the revealed score ``s`` gives a closed form (Equation 6):

* ``s <= S_k``     — answer unchanged; the term telescopes to the
  current-confidence contribution ``F_f(S_k) * prod_{f' != f} F_f'(S_k)``;
* ``S_k < s <= S_p`` — ``f`` becomes the new K-th with threshold ``s``;
* ``s > S_p``      — the old penultimate becomes the threshold.

All products run over the *currently uncertain* tuples with ``f``
factored out, which :meth:`ConfidenceState.joint_cdf_excluding`
provides in vectorized, zero-safe form.

To avoid computing ``E[X_f]`` for every uncertain frame, Equation 7
bounds it by ``p-hat + gamma * psi(f)`` with the frame-independent
``gamma = H_u(S_p)`` and sort-factor ``psi(f) = (1-F_f(S_k))/F_f(S_p)``.
Frames are scanned in descending *stale* psi order (Equation 8 — psi
only shrinks as ``S_k``/``S_p`` grow, so a stale psi is still an upper
bound) and the scan stops early once the bound falls below the current
batch's worst kept expectation. The stale order is refreshed on the
paper's schedule: every ``resort_every`` iterations during the first
``resort_warmup`` iterations, afterwards only when ``S_k`` or ``S_p``
change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import SelectCandidateConfig
from .topk_prob import ConfidenceState
from .uncertain import UncertainRelation

#: Clamp for zero CDFs inside the psi sort key. Frames with
#: ``F_f(S_p) = 0`` certainly beat the penultimate score, so they sort
#: (correctly) to the very front of the scan order.
_TINY = 1e-300

#: Vectorized scan chunk.
_CHUNK = 512


@dataclass
class SelectionStats:
    """Instrumentation: how much work the early-stopped scan did."""

    calls: int = 0
    frames_examined: int = 0
    frames_available: int = 0
    resorts: int = 0

    @property
    def examine_fraction(self) -> float:
        if self.frames_available == 0:
            return 0.0
        return self.frames_examined / self.frames_available


class CandidateSelector:
    """Early-stopping argmax-E[X_f] selector over uncertain tuples."""

    def __init__(
        self,
        relation: UncertainRelation,
        state: ConfidenceState,
        config: SelectCandidateConfig = SelectCandidateConfig(),
    ):
        self.relation = relation
        self.state = state
        self.config = config
        self.stats = SelectionStats()
        self._order: Optional[np.ndarray] = None
        self._stale_psi: Optional[np.ndarray] = None
        self._sort_iteration = -(10 ** 9)
        self._sort_levels: Tuple[int, int] = (-1, -1)

    # ------------------------------------------------------------------
    def psi(
        self, positions: np.ndarray, k_level: int, p_level: int
    ) -> np.ndarray:
        """Sort factor ``(1 - F_f(S_k)) / F_f(S_p)`` (Equation 7)."""
        cdf = self.relation.cdf
        survival = 1.0 - cdf[positions, k_level]
        denominator = np.maximum(cdf[positions, p_level], _TINY)
        return survival / denominator

    def expected_confidences(
        self,
        positions: np.ndarray,
        k_level: int,
        p_level: int,
    ) -> np.ndarray:
        """Vectorized Equation 6 for the given uncertain positions."""
        positions = np.asarray(positions, dtype=np.int64)
        cdf = self.relation.cdf
        pmf = self.relation.pmf

        # One fused exclusion matrix over every level of the case
        # analysis: column 0 is S_k, the last column is S_p.
        levels = np.arange(k_level, p_level + 1)
        excluding = self.state.joint_cdf_excluding_levels(positions, levels)

        # Case s <= S_k: the answer and threshold are unchanged.
        expected = cdf[positions, k_level] * excluding[:, 0]

        # Case S_k < s <= S_p: f becomes the K-th with threshold s.
        if p_level > k_level:
            weights = pmf[positions, k_level + 1:p_level + 1]
            expected = expected + (weights * excluding[:, 1:]).sum(axis=1)

        # Case s > S_p: the old penultimate becomes the threshold.
        tail = 1.0 - cdf[positions, p_level]
        expected = expected + tail * excluding[:, -1]
        return expected

    # ------------------------------------------------------------------
    def _needs_resort(self, iteration: int, k_level: int, p_level: int) -> bool:
        if self._order is None:
            return True
        if iteration < self.config.resort_warmup:
            return iteration - self._sort_iteration >= self.config.resort_every
        return (k_level, p_level) != self._sort_levels

    def _resort(self, iteration: int, k_level: int, p_level: int) -> None:
        positions = np.flatnonzero(self.state.uncertain_mask)
        psi = self.psi(positions, k_level, p_level)
        order = np.argsort(-psi, kind="stable")
        self._order = positions[order]
        self._stale_psi = psi[order]
        self._sort_iteration = iteration
        self._sort_levels = (k_level, p_level)
        self.stats.resorts += 1

    # ------------------------------------------------------------------
    def select(
        self,
        iteration: int,
        k_level: int,
        p_level: int,
        batch_size: int,
    ) -> np.ndarray:
        """Return up to ``batch_size`` positions with the highest E[X_f].

        Scans the stale-psi order with Equation 7/8 early stopping when
        ``config.use_upper_bound`` is set; otherwise evaluates every
        uncertain frame exactly (the ablation baseline).
        """
        available = np.flatnonzero(self.state.uncertain_mask)
        self.stats.calls += 1
        self.stats.frames_available += available.size
        if available.size == 0:
            return available
        batch_size = min(batch_size, available.size)

        if not self.config.use_upper_bound:
            expected = self.expected_confidences(available, k_level, p_level)
            best = np.argsort(-expected, kind="stable")[:batch_size]
            self.stats.frames_examined += available.size
            return available[best]

        if self._needs_resort(iteration, k_level, p_level):
            self._resort(iteration, k_level, p_level)
        assert self._order is not None and self._stale_psi is not None

        gamma = self.state.joint_cdf(p_level)
        p_hat = self.state.topk_prob(k_level)
        kept_pos: List[np.ndarray] = []
        kept_exp: List[np.ndarray] = []
        examined = 0

        order = self._order
        stale_psi = self._stale_psi
        mask = self.state.uncertain_mask
        cursor = 0
        while cursor < order.size:
            chunk = order[cursor:cursor + _CHUNK]
            chunk_psi = stale_psi[cursor:cursor + _CHUNK]
            cursor += _CHUNK
            alive = mask[chunk]
            chunk = chunk[alive]
            chunk_psi = chunk_psi[alive]
            if chunk.size == 0:
                continue
            expected = self.expected_confidences(chunk, k_level, p_level)
            examined += chunk.size
            kept_pos.append(chunk)
            kept_exp.append(expected)

            total = sum(arr.size for arr in kept_pos)
            if total >= batch_size and cursor < order.size:
                all_exp = np.concatenate(kept_exp)
                kth_best = np.partition(all_exp, -batch_size)[-batch_size]
                next_bound = p_hat + gamma * stale_psi[cursor]
                if next_bound <= kth_best:
                    break

        self.stats.frames_examined += examined
        all_pos = np.concatenate(kept_pos)
        all_exp = np.concatenate(kept_exp)
        best = np.argsort(-all_exp, kind="stable")[:batch_size]
        return all_pos[best]
