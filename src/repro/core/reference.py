"""Brute-force possible-world reference implementations.

These are exponential-time oracles of correctness for the fast
algorithms in :mod:`repro.core.topk_prob` and
:mod:`repro.core.select_candidate`. They are used only by the tests
and by ablation benchmarks on tiny relations.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .uncertain import UncertainRelation

#: Safety limit on the number of enumerated worlds.
MAX_WORLDS = 2_000_000


def enumerate_worlds(
    relation: UncertainRelation,
) -> Iterator[Tuple[np.ndarray, float]]:
    """Yield ``(levels, probability)`` for every possible world.

    ``levels[i]`` is the score level of the tuple at position ``i``.
    Certain tuples contribute a single outcome with probability 1.
    """
    supports: List[np.ndarray] = []
    probabilities: List[np.ndarray] = []
    world_count = 1
    for row in relation.pmf:
        support = np.flatnonzero(row > 0)
        supports.append(support)
        probabilities.append(row[support])
        world_count *= max(support.size, 1)
        if world_count > MAX_WORLDS:
            raise ConfigurationError(
                f"too many possible worlds (> {MAX_WORLDS}); "
                "use a smaller relation")

    for combo in itertools.product(*(range(s.size) for s in supports)):
        levels = np.array(
            [supports[i][c] for i, c in enumerate(combo)], dtype=np.int64)
        probability = float(np.prod(
            [probabilities[i][c] for i, c in enumerate(combo)]))
        yield levels, probability


def topk_prob_bruteforce(
    relation: UncertainRelation,
    answer_positions: Sequence[int],
    threshold_level: int,
) -> float:
    """Equation 1 evaluated by world enumeration.

    An answer drawn from the certain tuples is *a* valid Top-K of a
    world iff no other tuple's score strictly exceeds the threshold
    (ties are allowed to side with the answer, matching the paper's
    footnote 1 and Equation 2).
    """
    answer = set(int(p) for p in answer_positions)
    total = 0.0
    for levels, probability in enumerate_worlds(relation):
        others = [
            levels[i] for i in range(len(levels)) if i not in answer]
        if all(level <= threshold_level for level in others):
            total += probability
    return total


def expected_confidence_bruteforce(
    relation: UncertainRelation,
    position: int,
    k: int,
) -> float:
    """E[X_f] by simulation: clean ``position`` at each possible score,
    rebuild the certain Top-K, and recompute Equation 2 from scratch.

    Independent of Equation 5/6's case analysis, so it cross-checks the
    selector's closed form.
    """
    support = np.flatnonzero(relation.pmf[position] > 0)
    expected = 0.0
    for level in support:
        probability = float(relation.pmf[position, level])
        clone = relation.copy()
        clone.mark_certain(position, float(clone.grid.score_of(level)))

        certain_positions = np.flatnonzero(clone.certain)
        scores = clone.exact_scores[certain_positions]
        ids = clone.ids[certain_positions]
        order = np.lexsort((ids, -scores))
        top = certain_positions[order[:k]]
        threshold_level = int(
            clone.grid.level_of(clone.exact_scores[top[-1]]))

        uncertain = np.flatnonzero(~clone.certain)
        confidence = float(
            np.prod(clone.cdf[uncertain, threshold_level])) \
            if uncertain.size else 1.0
        expected += probability * confidence
    return expected
