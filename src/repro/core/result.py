"""Query result / report types returned by the engine."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class PhaseBreakdown:
    """Simulated seconds per Table 8 column."""

    label_sample: float = 0.0
    cmdn_training: float = 0.0
    populate_d0: float = 0.0
    select_candidate: float = 0.0
    confirm_oracle: float = 0.0

    @property
    def phase1_seconds(self) -> float:
        return self.label_sample + self.cmdn_training + self.populate_d0

    @property
    def phase2_seconds(self) -> float:
        return self.select_candidate + self.confirm_oracle

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds

    def fractions(self) -> Dict[str, float]:
        total = self.total_seconds
        if total <= 0:
            return {}
        return {
            "label_sample": self.label_sample / total,
            "cmdn_training": self.cmdn_training / total,
            "populate_d0": self.populate_d0 / total,
            "select_candidate": self.select_candidate / total,
            "confirm_oracle": self.confirm_oracle / total,
        }

    def to_dict(self) -> Dict[str, float]:
        return {
            "label_sample": float(self.label_sample),
            "cmdn_training": float(self.cmdn_training),
            "populate_d0": float(self.populate_d0),
            "select_candidate": float(self.select_candidate),
            "confirm_oracle": float(self.confirm_oracle),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "PhaseBreakdown":
        return cls(**{key: float(value) for key, value in data.items()})


@dataclass
class QueryReport:
    """Full record of one Top-K (or Top-K window) query.

    ``answer_ids`` are frame indices for frame queries and window
    indices for window queries; ``window_size`` disambiguates.
    """

    video_name: str
    udf_name: str
    k: int
    thres: float
    window_size: Optional[int]
    num_frames: int

    answer_ids: List[int] = field(default_factory=list)
    answer_scores: List[float] = field(default_factory=list)
    confidence: float = 0.0

    iterations: int = 0
    cleaned: int = 0
    num_tuples: int = 0
    num_retained: int = 0
    oracle_calls: int = 0

    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    scan_seconds: float = 0.0

    proxy_hyperparameters: Tuple[int, int] = (0, 0)
    holdout_nll: float = 0.0
    confidence_trace: List[float] = field(default_factory=list)
    selection_examine_fraction: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        return self.breakdown.total_seconds

    @property
    def speedup(self) -> float:
        """Simulated speedup over the naive scan-and-test baseline."""
        total = self.simulated_seconds
        if total <= 0:
            return float("inf")
        return self.scan_seconds / total

    @property
    def cleaned_fraction(self) -> float:
        """Fraction of the video's tuples cleaned during Phase 2."""
        if self.num_tuples == 0:
            return 0.0
        return self.cleaned / self.num_tuples

    def summary(self) -> str:
        """One-line human-readable summary."""
        kind = "windows" if self.window_size else "frames"
        return (
            f"Top-{self.k} {kind} on {self.video_name} "
            f"[{self.udf_name}]: confidence={self.confidence:.3f} "
            f"speedup={self.speedup:.1f}x cleaned={self.cleaned} "
            f"({self.cleaned_fraction:.2%}) iters={self.iterations}"
        )

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (numpy scalars and arrays become builtins)."""
        return {
            "video_name": self.video_name,
            "udf_name": self.udf_name,
            "k": int(self.k),
            "thres": float(self.thres),
            "window_size": (
                None if self.window_size is None else int(self.window_size)),
            "num_frames": int(self.num_frames),
            "answer_ids": [int(i) for i in self.answer_ids],
            "answer_scores": [float(s) for s in self.answer_scores],
            "confidence": float(self.confidence),
            "iterations": int(self.iterations),
            "cleaned": int(self.cleaned),
            "num_tuples": int(self.num_tuples),
            "num_retained": int(self.num_retained),
            "oracle_calls": int(self.oracle_calls),
            "breakdown": self.breakdown.to_dict(),
            "scan_seconds": float(self.scan_seconds),
            "proxy_hyperparameters": [
                int(v) for v in self.proxy_hyperparameters],
            "holdout_nll": float(self.holdout_nll),
            "confidence_trace": [float(c) for c in self.confidence_trace],
            "selection_examine_fraction": float(
                self.selection_examine_fraction),
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialize to a JSON string (see :meth:`from_json`)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryReport":
        data = dict(data)
        data["breakdown"] = PhaseBreakdown.from_dict(
            data.get("breakdown", {}))
        data["proxy_hyperparameters"] = tuple(
            data.get("proxy_hyperparameters", (0, 0)))
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "QueryReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
