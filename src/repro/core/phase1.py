"""Phase 1: build the initial uncertain relation D0 (paper Section 3.2).

Steps, each charged to the cost ledger under its Table 8 column:

1. sample ``min(0.5% n, 30000)`` training frames plus a holdout set and
   label them with the oracle (``oracle_label``);
2. train the CMDN hyperparameter grid and keep the smallest-holdout-NLL
   model (``cmdn_train``);
3. run the difference detector to discard near-duplicate frames
   (``diff_detect`` + ``decode``);
4. run the chosen proxy over the retained frames to get per-frame score
   distributions (``cmdn_infer``) and quantize them into x-tuples;
5. insert the already-labelled frames as certain tuples (no oracle work
   is wasted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import DiffDetectorConfig, Phase1Config
from ..models.cmdn import ProxyScorer
from ..models.mdn import GaussianMixture
from ..models.trainer import GridResult, train_proxy_grid
from ..oracle.base import Oracle
from ..parallel.pool import resolve_workers, thread_map
from ..video.diff import DifferenceDetector, DiffResult
from ..video.synthetic import SyntheticVideo
from .uncertain import UncertainRelation, build_relation

#: Chunk size for proxy inference over the retained frames.
_INFER_CHUNK = 2_048


def predict_mixtures_chunked(
    proxy: ProxyScorer,
    video: SyntheticVideo,
    retained: np.ndarray,
    *,
    chunk: int = _INFER_CHUNK,
    workers: Optional[int] = None,
) -> GaussianMixture:
    """Proxy inference over ``retained`` frames, chunked and parallel.

    Chunks are scored independently (threads; numpy releases the GIL
    in the dense kernels) and concatenated in order, so the result is
    identical for every worker count.
    """

    def infer(bounds) -> GaussianMixture:
        start, stop = bounds
        return proxy.predict_mixtures(
            video.batch_pixels(retained[start:stop]))

    spans = [(start, min(start + chunk, retained.size))
             for start in range(0, retained.size, chunk)]
    parts = thread_map(infer, spans, workers=resolve_workers(workers))
    if not parts:  # pragma: no cover - empty video guard
        empty = np.zeros((0, 1))
        return GaussianMixture(empty, empty.copy(), empty.copy())
    return GaussianMixture(
        pi=np.concatenate([p.pi for p in parts]),
        mu=np.concatenate([p.mu for p in parts]),
        sigma=np.concatenate([p.sigma for p in parts]),
    )


def replay_phase1_charges(
    cost_model,
    *,
    train_labels: int,
    holdout_labels: int,
    sample_epochs: int,
    num_frames: int,
    num_retained: int,
) -> None:
    """Charge ``cost_model`` exactly as :func:`run_phase1` would.

    The streaming subsystem maintains Phase 1 incrementally but reports
    batch-equivalent ledgers: after each append it replays the charge
    sequence a from-scratch :func:`run_phase1` over the current prefix
    would issue. The order matters — :class:`~repro.oracle.cost.CostModel`
    accumulates ``seconds`` additively, so only the same sequence of
    ``charge`` calls reproduces the same floats bit for bit. Keep this
    in lockstep with the charge sites in :func:`run_phase1` (each line
    below names the step it mirrors).
    """
    # Step 1: oracle.score(train) then oracle.score(holdout), then the
    # decode of both sample batches.
    cost_model.charge("oracle_label", train_labels)
    cost_model.charge("oracle_label", holdout_labels)
    cost_model.charge("decode", train_labels + holdout_labels)
    # Step 2: grid training.
    cost_model.charge("cmdn_train", sample_epochs)
    # Step 3: difference detection over the whole prefix.
    cost_model.charge("diff_detect", num_frames)
    cost_model.charge("decode", num_frames)
    # Step 4: proxy inference over the retained frames.
    cost_model.charge("cmdn_infer", num_retained)


@dataclass
class Phase1Result:
    """Everything Phase 2 (and the experiments) need from Phase 1."""

    relation: UncertainRelation
    proxy: ProxyScorer
    grid_result: GridResult
    diff_result: DiffResult
    #: Exact scores observed while labelling samples (frame -> score).
    known_scores: Dict[int, float]
    #: Mixtures for each retained frame (aligned with diff retained).
    mixtures: GaussianMixture


def _sample_indices(
    rng: np.random.Generator, num_frames: int, train: int, holdout: int
):
    total = min(train + holdout, num_frames)
    chosen = rng.choice(num_frames, size=total, replace=False)
    return chosen[:train], chosen[train:]


def run_phase1(
    video: SyntheticVideo,
    oracle: Oracle,
    *,
    config: Optional[Phase1Config] = None,
    diff_config: Optional[DiffDetectorConfig] = None,
    cost_model=None,
    seed: int = 0,
    infer_workers: Optional[int] = None,
) -> Phase1Result:
    """Build D0 for ``video`` under the given oracle scoring function.

    ``infer_workers`` parallelizes step 4's chunked proxy inference
    (default: the ``REPRO_WORKERS`` environment variable, else serial);
    the result is identical for every worker count.
    """
    config = config if config is not None else Phase1Config()
    diff_config = diff_config if diff_config is not None \
        else DiffDetectorConfig()
    num_frames = len(video)
    rng = np.random.default_rng(seed)
    # ``sample_prefix`` (None for plain batch runs) restricts both the
    # sampling pool and the sample-size arithmetic to a leading slice of
    # the video — the anchor streaming sessions train against.
    pool = config.sample_pool(num_frames)
    train_size = config.train_sample_size(pool)
    holdout_size = config.holdout_sample_size(pool)
    train_idx, holdout_idx = _sample_indices(
        rng, pool, train_size, holdout_size)

    # 1. Oracle-label the samples (this is real oracle cost).
    train_scores = oracle.score(video, train_idx)
    holdout_scores = oracle.score(video, holdout_idx)
    known_scores: Dict[int, float] = {}
    for idx, score in zip(train_idx, train_scores):
        known_scores[int(idx)] = float(score)
    for idx, score in zip(holdout_idx, holdout_scores):
        known_scores[int(idx)] = float(score)

    if cost_model is not None:
        cost_model.charge("decode", len(train_idx) + len(holdout_idx))
    train_pixels = video.batch_pixels(train_idx)
    holdout_pixels = video.batch_pixels(holdout_idx)

    # 2. Train the (g, h) grid; select by holdout NLL.
    grid_result = train_proxy_grid(
        train_pixels,
        train_scores,
        holdout_pixels,
        holdout_scores,
        config=config,
        input_hw=video.resolution,
        seed=seed,
    )
    if cost_model is not None:
        cost_model.charge("cmdn_train", grid_result.sample_epochs)

    # 3. Difference detection over the whole video.
    diff_result = DifferenceDetector(diff_config).run(video)
    if cost_model is not None:
        cost_model.charge("diff_detect", num_frames)
        cost_model.charge("decode", num_frames)

    # 4. Proxy inference on the retained frames (chunk-parallel).
    retained = diff_result.retained
    proxy = grid_result.proxy
    mixtures = predict_mixtures_chunked(
        proxy, video, retained, workers=infer_workers)
    if cost_model is not None:
        cost_model.charge("cmdn_infer", retained.size)

    # 5. Quantize into x-tuples; known frames become certain tuples.
    step = config.quantization_step
    if step is None:
        step = oracle.scoring.step
    relation = build_relation(
        retained,
        mixtures,
        floor=oracle.scoring.score_floor,
        step=step,
        known_scores=known_scores,
        truncate_sigmas=config.truncate_sigmas,
    )
    return Phase1Result(
        relation=relation,
        proxy=proxy,
        grid_result=grid_result,
        diff_result=diff_result,
        known_scores=known_scores,
        mixtures=mixtures,
    )
