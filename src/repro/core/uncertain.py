"""x-tuples, quantization, and the uncertain relation (paper Section 3.2).

An uncertain relation is a collection of x-tuples, one per retained
frame; each x-tuple is a discrete distribution over possible scores.
Everest obtains the distributions from the CMDN's Gaussian mixtures by
(a) truncating each component beyond ``3 sigma`` with the trimmed mass
spread evenly over the remaining support (following Chopin [17] as the
paper does) and (b) quantizing onto a uniform grid: non-negative
integers for counting scores, or a user-supplied step otherwise.

Frames whose exact scores were already obtained while collecting the
training / holdout samples are inserted as *certain* tuples so no
oracle work is wasted.

The relation stores dense ``(num_tuples, num_levels)`` pmf / cdf
matrices: score grids are small (counts 0..~20; quantized continuous
scores a few hundred levels), which keeps every Phase 2 computation a
vectorized slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from ..errors import ConfigurationError, UncertainRelationError
from ..models.mdn import GaussianMixture

#: Guard on grid size; larger grids indicate a mis-chosen step.
MAX_LEVELS = 2_048


@dataclass(frozen=True)
class QuantizationGrid:
    """Uniform score grid: level ``t`` represents ``floor + t * step``."""

    floor: float
    step: float
    num_levels: int

    def __post_init__(self):
        if self.step <= 0:
            raise ConfigurationError("quantization step must be positive")
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if self.num_levels > MAX_LEVELS:
            raise ConfigurationError(
                f"quantization grid of {self.num_levels} levels exceeds "
                f"{MAX_LEVELS}; choose a coarser step")

    @property
    def max_level(self) -> int:
        return self.num_levels - 1

    def level_of(self, score) -> np.ndarray:
        """Nearest grid level for score(s), clipped into the grid."""
        levels = np.rint((np.asarray(score) - self.floor) / self.step)
        return np.clip(levels, 0, self.max_level).astype(np.int64)

    def score_of(self, level) -> np.ndarray:
        """Representative score of grid level(s)."""
        return self.floor + np.asarray(level, dtype=np.float64) * self.step

    def edges(self) -> np.ndarray:
        """Bin edges: level ``t`` owns ``[edges[t], edges[t+1])``; the
        bottom and top bins absorb the tails."""
        inner = self.floor + (np.arange(self.num_levels - 1) + 0.5) * self.step
        return np.concatenate(([-np.inf], inner, [np.inf]))


def grid_for(
    mixtures: GaussianMixture,
    *,
    floor: float,
    step: float,
    extra_scores: Optional[Sequence[float]] = None,
    truncate_sigmas: float = 3.0,
) -> QuantizationGrid:
    """Choose a grid covering all mixtures (to ``k sigma``) and scores."""
    top = floor + step  # at least two levels
    if mixtures.pi.size:
        upper = mixtures.mu + truncate_sigmas * mixtures.sigma
        top = max(top, float(np.max(upper)))
    if extra_scores is not None and len(extra_scores) > 0:
        top = max(top, float(np.max(extra_scores)))
    num_levels = int(np.ceil((top - floor) / step)) + 1
    return QuantizationGrid(floor=floor, step=step, num_levels=num_levels)


def quantize_mixtures(
    mixtures: GaussianMixture,
    grid: QuantizationGrid,
    *,
    truncate_sigmas: float = 3.0,
) -> np.ndarray:
    """Quantize batched mixtures onto the grid as ``(N, L)`` pmfs.

    Per component: Gaussian mass is integrated per bin with the
    integration range clipped to ``mu +/- k sigma``; the trimmed tail
    mass is spread evenly over the bins intersecting that range (the
    paper's "set to zero and evenly distributed to the rest"). Component
    pmfs are then mixed by ``pi`` and renormalized.
    """
    n, g = mixtures.pi.shape
    edges = grid.edges()  # (L+1,)
    pmf = np.zeros((n, grid.num_levels))
    if n == 0:
        return pmf

    lo = (mixtures.mu - truncate_sigmas * mixtures.sigma)  # (N, g)
    hi = (mixtures.mu + truncate_sigmas * mixtures.sigma)
    for j in range(g):
        mu = mixtures.mu[:, j][:, None]
        sigma = mixtures.sigma[:, j][:, None]
        lo_j = lo[:, j][:, None]
        hi_j = hi[:, j][:, None]
        clipped_lo = np.clip(edges[None, :-1], lo_j, hi_j)
        clipped_hi = np.clip(edges[None, 1:], lo_j, hi_j)
        mass = norm.cdf((clipped_hi - mu) / sigma) \
            - norm.cdf((clipped_lo - mu) / sigma)
        # Spread the trimmed tail mass evenly over the touched bins.
        touched = clipped_hi > clipped_lo
        num_touched = np.maximum(touched.sum(axis=1, keepdims=True), 1)
        trimmed = 1.0 - mass.sum(axis=1, keepdims=True)
        mass = mass + touched * (trimmed / num_touched)
        pmf += mixtures.pi[:, j][:, None] * mass

    totals = pmf.sum(axis=1, keepdims=True)
    totals[totals <= 0] = 1.0
    return np.clip(pmf / totals, 0.0, None)


class UncertainRelation:
    """The uncertain relation D: x-tuples over retained frames.

    Tuples are either *uncertain* (a pmf from the proxy) or *certain*
    (an oracle-observed score). Cleaning a tuple replaces its pmf with
    a point mass and records the exact score.
    """

    def __init__(
        self,
        ids: Sequence[int],
        pmf: np.ndarray,
        grid: QuantizationGrid,
    ):
        ids = np.asarray(ids, dtype=np.int64)
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.ndim != 2 or pmf.shape[0] != ids.size:
            raise UncertainRelationError(
                f"pmf shape {pmf.shape} incompatible with {ids.size} ids")
        if pmf.shape[1] != grid.num_levels:
            raise UncertainRelationError(
                f"pmf has {pmf.shape[1]} levels, grid has {grid.num_levels}")
        if ids.size != np.unique(ids).size:
            raise UncertainRelationError("tuple ids must be unique")
        sums = pmf.sum(axis=1)
        if pmf.size and not np.allclose(sums, 1.0, atol=1e-6):
            raise UncertainRelationError("each x-tuple pmf must sum to 1")

        self.grid = grid
        self.ids = ids
        self.pmf = pmf
        self.cdf = np.clip(np.cumsum(pmf, axis=1), 0.0, 1.0)
        self.cdf[:, -1] = 1.0
        self.certain = np.zeros(ids.size, dtype=bool)
        #: Exact (unquantized) score for certain tuples, NaN otherwise.
        self.exact_scores = np.full(ids.size, np.nan)
        self._pos: Dict[int, int] = {int(f): i for i, f in enumerate(ids)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ids.size)

    @property
    def num_certain(self) -> int:
        return int(self.certain.sum())

    @property
    def num_uncertain(self) -> int:
        return len(self) - self.num_certain

    def position(self, frame_id: int) -> int:
        try:
            return self._pos[int(frame_id)]
        except KeyError:
            raise UncertainRelationError(
                f"frame {frame_id} not in relation") from None

    def mark_certain(self, position: int, score: float) -> int:
        """Clean one tuple: point-mass pmf at the score's level.

        Returns the quantized level of the observed score.
        """
        if self.certain[position]:
            raise UncertainRelationError(
                f"tuple at position {position} already certain")
        level = int(self.grid.level_of(score))
        self.pmf[position, :] = 0.0
        self.pmf[position, level] = 1.0
        self.cdf[position, :] = 0.0
        self.cdf[position, level:] = 1.0
        self.certain[position] = True
        self.exact_scores[position] = float(score)
        return level

    def mark_certain_many(
        self, positions: np.ndarray, scores: np.ndarray
    ) -> np.ndarray:
        """Clean a batch of tuples in one vectorized pass.

        Equivalent to calling :meth:`mark_certain` per tuple, but the
        pmf / cdf rows are rewritten with a single fancy-indexed
        assignment each — the Phase 2 cleaning loop's hot path.
        Returns the quantized levels of the observed scores.
        """
        positions = np.asarray(positions, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if positions.size != scores.size:
            raise UncertainRelationError(
                f"{positions.size} positions but {scores.size} scores")
        if positions.size == 0:
            return np.zeros(0, dtype=np.int64)
        if positions.size != np.unique(positions).size:
            raise UncertainRelationError(
                "batch positions must be unique")
        if np.any(self.certain[positions]):
            raise UncertainRelationError(
                "batch contains already-certain tuples")
        levels = self.grid.level_of(scores)
        self.pmf[positions, :] = 0.0
        self.pmf[positions, levels] = 1.0
        self.cdf[positions, :] = (
            np.arange(self.grid.num_levels)[None, :] >= levels[:, None])
        self.certain[positions] = True
        self.exact_scores[positions] = scores
        return levels

    def certain_levels(self) -> np.ndarray:
        """Grid levels of all certain tuples (aligned with positions)."""
        positions = np.flatnonzero(self.certain)
        return self.grid.level_of(self.exact_scores[positions])

    def uncertain_positions(self) -> np.ndarray:
        return np.flatnonzero(~self.certain)

    def expected_scores(self) -> np.ndarray:
        """Per-tuple pmf means in score units (certain -> exact level)."""
        levels = self.grid.score_of(np.arange(self.grid.num_levels))
        return self.pmf @ levels

    def copy(self) -> "UncertainRelation":
        clone = UncertainRelation(self.ids.copy(), self.pmf.copy(), self.grid)
        clone.certain = self.certain.copy()
        clone.exact_scores = self.exact_scores.copy()
        clone.cdf = self.cdf.copy()
        return clone


def restrict_relation(
    relation: UncertainRelation,
    ranges: Sequence[Tuple[int, int]],
) -> UncertainRelation:
    """Row-restrict a relation to frame ids inside any ``[lo, hi)`` range.

    The sliding-window primitive (DESIGN.md §13): row order, pmf/cdf
    rows, certainty flags and — crucially — the quantization grid are
    all preserved, so restricting a full-prefix relation is bitwise
    equal to building the window's rows directly on the same grid.
    Always returns fresh arrays (cleaning mutates the result in place).
    """
    mask = np.zeros(relation.ids.size, dtype=bool)
    for lo, hi in ranges:
        mask |= (relation.ids >= int(lo)) & (relation.ids < int(hi))
    clone = UncertainRelation(
        relation.ids[mask], relation.pmf[mask], relation.grid)
    clone.certain = relation.certain[mask].copy()
    clone.exact_scores = relation.exact_scores[mask].copy()
    clone.cdf = relation.cdf[mask].copy()
    return clone


def build_relation(
    ids: Sequence[int],
    mixtures: GaussianMixture,
    *,
    floor: float,
    step: float,
    known_scores: Optional[Dict[int, float]] = None,
    truncate_sigmas: float = 3.0,
    grid: Optional[QuantizationGrid] = None,
) -> UncertainRelation:
    """Build D0 from proxy mixtures plus already-known exact scores.

    ``ids`` aligns with ``mixtures`` rows. Frames present in
    ``known_scores`` (the Phase 1 training / holdout samples) are
    inserted as certain tuples; extra known frames not in ``ids`` are
    appended. An explicit ``grid`` overrides :func:`grid_for` — how the
    windowed maintainer reproduces the full-prefix grid while only
    materializing the window's mixtures (DESIGN.md §13).
    """
    known_scores = dict(known_scores or {})
    ids = [int(i) for i in ids]
    extra_ids = sorted(set(known_scores) - set(ids))
    all_scores = list(known_scores.values())

    if grid is None:
        grid = grid_for(
            mixtures,
            floor=floor,
            step=step,
            extra_scores=all_scores,
            truncate_sigmas=truncate_sigmas,
        )
    pmf = quantize_mixtures(mixtures, grid, truncate_sigmas=truncate_sigmas)
    if extra_ids:
        pmf = np.vstack([pmf, np.zeros((len(extra_ids), grid.num_levels))])
    full_ids = ids + extra_ids
    # Point-mass rows for extra known frames (placeholder; fixed below).
    for offset, frame in enumerate(extra_ids):
        level = int(grid.level_of(known_scores[frame]))
        pmf[len(ids) + offset, level] = 1.0

    relation = UncertainRelation(full_ids, pmf, grid)
    for frame, score in known_scores.items():
        position = relation.position(frame)
        if not relation.certain[position]:
            relation.mark_certain(position, score)
        else:
            relation.exact_scores[position] = float(score)
    return relation
