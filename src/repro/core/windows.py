"""Top-K tumbling windows (paper Section 3.4).

The video is divided into consecutive non-overlapping windows of ``L``
frames; a window's score is the average of its frames' scores. The
difference detector partitions each window into segments of frames
sharing one retained representative, and the window score distribution
is approximated by a single Gaussian whose moments aggregate the
segments' mixture moments (paper Equation 9):

    S_w ~ N( (1/L) sum_t |s_t| mu-bar_{r_t},
             (1/L) sum_t |s_t| sigma-bar^2_{r_t} )

Quantizing these Gaussians yields a window-level uncertain relation
that is *directly compatible* with the Phase 2 algorithms: window ids
play the role of frame ids and cleaning a window means oracle-scoring a
sample of its frames (paper: 10%) and taking the sample mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..models.mdn import GaussianMixture
from ..oracle.base import Oracle
from ..video.diff import DiffResult
from ..video.synthetic import SyntheticVideo
from .uncertain import UncertainRelation, build_relation

#: Default ratio between the frame-level step and the window-level step
#: (window means live on a finer scale than individual scores).
WINDOW_STEP_DIVISOR = 4.0


def num_windows(num_frames: int, window_size: int) -> int:
    """Number of tumbling windows (a ragged last window is kept)."""
    if window_size < 1:
        raise ConfigurationError("window_size must be >= 1")
    return int(np.ceil(num_frames / window_size))


def window_bounds(
    window_id: int, window_size: int, num_frames: int
) -> Tuple[int, int]:
    """Frame range ``[start, end)`` of one window."""
    start = window_id * window_size
    return start, min(start + window_size, num_frames)


def window_truth(
    truth: np.ndarray, window_size: int
) -> np.ndarray:
    """Exact window scores (frame-score averages) for metrics."""
    n = truth.shape[0]
    count = num_windows(n, window_size)
    scores = np.empty(count)
    for w in range(count):
        start, end = window_bounds(w, window_size, n)
        scores[w] = float(np.mean(truth[start:end]))
    return scores


def build_window_relation(
    mixtures: GaussianMixture,
    retained_ids: np.ndarray,
    diff_result: DiffResult,
    *,
    window_size: int,
    floor: float,
    step: float,
    truncate_sigmas: float = 3.0,
) -> UncertainRelation:
    """Aggregate frame mixtures into the window uncertain relation."""
    if retained_ids.size != mixtures.pi.shape[0]:
        raise ConfigurationError(
            "mixtures must align with the retained frame ids")
    n = diff_result.num_frames
    count = num_windows(n, window_size)

    row_of: Dict[int, int] = {
        int(f): i for i, f in enumerate(retained_ids)}
    frame_mean = mixtures.mean()
    frame_var = mixtures.variance()
    representative = diff_result.representative

    means = np.zeros(count)
    variances = np.zeros(count)
    for w in range(count):
        start, end = window_bounds(w, window_size, n)
        reps = representative[start:end]
        # Segment lengths within this window, per representative run.
        change = np.flatnonzero(np.diff(reps)) + 1
        run_starts = np.concatenate(([0], change))
        run_ends = np.concatenate((change, [reps.size]))
        length = end - start
        mean_acc = 0.0
        var_acc = 0.0
        for rs, re in zip(run_starts, run_ends):
            rep = int(reps[rs])
            row = row_of[rep]
            seg_len = int(re - rs)
            mean_acc += seg_len * frame_mean[row]
            var_acc += seg_len * frame_var[row]
        means[w] = mean_acc / length
        # Paper Eq. 9 uses 1/L on the variance aggregate as well.
        variances[w] = var_acc / length

    sigma = np.sqrt(np.maximum(variances, 1e-12))
    window_mixture = GaussianMixture(
        pi=np.ones((count, 1)),
        mu=means[:, None],
        sigma=sigma[:, None],
    )
    return build_relation(
        np.arange(count),
        window_mixture,
        floor=floor,
        step=step,
        truncate_sigmas=truncate_sigmas,
    )


@dataclass
class WindowCleaner:
    """Cleaning callback for windows: sampled oracle confirmation.

    Scoring a whole window would clean ``L`` frames; the paper samples
    a fraction (default 10%) and uses the sample mean, trading a little
    precision jitter for proportionally less oracle work.
    """

    video: SyntheticVideo
    oracle: Oracle
    window_size: int
    sample_fraction: float = 0.1
    seed: int = 0
    cost_model: Optional[object] = None

    def frames_for(self, window_id: int) -> np.ndarray:
        start, end = window_bounds(
            window_id, self.window_size, len(self.video))
        length = end - start
        sample = max(1, int(np.ceil(self.sample_fraction * length)))
        rng = np.random.default_rng((self.seed, window_id))
        return start + rng.choice(length, size=min(sample, length),
                                  replace=False)

    def __call__(self, window_ids: Sequence[int]) -> np.ndarray:
        scores = np.empty(len(window_ids))
        for i, window_id in enumerate(window_ids):
            frames = self.frames_for(int(window_id))
            if self.cost_model is not None:
                self.cost_model.charge("decode", frames.size)
            frame_scores = self.oracle.score(self.video, frames)
            scores[i] = float(np.mean(frame_scores))
        return scores
