"""Topk-prob: incremental confidence computation (paper Section 3.3.1).

Given the certain-result condition, the confidence of the current
Top-K answer reduces to Equation 2:

    p-hat = prod over uncertain frames f of  Pr(S_f <= S_k)

where ``S_k`` is the K-th (threshold) certain score. The paper
accelerates this with two precomputed functions (Equation 3): the
per-frame CDF ``F_f`` and the joint CDF ``H(t)`` of all initially
uncertain frames, maintained incrementally as frames are cleaned.

:class:`ConfidenceState` implements exactly that in log space with
explicit zero tracking, so cleaning a frame is an ``O(L)`` update and
computing the confidence is ``O(1)`` — matching the paper's claim that
Topk-prob contributes <0.01% of runtime.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import UncertainRelationError
from .uncertain import UncertainRelation


class ConfidenceState:
    """Incrementally maintained joint CDF over the uncertain tuples.

    ``log_cdf[p, t]`` is ``log F_f(t)`` for the tuple at position ``p``
    (``-inf`` where ``F_f(t) = 0``). The joint CDF over *currently
    uncertain* tuples is tracked as a finite log-sum plus a per-level
    count of ``-inf`` contributions, so removals (cleanings) never
    divide by zero.
    """

    def __init__(self, relation: UncertainRelation):
        self.relation = relation
        with np.errstate(divide="ignore"):
            self.log_cdf = np.log(relation.cdf)
        self._neg_inf = np.isneginf(self.log_cdf)
        uncertain = ~relation.certain
        self._uncertain = uncertain.copy()
        finite = np.where(self._neg_inf, 0.0, self.log_cdf)
        self.finite_sum = (finite * uncertain[:, None]).sum(axis=0)
        self.zero_count = (
            self._neg_inf & uncertain[:, None]).sum(axis=0).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_uncertain(self) -> int:
        return int(self._uncertain.sum())

    @property
    def uncertain_mask(self) -> np.ndarray:
        """Boolean mask (by position) of still-uncertain tuples."""
        return self._uncertain

    def is_uncertain(self, position: int) -> bool:
        return bool(self._uncertain[position])

    def remove(self, position: int) -> None:
        """Remove a tuple from the joint CDF (it has been cleaned)."""
        if not self._uncertain[position]:
            raise UncertainRelationError(
                f"position {position} is not an uncertain tuple")
        row_inf = self._neg_inf[position]
        self.finite_sum -= np.where(row_inf, 0.0, self.log_cdf[position])
        self.zero_count -= row_inf.astype(np.int64)
        self._uncertain[position] = False

    def remove_many(self, positions: np.ndarray) -> None:
        """Remove a batch of cleaned tuples in one vectorized pass.

        Equivalent to calling :meth:`remove` per position (up to
        floating-point summation order in ``finite_sum``), but one
        numpy reduction per batch instead of one ``O(L)`` pass per
        tuple — the Phase 2 cleaning loop's hot path.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return
        if positions.size != np.unique(positions).size:
            raise UncertainRelationError("batch positions must be unique")
        if not np.all(self._uncertain[positions]):
            raise UncertainRelationError(
                "batch contains tuples that are not uncertain")
        rows_inf = self._neg_inf[positions]
        rows_log = np.where(rows_inf, 0.0, self.log_cdf[positions])
        self.finite_sum -= rows_log.sum(axis=0)
        self.zero_count -= rows_inf.sum(axis=0)
        self._uncertain[positions] = False

    # ------------------------------------------------------------------
    def log_joint_cdf(self, level: int) -> float:
        """``log H_u(level)`` over currently uncertain tuples."""
        if self.zero_count[level] > 0:
            return float("-inf")
        return float(self.finite_sum[level])

    def joint_cdf(self, level: int) -> float:
        """``H_u(level) = prod_f F_f(level)`` (Equation 2's product)."""
        if self.num_uncertain == 0:
            return 1.0
        log_value = self.log_joint_cdf(level)
        return float(np.exp(log_value)) if np.isfinite(log_value) else 0.0

    def topk_prob(self, threshold_level: Optional[int]) -> float:
        """Confidence of the current answer (Equation 2 / 3).

        ``threshold_level`` is the grid level of ``S_k``; ``None`` means
        no K-certain-frames answer exists yet, so confidence is 0.
        """
        if threshold_level is None:
            return 0.0
        return self.joint_cdf(int(threshold_level))

    # ------------------------------------------------------------------
    def joint_cdf_excluding(
        self, positions: np.ndarray, level: int
    ) -> np.ndarray:
        """``prod_{f' != f} F_f'(level)`` for each position ``f``.

        Vectorized helper for Select-candidate: the joint CDF with one
        tuple factored out, valid even when that tuple's own CDF is 0.
        """
        positions = np.asarray(positions, dtype=np.int64)
        own_inf = self._neg_inf[positions, level]
        own_log = self.log_cdf[positions, level]
        effective_zeros = self.zero_count[level] - own_inf.astype(np.int64)
        log_excl = self.finite_sum[level] - np.where(own_inf, 0.0, own_log)
        return np.where(effective_zeros == 0, np.exp(log_excl), 0.0)

    def joint_cdf_excluding_levels(
        self, positions: np.ndarray, levels: np.ndarray
    ) -> np.ndarray:
        """:meth:`joint_cdf_excluding` over many levels at once.

        Returns a ``(num_positions, num_levels)`` matrix whose column
        ``j`` equals ``joint_cdf_excluding(positions, levels[j])`` —
        one fused pass for Select-candidate's Equation 6 case analysis
        instead of one call per grid level.
        """
        positions = np.asarray(positions, dtype=np.int64)
        levels = np.asarray(levels, dtype=np.int64)
        own_inf = self._neg_inf[positions[:, None], levels[None, :]]
        own_log = self.log_cdf[positions[:, None], levels[None, :]]
        effective_zeros = (
            self.zero_count[levels][None, :] - own_inf.astype(np.int64))
        log_excl = (
            self.finite_sum[levels][None, :]
            - np.where(own_inf, 0.0, own_log))
        return np.where(effective_zeros == 0, np.exp(log_excl), 0.0)

    # ------------------------------------------------------------------
    def topk_prob_direct(self, threshold_level: Optional[int]) -> float:
        """Recompute Equation 2 from scratch (reference / tests only)."""
        if threshold_level is None:
            return 0.0
        positions = np.flatnonzero(self._uncertain)
        if positions.size == 0:
            return 1.0
        return float(
            np.prod(self.relation.cdf[positions, int(threshold_level)]))
