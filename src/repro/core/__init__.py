"""Everest core: uncertain Top-K query processing with an oracle in the loop.

This package is the paper's primary contribution:

* :mod:`~repro.core.uncertain` — x-tuples, truncated-Gaussian
  quantization, the uncertain relation D;
* :mod:`~repro.core.topk_prob` — incremental confidence (Eq. 2/3);
* :mod:`~repro.core.select_candidate` — expected-confidence candidate
  selection with upper-bound early stopping (Eq. 4-8);
* :mod:`~repro.core.cleaner` — the Phase 2 cleaning loop with the
  certain-result condition and batch inference;
* :mod:`~repro.core.windows` — Top-K tumbling windows (Eq. 9);
* :mod:`~repro.core.phase1` — CMDN training and D0 construction;
* :mod:`~repro.core.engine` — the user-facing query engine;
* :mod:`~repro.core.reference` — brute-force possible-world oracles
  used to validate all of the above.
"""

from .uncertain import (
    QuantizationGrid,
    UncertainRelation,
    build_relation,
    grid_for,
    quantize_mixtures,
    restrict_relation,
)
from .topk_prob import ConfidenceState
from .select_candidate import CandidateSelector, SelectionStats
from .cleaner import Phase2Result, TopKCleaner
from .phase1 import Phase1Result, run_phase1
from .windows import (
    WindowCleaner,
    build_window_relation,
    num_windows,
    window_bounds,
    window_truth,
)
from .result import PhaseBreakdown, QueryReport
from .engine import EverestEngine
from . import reference

__all__ = [
    "QuantizationGrid",
    "UncertainRelation",
    "build_relation",
    "grid_for",
    "quantize_mixtures",
    "restrict_relation",
    "ConfidenceState",
    "CandidateSelector",
    "SelectionStats",
    "Phase2Result",
    "TopKCleaner",
    "Phase1Result",
    "run_phase1",
    "WindowCleaner",
    "build_window_relation",
    "num_windows",
    "window_bounds",
    "window_truth",
    "PhaseBreakdown",
    "QueryReport",
    "EverestEngine",
    "reference",
]
