"""CMDN-only baseline: Phase 1 without the cleaning loop.

Ranks frames by the mean of the proxy's predicted score distribution
and returns the Top-K directly — no oracle verification, no guarantee.
The paper uses this to show the specialized proxy is a good *first
phase* but not a system by itself.
"""

from __future__ import annotations

import numpy as np

from ..config import EverestConfig
from ..oracle.base import Oracle, ScoringFunction
from ..oracle.cost import CostModel
from ..video.synthetic import SyntheticVideo
from ..core.phase1 import run_phase1
from .base import BaselineResult


def cmdn_only_topk(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    k: int,
    *,
    config: EverestConfig = EverestConfig(),
    unit_costs=None,
) -> BaselineResult:
    """Run Phase 1 only; Top-K of the proxy's expected scores."""
    cost_model = CostModel(unit_costs)
    oracle = Oracle(scoring, cost_model, cost_key="oracle_label")
    # Labelling charges the oracle's own latency.
    cost_model.unit_costs["oracle_label"] = cost_model.unit_costs.get(
        scoring.cost_key, 0.0)
    phase1 = run_phase1(
        video,
        oracle,
        config=config.phase1,
        diff_config=config.diff,
        cost_model=cost_model,
        seed=config.seed,
    )
    relation = phase1.relation
    expected = relation.expected_scores()
    order = np.lexsort((relation.ids, -expected))
    top = order[:k]
    return BaselineResult(
        method="cmdn-only",
        video_name=video.name,
        k=k,
        answer_ids=[int(relation.ids[i]) for i in top],
        answer_scores=[float(expected[i]) for i in top],
        simulated_seconds=cost_model.total_seconds(),
        extras={
            "holdout_nll": phase1.grid_result.best_history.holdout_nll,
            "num_retained": float(phase1.diff_result.num_retained),
        },
    )
