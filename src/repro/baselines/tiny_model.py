"""TinyYOLOv3-only baseline: fast, inaccurate full scan.

The paper scans the video with TinyYOLOv3 (the shallow real-time
variant of YOLOv3) and takes the Top-K of its counts; with so few
layers, its score errors scramble the ranking and precision collapses.
We emulate it with a lossy :class:`SimulatedObjectDetector` (misses,
spurious detections, localization jitter) at TinyYOLO's per-frame
latency.
"""

from __future__ import annotations

import numpy as np

from ..oracle.cost import CostModel
from ..oracle.detector import DetectorErrorModel, SimulatedObjectDetector
from ..video.synthetic import SyntheticVideo
from .base import BaselineResult

#: Error model calibrated to "shallow real-time detector": it sees most
#: large/obvious objects but misses ~35% and hallucinates ~0.7 per
#: frame — the regime where selection still sort-of works but Top-K
#: ranking does not.
TINY_ERRORS = DetectorErrorModel(
    miss_rate=0.35, false_positive_rate=0.7, jitter=1.5, seed=1234)


def tiny_topk(
    video: SyntheticVideo,
    k: int,
    *,
    object_label: str = None,
    error_model: DetectorErrorModel = TINY_ERRORS,
    unit_costs=None,
) -> BaselineResult:
    """Scan with the tiny detector; Top-K by its (noisy) counts."""
    cost_model = CostModel(unit_costs)
    detector = SimulatedObjectDetector(object_label, error_model)
    n = len(video)
    counts = np.empty(n, dtype=np.int64)
    resolution = video.resolution
    for index in range(n):
        detections = detector.detect_boxes(
            video.objects(index), frame_index=index, resolution=resolution)
        counts[index] = len(detections)
    cost_model.charge("tiny_infer", n)
    cost_model.charge("decode", n)

    order = np.lexsort((np.arange(n), -counts))
    top = order[:k]
    return BaselineResult(
        method="tinyyolo-only",
        video_name=video.name,
        k=k,
        answer_ids=[int(i) for i in top],
        answer_scores=[float(counts[i]) for i in top],
        simulated_seconds=cost_model.total_seconds(),
    )
