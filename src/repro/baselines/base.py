"""Shared result type for the Section 4 baselines.

Every baseline answers the same question — "which K frames have the
highest oracle scores?" — with its own accuracy/cost trade-off. A
:class:`BaselineResult` carries the ranked answer plus the simulated
cost so the harness can compute the same four metrics the paper reports
(speedup, precision, rank distance, score error) uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class BaselineResult:
    """Ranked Top-K answer of one baseline run."""

    method: str
    video_name: str
    k: int
    #: Frame ids, best first (by the baseline's own scores).
    answer_ids: List[int]
    #: The baseline's scores for those frames (not oracle-verified
    #: unless the method verifies them, e.g. select-and-topk).
    answer_scores: List[float]
    #: Simulated runtime in seconds.
    simulated_seconds: float
    #: Extra per-method diagnostics.
    extras: Dict[str, float] = field(default_factory=dict)
