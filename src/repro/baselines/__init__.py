"""Baselines from the paper's evaluation (Section 4).

* scan-and-test — exact oracle scan (the speedup reference);
* HOG — classic non-deep sliding-window counter;
* CMDN-only — Phase 1's proxy ranking without verification;
* TinyYOLOv3-only — a fast shallow detector scan;
* Select-and-Topk — Top-K rewritten as a NoScope-style range selection
  followed by oracle verification, with the paper's manual lambda
  calibration.
"""

from .base import BaselineResult
from .scan_and_test import scan_and_test
from .hog import HogCounter, hog_topk
from .tiny_model import TINY_ERRORS, tiny_topk
from .cmdn_only import cmdn_only_topk
from .select_and_topk import (
    DEFAULT_LAMBDAS,
    calibrated_select_and_topk,
    select_and_topk,
)

__all__ = [
    "BaselineResult",
    "scan_and_test",
    "HogCounter",
    "hog_topk",
    "TINY_ERRORS",
    "tiny_topk",
    "cmdn_only_topk",
    "DEFAULT_LAMBDAS",
    "calibrated_select_and_topk",
    "select_and_topk",
]
