"""The naive scan-and-test baseline (exact, slow).

Invokes the oracle on every frame and sorts — the paper's reference
point for all speedups. Its answer *is* the exact result by
definition.
"""

from __future__ import annotations

import numpy as np

from ..oracle.base import ScoringFunction
from ..oracle.cost import CostModel
from ..video.synthetic import SyntheticVideo
from .base import BaselineResult


def scan_and_test(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    k: int,
    *,
    unit_costs=None,
) -> BaselineResult:
    """Oracle-score every frame, return the exact Top-K."""
    cost_model = CostModel(unit_costs)
    cost_model.charge("decode", len(video))
    cost_model.charge(scoring.cost_key, len(video))
    # Semantically Oracle.score_all; the exact-scores fast path avoids
    # per-frame Frame construction while the ledger charges identically.
    from ..oracle.base import exact_scores

    scores = exact_scores(scoring, video)
    order = np.lexsort((np.arange(scores.size), -scores))
    top = order[:k]
    return BaselineResult(
        method="scan-and-test",
        video_name=video.name,
        k=k,
        answer_ids=[int(i) for i in top],
        answer_scores=[float(scores[i]) for i in top],
        simulated_seconds=cost_model.total_seconds(),
        extras={"oracle_calls": float(len(video))},
    )
