"""Select-and-Topk baseline: a Top-K query rewritten as range selection.

Following the paper's construction over NoScope-class systems: issue
the range query ``S_f >= lambda * M`` (``M`` = maximum score seen in
the specialized model's training sample) to a selection system, treat
the returned frames as candidates ``C``, verify them with the oracle
(false-positive rate 0, mimicking the certain-result condition), and
return the Top-K of the verified candidates.

The selection system is a NoScope-style specialized binary classifier:
logistic regression on cheap frame features, with its decision
threshold chosen on the training sample so the false-negative rate
stays within 0.1 (mimicking thres = 0.9). As in the paper, the
baseline is given every advantage: training time is excluded from its
cost, and :func:`calibrated_select_and_topk` tunes ``lambda`` per video
with access to the ground truth, reporting the best speedup subject to
precision >= 0.9 — exactly the manual calibration the paper performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..models.features import FeatureScaler, extract_features
from ..oracle.base import Oracle, ScoringFunction
from ..oracle.cost import CostModel
from ..video.synthetic import SyntheticVideo
from .base import BaselineResult

#: Lambda grid used for the per-video manual calibration.
DEFAULT_LAMBDAS = (0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5)

#: Tolerable false-negative rate of the selection system (paper: 0.1).
TOLERABLE_FN_RATE = 0.1


#: Feature columns visible to the specialized classifier: the coarse
#: global statistics (mean / std / max / p90) a NoScope-class binary
#: presence model effectively keys on. Range predicates over *counts*
#: ("at least lambda*M cars") need finer evidence than presence
#: models extract — which is exactly the paper's finding that
#: selection systems handle point queries well but range queries
#: poorly. Giving this baseline the full feature set would emulate a
#: stronger system than the ones the paper compared against.
_COARSE_FEATURES = slice(0, 2)


@dataclass
class _SpecializedClassifier:
    """Binary range classifier with an FN-rate-constrained threshold."""

    weights: np.ndarray
    bias: float
    scaler: FeatureScaler
    decision: float

    def flag(self, pixels: np.ndarray) -> np.ndarray:
        features = self.scaler.transform(
            extract_features(pixels)[:, _COARSE_FEATURES])
        probs = 1.0 / (1.0 + np.exp(-(features @ self.weights + self.bias)))
        return probs >= self.decision


def _train_classifier(
    pixels: np.ndarray,
    positives: np.ndarray,
    *,
    epochs: int = 200,
    learning_rate: float = 0.5,
    seed: int = 0,
) -> Optional[_SpecializedClassifier]:
    """Logistic regression; decision threshold meets the FN budget."""
    if positives.sum() == 0 or positives.all():
        return None
    scaler = FeatureScaler()
    x = scaler.fit_transform(
        extract_features(pixels)[:, _COARSE_FEATURES])
    y = positives.astype(float)
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.01, x.shape[1])
    b = 0.0
    n = x.shape[0]
    for _ in range(epochs):
        p = 1.0 / (1.0 + np.exp(-(x @ w + b)))
        grad = p - y
        w -= learning_rate * (x.T @ grad) / n
        b -= learning_rate * float(grad.mean())
    probs = 1.0 / (1.0 + np.exp(-(x @ w + b)))
    # Keep >= (1 - FN rate) of training positives above the decision.
    decision = float(np.quantile(probs[positives], TOLERABLE_FN_RATE))
    return _SpecializedClassifier(w, b, scaler, decision)


def select_and_topk(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    k: int,
    lam: float,
    *,
    unit_costs=None,
    train_fraction: float = 0.01,
    min_train: int = 500,
    seed: int = 0,
    batch: int = 4_096,
) -> Optional[BaselineResult]:
    """One Select-and-Topk run at a fixed ``lambda``.

    Returns ``None`` when the run is infeasible: the range has no
    training positives, or fewer than K candidates survive.
    """
    if not 0.0 <= lam <= 1.0:
        raise ConfigurationError("lambda must be in [0, 1]")
    cost_model = CostModel(unit_costs)
    oracle = Oracle(scoring, cost_model)
    n = len(video)
    rng = np.random.default_rng(seed)
    train_size = min(n, max(min_train, int(train_fraction * n)))
    train_idx = rng.choice(n, size=train_size, replace=False)

    # Training-sample labelling: paper excludes specialized-CNN
    # training from this baseline's cost, so no charges here.
    train_frames = [video.frame(int(i)) for i in train_idx]
    train_scores = scoring(train_frames)
    max_score = float(train_scores.max())
    threshold = lam * max_score
    classifier = _train_classifier(
        video.batch_pixels(train_idx),
        train_scores >= threshold,
        seed=seed,
    )
    if classifier is None:
        return None

    # Range selection scan with the specialized classifier.
    flagged: List[int] = []
    for start in range(0, n, batch):
        indices = np.arange(start, min(start + batch, n))
        mask = classifier.flag(video.batch_pixels(indices))
        flagged.extend(int(i) for i in indices[mask])
    cost_model.charge("specialized_infer", n)
    cost_model.charge("decode", n)

    if len(flagged) < k:
        return None

    # Oracle verification of every candidate (FP rate 0).
    verified_scores = oracle.score(video, flagged)
    order = np.lexsort((np.asarray(flagged), -verified_scores))
    top = [flagged[i] for i in order[:k]]
    top_scores = [float(verified_scores[i]) for i in order[:k]]
    return BaselineResult(
        method=f"select-and-topk(lambda={lam})",
        video_name=video.name,
        k=k,
        answer_ids=top,
        answer_scores=top_scores,
        simulated_seconds=cost_model.total_seconds(),
        extras={
            "lambda": lam,
            "candidates": float(len(flagged)),
            "oracle_calls": float(oracle.calls),
        },
    )


def calibrated_select_and_topk(
    video: SyntheticVideo,
    scoring: ScoringFunction,
    k: int,
    true_scores: np.ndarray,
    *,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    precision_target: float = 0.9,
    unit_costs=None,
    seed: int = 0,
) -> Optional[BaselineResult]:
    """Manually calibrated Select-and-Topk (the paper's protocol).

    Runs the lambda grid and returns the cheapest run whose precision
    (against ``true_scores``) meets the target; falls back to the
    highest-precision run if none does.
    """
    true_scores = np.asarray(true_scores, dtype=np.float64)
    kth = np.sort(true_scores)[::-1][k - 1]
    feasible: List[BaselineResult] = []
    fallback: Optional[BaselineResult] = None
    fallback_precision = -1.0
    for lam in lambdas:
        result = select_and_topk(
            video, scoring, k, lam, unit_costs=unit_costs, seed=seed)
        if result is None:
            continue
        precision = float(np.mean(
            [true_scores[i] >= kth for i in result.answer_ids]))
        result.extras["precision"] = precision
        if precision >= precision_target:
            feasible.append(result)
        elif precision > fallback_precision:
            fallback, fallback_precision = result, precision
    if feasible:
        return min(feasible, key=lambda r: r.simulated_seconds)
    return fallback
