"""HOG + linear-classifier counting baseline (paper Section 4, [20]).

A faithful miniature of the Dalal-Triggs pipeline: histograms of
oriented gradients are computed per cell, sub-windows of the image are
classified by a linear model over their HOG descriptors, and a frame's
score is the number of positively classified sub-windows (with greedy
neighborhood suppression). The classifier is trained on the same
labelled sample Everest's Phase 1 uses, with sub-window labels derived
from ground-truth object centres.

The paper finds HOG has (a) near-zero Top-K precision, because its
per-frame count errors scramble the ranking, and (b) high cost, because
it runs many classifier evaluations per frame. Both properties emerge
here: the miniature detector is genuinely noisy, and each frame charges
``hog_infer`` latency to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..video.synthetic import SyntheticVideo
from ..oracle.cost import CostModel
from .base import BaselineResult

#: HOG layout: square cells of this many pixels.
CELL = 4
#: Orientation histogram bins (unsigned gradients).
BINS = 9
#: Sub-window side, in cells (12 px windows on 24 px frames).
WINDOW_CELLS = 3


def hog_cells(pixels: np.ndarray) -> np.ndarray:
    """Per-cell orientation histograms for a batch of frames.

    Parameters
    ----------
    pixels:
        ``(N, H, W)`` grayscale batch.

    Returns
    -------
    ``(N, H//CELL, W//CELL, BINS)`` histogram grid.
    """
    arr = np.asarray(pixels, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[None]
    n, h, w = arr.shape
    gx = np.zeros_like(arr)
    gy = np.zeros_like(arr)
    gx[:, :, 1:-1] = arr[:, :, 2:] - arr[:, :, :-2]
    gy[:, 1:-1, :] = arr[:, 2:, :] - arr[:, :-2, :]
    magnitude = np.hypot(gx, gy)
    # Unsigned orientation in [0, pi).
    orientation = np.mod(np.arctan2(gy, gx), np.pi)
    bin_index = np.minimum(
        (orientation / np.pi * BINS).astype(np.int64), BINS - 1)

    ch, cw = h // CELL, w // CELL
    cells = np.zeros((n, ch, cw, BINS))
    trimmed_mag = magnitude[:, : ch * CELL, : cw * CELL]
    trimmed_bin = bin_index[:, : ch * CELL, : cw * CELL]
    for b in range(BINS):
        masked = np.where(trimmed_bin == b, trimmed_mag, 0.0)
        cells[:, :, :, b] = masked.reshape(
            n, ch, CELL, cw, CELL).sum(axis=(2, 4))
    return cells


def window_descriptors(pixels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """HOG descriptors for all sub-windows of each frame.

    Returns ``(descriptors, centers)`` where descriptors has shape
    ``(N, num_windows, WINDOW_CELLS^2 * BINS)`` and centers holds each
    window's (x, y) pixel centre.
    """
    cells = hog_cells(pixels)
    n, ch, cw, _ = cells.shape
    positions = [
        (cy, cx)
        for cy in range(ch - WINDOW_CELLS + 1)
        for cx in range(cw - WINDOW_CELLS + 1)
    ]
    descriptors = np.empty(
        (n, len(positions), WINDOW_CELLS * WINDOW_CELLS * BINS))
    centers = np.empty((len(positions), 2))
    for w_index, (cy, cx) in enumerate(positions):
        block = cells[:, cy:cy + WINDOW_CELLS, cx:cx + WINDOW_CELLS, :]
        flat = block.reshape(n, -1)
        norms = np.linalg.norm(flat, axis=1, keepdims=True)
        descriptors[:, w_index, :] = flat / np.maximum(norms, 1e-9)
        centers[w_index] = (
            (cx + WINDOW_CELLS / 2.0) * CELL,
            (cy + WINDOW_CELLS / 2.0) * CELL,
        )
    return descriptors, centers


class HogCounter:
    """Linear sub-window classifier turned object counter."""

    def __init__(self, *, learning_rate: float = 0.5, epochs: int = 120,
                 threshold: float = 0.5, seed: int = 0):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.threshold = threshold
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias = 0.0

    def fit(self, video: SyntheticVideo, frame_indices: np.ndarray) -> None:
        """Train on labelled frames; window label = contains an object
        centre within half a window of its own centre."""
        pixels = video.batch_pixels(frame_indices)
        descriptors, centers = window_descriptors(pixels)
        radius = WINDOW_CELLS * CELL / 2.0
        labels = np.zeros(descriptors.shape[:2])
        for row, frame_index in enumerate(frame_indices):
            frame = video.frame(int(frame_index))
            if not frame.objects:
                continue
            object_centers = np.array([box.center for box in frame.objects])
            dists = np.linalg.norm(
                centers[:, None, :] - object_centers[None, :, :], axis=2)
            labels[row] = (dists.min(axis=1) < radius).astype(float)

        x = descriptors.reshape(-1, descriptors.shape[-1])
        y = labels.reshape(-1)
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0, 0.01, x.shape[1])
        b = 0.0
        n = x.shape[0]
        for _ in range(self.epochs):
            z = x @ w + b
            p = 1.0 / (1.0 + np.exp(-z))
            grad = p - y
            w -= self.learning_rate * (x.T @ grad) / n
            b -= self.learning_rate * float(grad.mean())
        self.weights = w
        self.bias = b

    def count_batch(self, pixels: np.ndarray) -> np.ndarray:
        """Positive-window counts with greedy neighbor suppression."""
        if self.weights is None:
            raise NotFittedError("HogCounter.fit has not been called")
        descriptors, centers = window_descriptors(pixels)
        z = descriptors @ self.weights + self.bias
        probs = 1.0 / (1.0 + np.exp(-z))
        counts = np.zeros(probs.shape[0], dtype=np.int64)
        suppress_radius = WINDOW_CELLS * CELL * 0.6
        for row in range(probs.shape[0]):
            order = np.argsort(-probs[row])
            taken: List[int] = []
            for w_index in order:
                if probs[row, w_index] < self.threshold:
                    break
                if all(
                    np.linalg.norm(centers[w_index] - centers[t])
                    >= suppress_radius
                    for t in taken
                ):
                    taken.append(w_index)
            counts[row] = len(taken)
        return counts


def hog_topk(
    video: SyntheticVideo,
    k: int,
    *,
    train_fraction: float = 0.01,
    min_train: int = 300,
    unit_costs=None,
    seed: int = 0,
    batch: int = 2_048,
) -> BaselineResult:
    """Scan the video with the HOG counter; Top-K by HOG counts."""
    if not 0 < train_fraction <= 1:
        raise ConfigurationError("train_fraction must be in (0, 1]")
    cost_model = CostModel(unit_costs)
    n = len(video)
    rng = np.random.default_rng(seed)
    train_size = min(n, max(min_train, int(train_fraction * n)))
    train_idx = rng.choice(n, size=train_size, replace=False)

    counter = HogCounter(seed=seed)
    counter.fit(video, train_idx)

    counts = np.empty(n, dtype=np.int64)
    for start in range(0, n, batch):
        indices = np.arange(start, min(start + batch, n))
        counts[indices] = counter.count_batch(video.batch_pixels(indices))
    cost_model.charge("hog_infer", n)
    cost_model.charge("decode", n)

    order = np.lexsort((np.arange(n), -counts))
    top = order[:k]
    return BaselineResult(
        method="hog",
        video_name=video.name,
        k=k,
        answer_ids=[int(i) for i in top],
        answer_scores=[float(counts[i]) for i in top],
        simulated_seconds=cost_model.total_seconds(),
        extras={"train_frames": float(train_size)},
    )
