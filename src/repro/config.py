"""Configuration dataclasses shared across the library.

The defaults follow Section 3.5 / Section 4 ("System configurations") of
the paper, scaled down where the paper's values assume hours-long
1080p videos and a GPU:

* training sample size: ``min(0.5% * n, 30000)`` frames (paper default);
* holdout size: 3000 frames, capped at the training-sample size;
* difference-detector MSE threshold 1e-4 with clip size 30;
* cleaning batch size ``b = 8``;
* hyperparameter grid ``g ∈ {5, 8, 12, 15}``, ``h ∈ {20, 30, 40}``
  (trimmed by default so the numpy trainer stays fast — the full grid
  is :data:`PAPER_CMDN_GRID`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .errors import ConfigurationError

#: The paper's full CMDN hyperparameter grid (12 models, Section 3.5).
PAPER_CMDN_GRID: Tuple[Tuple[int, int], ...] = tuple(
    (g, h) for g in (5, 8, 12, 15) for h in (20, 30, 40)
)

#: Reduced grid used by default so pure-numpy training stays interactive.
DEFAULT_CMDN_GRID: Tuple[Tuple[int, int], ...] = ((3, 8), (5, 12), (8, 16))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class Phase1Config:
    """Configuration for Phase 1 (building the uncertain relation D0)."""

    #: Fraction of frames sampled for oracle labelling. The paper uses
    #: 0.5% capped at 30000; on our ~1000x shorter synthetic videos the
    #: cap never binds, so a slightly higher fraction with a floor keeps
    #: the proxy trainable while the labelling share of total cost stays
    #: in the paper's 2-10% band.
    sample_fraction: float = 0.01
    #: Hard cap on the number of labelled training frames (paper: 30000).
    max_train_samples: int = 30_000
    #: Minimum number of labelled training frames regardless of length.
    min_train_samples: int = 500
    #: Holdout-set size used for model selection (paper: 3000, scaled).
    holdout_samples: int = 300
    #: (num_gaussians, num_hypotheses) grid searched during training.
    cmdn_grid: Sequence[Tuple[int, int]] = DEFAULT_CMDN_GRID
    #: Epochs per candidate model (enough for the sigma head to
    #: calibrate; undertrained sigmas inflate Phase 2 cleaning).
    epochs: int = 40
    #: Mini-batch size for CMDN training.
    batch_size: int = 64
    #: Adam learning rate.
    learning_rate: float = 2e-3
    #: Use the fast feature-based MDN instead of the conv CMDN.
    use_feature_mdn: bool = True
    #: Quantization step for non-counting scores (None -> integer scores).
    quantization_step: Optional[float] = None
    #: Number of sigmas beyond which Gaussian tails are truncated.
    truncate_sigmas: float = 3.0
    #: Restrict the labelling sample (and the sample-size arithmetic) to
    #: the first ``sample_prefix`` frames. ``None`` samples the whole
    #: video — the batch default. Streaming sessions pin this to their
    #: bootstrap segment so a batch run over any longer prefix trains
    #: the byte-identical proxy the live engine carries forward.
    sample_prefix: Optional[int] = None

    def __post_init__(self) -> None:
        _require(0.0 < self.sample_fraction <= 1.0,
                 "sample_fraction must be in (0, 1]")
        _require(self.max_train_samples >= 1, "max_train_samples must be >= 1")
        _require(self.min_train_samples >= 1, "min_train_samples must be >= 1")
        _require(self.holdout_samples >= 1, "holdout_samples must be >= 1")
        _require(len(self.cmdn_grid) >= 1, "cmdn_grid must not be empty")
        _require(self.epochs >= 1, "epochs must be >= 1")
        _require(self.truncate_sigmas > 0, "truncate_sigmas must be > 0")
        _require(self.sample_prefix is None or self.sample_prefix >= 1,
                 "sample_prefix must be None or >= 1")

    def sample_pool(self, num_frames: int) -> int:
        """The number of leading frames labelling may draw from."""
        if self.sample_prefix is None:
            return num_frames
        return min(num_frames, self.sample_prefix)

    def train_sample_size(self, num_frames: int) -> int:
        """Return the paper's ``min(0.5% * n, 30000)`` with a small floor."""
        proportional = int(self.sample_fraction * num_frames)
        size = min(max(proportional, self.min_train_samples),
                   self.max_train_samples)
        return min(size, num_frames)

    def holdout_sample_size(self, num_frames: int) -> int:
        """Holdout size, never larger than a third of the video."""
        return max(1, min(self.holdout_samples, num_frames // 3 or 1))


@dataclass(frozen=True)
class DiffDetectorConfig:
    """Configuration of the MSE difference detector (Section 3.5)."""

    #: Frames whose MSE against the clip representative falls below this
    #: threshold are discarded. Pixels are normalized to [0, 1].
    mse_threshold: float = 1e-4
    #: Clip size ``c``; each clip is compared against its middle frame.
    clip_size: int = 30

    def __post_init__(self) -> None:
        _require(self.mse_threshold >= 0, "mse_threshold must be >= 0")
        _require(self.clip_size >= 1, "clip_size must be >= 1")


@dataclass(frozen=True)
class SelectCandidateConfig:
    """Knobs of the Select-candidate algorithm (Section 3.3.2)."""

    #: Use the Eq-7/8 upper bound to early-stop the argmax scan.
    use_upper_bound: bool = True
    #: Re-sort the stale psi order every ``resort_every`` iterations for
    #: the first ``resort_warmup`` iterations (paper: every 10 for the
    #: first 100), afterwards only when S_k or S_p change.
    resort_every: int = 10
    resort_warmup: int = 100

    def __post_init__(self) -> None:
        _require(self.resort_every >= 1, "resort_every must be >= 1")
        _require(self.resort_warmup >= 0, "resort_warmup must be >= 0")


@dataclass(frozen=True)
class Phase2Config:
    """Configuration for Phase 2 (oracle-in-the-loop cleaning)."""

    #: Batch inference size ``b`` (paper default: 8).
    batch_size: int = 8
    #: Optional hard cap on oracle invocations; ``None`` = unbounded.
    oracle_budget: Optional[int] = None
    #: Fraction of a window's frames sampled when confirming a window
    #: (paper: 10%).
    window_sample_fraction: float = 0.1
    select_candidate: SelectCandidateConfig = field(
        default_factory=SelectCandidateConfig)

    def __post_init__(self) -> None:
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.oracle_budget is None or self.oracle_budget >= 1,
                 "oracle_budget must be None or >= 1")
        _require(0.0 < self.window_sample_fraction <= 1.0,
                 "window_sample_fraction must be in (0, 1]")


@dataclass(frozen=True)
class EverestConfig:
    """Top-level engine configuration bundling both phases."""

    phase1: Phase1Config = field(default_factory=Phase1Config)
    diff: DiffDetectorConfig = field(default_factory=DiffDetectorConfig)
    phase2: Phase2Config = field(default_factory=Phase2Config)
    #: Seed used for sampling decisions inside the engine.
    seed: int = 0

    @staticmethod
    def fast() -> "EverestConfig":
        """A configuration tuned for unit tests and small demos."""
        return EverestConfig(
            phase1=Phase1Config(
                sample_fraction=0.05,
                min_train_samples=128,
                holdout_samples=64,
                cmdn_grid=((3, 16),),
                epochs=25,
            ),
        )
