"""Live top-k maintenance: batch-equivalent answers, delta-sized cost.

The cleaning loop (:class:`~repro.core.cleaner.TopKCleaner`) is a
deterministic function of the uncertain relation and the oracle's
answers. Oracle answers are immutable facts about frames — once a
frame's exact score has been revealed (as a Phase-1 label, a Phase-2
confirmation, or a drift audit), revealing it again costs nothing but
latency. :class:`LiveTopK` exploits exactly that: after every append
it re-certifies its query against the refreshed relation, but the
confirming oracle is backed by the session-wide :class:`ScoreCache`,
so only frames whose top-k membership *could* have changed — the new
arrivals, re-segmented windows, tuples the selector now reaches —
trigger fresh UDF invocations. Ledgers still charge the full
batch-equivalent amounts (the report must be bit-identical to a batch
re-run); the cache-miss count is tracked separately in
:class:`~repro.streaming.phase1_incremental.StreamingStats` as the
physical cost streaming actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..api.executor import QueryExecutor
from ..core.result import QueryReport
from ..errors import OracleBudgetExceededError, QueryError
from ..oracle.base import Oracle
from ..oracle.cost import CostModel
from .phase1_incremental import StreamingStats


class ScoreCache:
    """Session-wide memo of revealed exact frame scores.

    Keyed by frame id; scores are deterministic per frame, so an entry
    never invalidates. Shared by the Phase-1 label oracle, the drift
    auditor, and every subscription's confirming oracle.
    """

    def __init__(self, scores: Optional[Dict[int, float]] = None):
        self._scores: Dict[int, float] = dict(scores or {})

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, frame: int) -> bool:
        return int(frame) in self._scores

    def get(self, frame: int) -> float:
        return self._scores[int(frame)]

    def put(self, frame: int, score: float) -> None:
        self._scores[int(frame)] = float(score)

    def as_dict(self) -> Dict[int, float]:
        return dict(self._scores)


class CachingOracle(Oracle):
    """An :class:`~repro.oracle.base.Oracle` that memoizes revelations.

    Charging, call counting, and budget enforcement are identical to
    the base oracle — a query's ledger and
    :class:`~repro.core.result.QueryReport.oracle_calls` must match a
    batch run's exactly. Only the *physical* UDF invocation is skipped
    for frames already in the cache; ``fresh_calls`` counts the misses.
    """

    def __init__(
        self,
        scoring,
        cost_model: Optional[CostModel] = None,
        *,
        cache: ScoreCache,
        budget: Optional[int] = None,
        cost_key: Optional[str] = None,
    ):
        super().__init__(
            scoring, cost_model, budget=budget, cost_key=cost_key)
        self.cache = cache
        self.fresh_calls = 0

    def score(self, video, indices: Sequence[int]) -> np.ndarray:
        indices = [int(i) for i in indices]
        if self.budget is not None and \
                self.calls + len(indices) > self.budget:
            raise OracleBudgetExceededError(self.budget)
        self.calls += len(indices)
        self.cost_model.charge(self.cost_key, len(indices))
        seen = set()
        missing = [
            i for i in indices
            if i not in self.cache and not (i in seen or seen.add(i))
        ]
        if missing:
            frames = [video.frame(i) for i in missing]
            for i, score in zip(missing, self.scoring(frames)):
                self.cache.put(i, float(score))
            self.fresh_calls += len(missing)
        return np.asarray(
            [self.cache.get(i) for i in indices], dtype=np.float64)


class StreamingQueryExecutor(QueryExecutor):
    """The batch executor with a cache-backed confirming oracle.

    Everything else — relation cloning, window aggregation, ledger
    assembly, report construction — is inherited verbatim, which is
    what keeps live reports bit-identical to batch ones.
    """

    def __init__(self, session, *, cache: ScoreCache,
                 stats: Optional[StreamingStats] = None):
        super().__init__(session, workers=1)
        self._cache = cache
        self._stats = stats

    def _phase2_context(self, plan):
        phase2_cost = CostModel(
            plan.unit_costs, wall_clock=not plan.deterministic_timing)
        confirm_oracle = CachingOracle(
            self.session.scoring,
            phase2_cost,
            cache=self._cache,
            cost_key="oracle_confirm",
            budget=plan.oracle_budget,
        )
        self._last_confirm = confirm_oracle
        return phase2_cost, confirm_oracle

    def execute_fresh(self, plan) -> "tuple[QueryReport, int]":
        """Execute a plan; also return the fresh-confirmation count."""
        self._last_confirm: Optional[CachingOracle] = None
        report = self.execute(plan)
        fresh = self._last_confirm.fresh_calls if self._last_confirm else 0
        if self._stats is not None:
            self._stats.fresh_confirm_calls += fresh
        return report, fresh


@dataclass
class LiveTopK:
    """One continuously maintained top-k answer over a growing video.

    Created by ``query.subscribe()`` on a streaming session. Holds the
    fluent query (recompiled per append — the plan's frame count tracks
    the watermark) and the report history: index 0 is the answer at
    subscribe time, one more per append. Iterating yields the reports
    delivered so far.
    """

    query: object  # repro.api.query.Query (kept loose: frozen dataclass)
    reports: List[QueryReport] = field(default_factory=list)
    #: Fresh (cache-miss) confirmation calls behind each report.
    fresh_confirms: List[int] = field(default_factory=list)

    @property
    def latest(self) -> QueryReport:
        if not self.reports:
            raise QueryError("subscription has not produced a report yet")
        return self.reports[-1]

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def refresh(self, executor: StreamingQueryExecutor) -> QueryReport:
        """Re-certify against the current watermark (called per append)."""
        report, fresh = executor.execute_fresh(self.query.plan())
        self.reports.append(report)
        self.fresh_confirms.append(fresh)
        return report

    def trim(self, max_history: int) -> None:
        """Drop all but the last ``max_history`` reports."""
        del self.reports[:-max_history]
        del self.fresh_confirms[:-max_history]
