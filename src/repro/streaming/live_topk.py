"""Live top-k maintenance: batch-equivalent answers, delta-sized cost.

The cleaning loop (:class:`~repro.core.cleaner.TopKCleaner`) is a
deterministic function of the uncertain relation and the oracle's
answers. Oracle answers are immutable facts about frames — once a
frame's exact score has been revealed (as a Phase-1 label, a Phase-2
confirmation, or a drift audit), revealing it again costs nothing but
latency. :class:`LiveTopK` exploits exactly that: after every append
it re-certifies its query against the refreshed relation, but the
confirming oracle is backed by the session-wide :class:`ScoreCache`,
so only frames whose top-k membership *could* have changed — the new
arrivals, re-segmented windows, tuples the selector now reaches —
trigger fresh UDF invocations. Ledgers still charge the full
batch-equivalent amounts (the report must be bit-identical to a batch
re-run); the cache-miss count is tracked separately in
:class:`~repro.streaming.phase1_incremental.StreamingStats` as the
physical cost streaming actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..api.executor import QueryExecutor
from ..core.result import QueryReport
from ..errors import QueryError
# Promoted to repro.oracle.cache (the service layer shares them across
# sessions); re-exported here for the streaming-era import path.
from ..oracle.cache import CachingOracle, ScoreCache  # noqa: F401
from .phase1_incremental import StreamingStats


class StreamingQueryExecutor(QueryExecutor):
    """The batch executor with a cache-backed confirming oracle.

    Everything else — relation cloning, window aggregation, ledger
    assembly, report construction — is inherited verbatim (the base
    executor builds a :class:`~repro.oracle.cache.CachingOracle`
    whenever it has a score cache), which is what keeps live reports
    bit-identical to batch ones.
    """

    def __init__(self, session, *, cache: ScoreCache,
                 stats: Optional[StreamingStats] = None):
        super().__init__(session, workers=1, score_cache=cache)
        self._stats = stats

    def execute_fresh(self, plan) -> "tuple[QueryReport, int]":
        """Execute a plan; also return the fresh-confirmation count."""
        self.last_confirm_oracle = None
        report = self.execute(plan)
        oracle = self.last_confirm_oracle
        fresh = getattr(oracle, "fresh_calls", 0) if oracle else 0
        if self._stats is not None:
            self._stats.fresh_confirm_calls += fresh
        return report, fresh


@dataclass
class LiveTopK:
    """One continuously maintained top-k answer over a growing video.

    Created by ``query.subscribe()`` on a streaming session. Holds the
    fluent query (recompiled per append — the plan's frame count tracks
    the watermark) and the report history: index 0 is the answer at
    subscribe time, one more per append. Iterating yields the reports
    delivered so far.
    """

    query: object  # repro.api.query.Query (kept loose: frozen dataclass)
    reports: List[QueryReport] = field(default_factory=list)
    #: Fresh (cache-miss) confirmation calls behind each report.
    fresh_confirms: List[int] = field(default_factory=list)

    @property
    def latest(self) -> QueryReport:
        if not self.reports:
            raise QueryError("subscription has not produced a report yet")
        return self.reports[-1]

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def refresh(self, executor: StreamingQueryExecutor) -> QueryReport:
        """Re-certify against the current watermark (called per append)."""
        report, fresh = executor.execute_fresh(self.query.plan())
        self.reports.append(report)
        self.fresh_confirms.append(fresh)
        return report

    def trim(self, max_history: int) -> None:
        """Drop all but the last ``max_history`` reports."""
        del self.reports[:-max_history]
        del self.fresh_confirms[:-max_history]
