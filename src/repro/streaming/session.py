"""Streaming sessions: maintain answers over a growing video.

A :class:`StreamingSession` is a :class:`~repro.api.session.Session`
whose video is a :class:`~repro.video.streaming.StreamingVideo` view.
Opening one pins the Phase-1 training policy to the bootstrap segment
(``phase1.sample_prefix``), which is what makes every live answer
comparable — bit-identically, while drift auditing is off — to a batch
run of the engine over the same frames under the same policy:

    stream = Session.open_stream(video, "count[car]", initial_frames=5_000)
    live = stream.query().topk(10).guarantee(0.9).subscribe()
    stream.append(900)        # one report per append, per subscription
    live.latest.summary()

``append`` advances the watermark, folds the arrivals into the
incremental Phase-1 state, and re-certifies every subscription through
a cache-backed executor, so the *physical* oracle work per append
scales with the delta while reports keep batch semantics.
``checkpoint``/``resume`` persist the whole state through the artifact
store; a resumed session re-serves its watermark with **zero** Phase-1
oracle calls.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api.session import Phase1Entry, Session, phase1_key
from ..config import EverestConfig
from ..core.result import QueryReport
from ..errors import CheckpointError, QueryError
from ..oracle.cost import CostModel
from ..trace import span as trace_span
from ..video.streaming import Segment, StreamingVideo
from .live_topk import (
    CachingOracle,
    LiveTopK,
    ScoreCache,
    StreamingQueryExecutor,
)
from .phase1_incremental import (
    IncrementalPhase1,
    StreamingConfig,
    StreamingStats,
)
from .store import read_checkpoint, write_checkpoint


@dataclass
class AppendResult:
    """Everything one ``append`` changed, for callers and experiments."""

    segment: Segment
    watermark: int
    #: One refreshed report per live subscription, in subscribe order.
    reports: List[QueryReport] = field(default_factory=list)
    #: Drift statistic after auditing (None while unknown / disabled).
    drift: Optional[float] = None
    retrained: bool = False
    audited: int = 0
    #: Physical (cache-miss) work this append actually paid.
    fresh_label_calls: int = 0
    fresh_confirm_calls: int = 0
    fresh_inferred_frames: int = 0
    wall_seconds: float = 0.0

    @property
    def fresh_oracle_calls(self) -> int:
        return self.fresh_label_calls + self.fresh_confirm_calls

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe summary (the gateway's ``/append`` payload).

        Reports are serialized through their canonical
        :meth:`~repro.core.result.QueryReport.to_json` strings so the
        wire bytes equal direct in-process execution's.
        """
        return {
            "segment": {
                "index": self.segment.index,
                "start": self.segment.start,
                "end": self.segment.end,
            },
            "watermark": self.watermark,
            "reports": [report.to_json() for report in self.reports],
            "drift": self.drift,
            "retrained": self.retrained,
            "audited": self.audited,
            "fresh_label_calls": self.fresh_label_calls,
            "fresh_confirm_calls": self.fresh_confirm_calls,
            "fresh_inferred_frames": self.fresh_inferred_frames,
            "wall_seconds": self.wall_seconds,
        }


class StreamingSession(Session):
    """An appendable (video, UDF) session with live-maintained answers."""

    def __init__(
        self,
        video,
        scoring,
        *,
        initial_frames: Optional[int] = None,
        config: Optional[EverestConfig] = None,
        unit_costs: Optional[Dict[str, float]] = None,
        streaming: Optional[StreamingConfig] = None,
        autosave_path=None,
        score_cache: Optional[ScoreCache] = None,
    ):
        if isinstance(video, StreamingVideo):
            if initial_frames is not None:
                raise QueryError(
                    "initial_frames is implied by an existing "
                    "StreamingVideo; pass one or the other")
            stream = video
        else:
            if initial_frames is None:
                raise QueryError(
                    "open_stream needs initial_frames: the bootstrap "
                    "segment Phase 1 trains on")
            stream = StreamingVideo(video, initial_frames)
        config = config if config is not None else EverestConfig()
        if config.phase1.sample_prefix is None:
            # Pin training to the bootstrap segment: the policy under
            # which live answers equal batch re-runs (DESIGN.md §7).
            config = dataclasses.replace(
                config,
                phase1=dataclasses.replace(
                    config.phase1, sample_prefix=stream.watermark),
            )
        self._user_unit_costs = dict(unit_costs) if unit_costs else None
        super().__init__(stream, scoring, config=config,
                         unit_costs=unit_costs)
        self.streaming = streaming if streaming is not None \
            else StreamingConfig()
        self.autosave_path = autosave_path
        # ``score_cache`` lets the service layer promote this session's
        # revelation memo to service scope (shared with batch queries
        # over the same footage); ledgers are unaffected either way.
        self._cache = score_cache if score_cache is not None \
            else ScoreCache()
        self._stats = StreamingStats()
        #: Service hook: when set, ``append`` hands the per-append
        #: subscription refresh pass to this callable (the service
        #: routes it through its scheduler) instead of running inline.
        self.refresh_dispatcher = None
        self._label_oracle = CachingOracle(
            scoring,
            CostModel(self._unit_costs),
            cache=self._cache,
            cost_key="oracle_label",
        )
        self._incremental = IncrementalPhase1(
            stream, scoring, self.config, self._unit_costs,
            self._label_oracle, self.streaming, self._stats)
        self._entry: Optional[Phase1Entry] = None
        self._subscriptions: List[LiveTopK] = []
        self._append_log: List[AppendResult] = []

    # ------------------------------------------------------------------
    # Streaming lifecycle
    # ------------------------------------------------------------------
    @property
    def video_stream(self) -> StreamingVideo:
        return self.video  # typed alias; Session stores it as .video

    @property
    def watermark(self) -> int:
        return self.video.watermark

    @property
    def segments(self) -> List[Segment]:
        return self.video.segments

    @property
    def stats(self) -> StreamingStats:
        self._sync_label_stats()
        return self._stats

    @property
    def diverged(self) -> bool:
        """True once auditing/retraining broke batch-ledger equality."""
        return self._incremental.diverged

    @property
    def drift(self) -> Optional[float]:
        tracker = self._incremental.drift_tracker
        return tracker.drift if tracker is not None else None

    @property
    def append_log(self) -> List[AppendResult]:
        return list(self._append_log)

    def _sync_label_stats(self) -> None:
        self._stats.fresh_label_calls = self._label_oracle.fresh_calls

    def _ensure_bootstrap(self) -> Phase1Entry:
        if self._entry is None:
            self._entry = self._incremental.bootstrap()
            self._sync_label_stats()
        return self._entry

    def append(self, num_frames: int) -> AppendResult:
        """Reveal ``num_frames`` more source frames and re-certify.

        Folds the arrivals into the Phase-1 state (diff, inference,
        relation; drift audit and possible warm retrain when enabled),
        refreshes every subscription, and returns the
        :class:`AppendResult` — including the physical cache-miss work
        this append paid, as opposed to the batch-equivalent charges
        its reports carry.
        """
        self._ensure_bootstrap()
        started = time.perf_counter()
        before = self.stats.snapshot()
        segment = self.video.append(num_frames)
        self._entry, outcome = self._incremental.advance(segment)
        # Refresh every subscription even if one fails (e.g. a
        # subscribed query's oracle budget trips): the watermark and
        # Phase-1 state have already advanced, so the append must
        # complete its bookkeeping either way — the first error
        # re-raises after the result is logged, leaving the session
        # consistent and retryable. A service-attached session hands
        # the whole pass to the dispatcher (one scheduled job, so it
        # competes fairly with batch tenants) and blocks on it — and a
        # dispatch failure (admission refusal, service closing) is
        # treated exactly like a refresh failure: bookkeeping below
        # still runs, the error re-raises at the end.
        if self.refresh_dispatcher is not None:
            try:
                reports, refresh_error = \
                    self.refresh_dispatcher(self._refresh_subscriptions)
            except Exception as error:
                reports, refresh_error = [], error
        else:
            reports, refresh_error = self._refresh_subscriptions()
        self._stats.appends += 1
        self._sync_label_stats()
        after = self._stats.snapshot()
        result = AppendResult(
            segment=segment,
            watermark=self.watermark,
            reports=reports,
            drift=outcome.drift,
            retrained=outcome.retrained,
            audited=outcome.audited,
            fresh_label_calls=(
                after["fresh_label_calls"] - before["fresh_label_calls"]),
            fresh_confirm_calls=(
                after["fresh_confirm_calls"]
                - before["fresh_confirm_calls"]),
            fresh_inferred_frames=(
                after["fresh_inferred_frames"]
                - before["fresh_inferred_frames"]),
            wall_seconds=time.perf_counter() - started,
        )
        self._append_log.append(result)
        self._trim_history()
        if self.autosave_path is not None:
            self.checkpoint(self.autosave_path)
        if refresh_error is not None:
            raise refresh_error
        return result

    def _trim_history(self) -> None:
        """Bound per-event history under ``max_history``.

        Trims only *delivered* results — the append log and each
        subscription's report history (the latest always survives).
        Phase-1 bookkeeping and, on windowed sessions, the window's
        own frame set are never touched: history pruning must not
        evict frames still inside an open window (DESIGN.md §13).
        """
        limit = self.streaming.max_history
        if limit is None:
            return
        del self._append_log[:-limit]
        for subscription in self._subscriptions:
            subscription.trim(limit)

    def _refresh_subscriptions(self):
        """One refresh pass over every subscription (see append)."""
        reports: List[QueryReport] = []
        refresh_error: Optional[BaseException] = None
        for index, subscription in enumerate(self._subscriptions):
            try:
                with trace_span(
                        "subscription_refresh", category="streaming",
                        subscription=index,
                        watermark=self.watermark) as refresh_span:
                    report = subscription.refresh(self._executor())
                    if refresh_span is not None:
                        refresh_span.set(
                            k=report.k, confidence=report.confidence)
                reports.append(report)
            except Exception as error:
                if refresh_error is None:
                    refresh_error = error
        return reports, refresh_error

    def share_inference_cache(self, shared) -> None:
        """Adopt a service-scope block-inference cache (DESIGN.md §8).

        Proxy mixtures already inferred by sibling sessions over the
        same artifact become free here (and vice versa). No-op once
        this session has warm-retrained — its proxy is private then.
        """
        self._incremental.adopt_inference_cache(shared)

    def subscribe(self, query) -> LiveTopK:
        """Register a query for per-append maintenance.

        The subscription is refreshed immediately (its first report
        answers over the current watermark) and again on every append.
        """
        if query.session is not self:
            raise QueryError(
                "subscribe a query built from this streaming session")
        self._ensure_bootstrap()
        subscription = LiveTopK(query=query)
        subscription.refresh(self._executor())
        self._subscriptions.append(subscription)
        return subscription

    def attach_subscription(self, subscription) -> None:
        """Register an external live consumer refreshed on every append.

        The object only needs the subscription protocol —
        ``refresh(executor)`` returning a report and
        ``trim(max_history)``. This is how corpus subscriptions
        (DESIGN.md §9) ride the per-append refresh pass: a member's
        append re-certifies the *federated* answer alongside the
        member's own live queries, under the same error/bookkeeping
        discipline (and through the service dispatcher when attached).
        """
        self._ensure_bootstrap()
        self._subscriptions.append(subscription)

    @property
    def subscriptions(self) -> List[LiveTopK]:
        return list(self._subscriptions)

    # ------------------------------------------------------------------
    # Session surface, redirected at the incremental state
    # ------------------------------------------------------------------
    def _executor(self) -> StreamingQueryExecutor:
        return StreamingQueryExecutor(
            self, cache=self._cache, stats=self._stats)

    def _check_config(self, config: Optional[EverestConfig]) -> None:
        if config is not None and \
                phase1_key(config) != phase1_key(self.config):
            raise QueryError(
                "streaming sessions maintain Phase 1 for the session "
                "configuration only; Phase 2 overrides are fine, but "
                "a different (phase1, diff, seed) needs its own session")

    def phase1(self, config: Optional[EverestConfig] = None) -> Phase1Entry:
        self._check_config(config)
        return self._ensure_bootstrap()

    def phase1_cost_model(
        self, config: Optional[EverestConfig] = None
    ) -> CostModel:
        self._check_config(config)
        return self._ensure_bootstrap().cost_model

    @property
    def phase1_runs(self) -> int:
        return 1 if self._entry is not None else 0

    def adopt_phase1(self, entry, config=None) -> None:
        raise QueryError(
            "streaming sessions build Phase 1 incrementally; "
            "adopt_phase1 is a batch-session operation")

    def execute(self, plan) -> QueryReport:
        # execute_fresh keeps StreamingStats honest: ad-hoc queries pay
        # cache-miss UDF calls too, not just subscriptions.
        return self._executor().execute_fresh(plan)[0]

    def execute_many(
        self, plans: Sequence, *, workers: Optional[int] = None
    ) -> List[QueryReport]:
        if workers is not None and workers > 1:
            # Make the single-process constraint visible instead of
            # silently delivering no speedup.
            raise QueryError(
                "streaming sessions execute serially (the incremental "
                "state is single-process); fan a sweep out from a "
                "batch Session instead")
        executor = self._executor()
        return [executor.execute_fresh(plan)[0] for plan in plans]

    # ------------------------------------------------------------------
    # Batch reference
    # ------------------------------------------------------------------
    def batch_session(self) -> Session:
        """A from-scratch batch session over the current prefix.

        Shares nothing with this session except the (sealed) frames
        and the pinned configuration — the reference the equivalence
        suite compares live answers against.
        """
        return Session(
            self.video.snapshot(),
            self.scoring,
            config=self.config,
            unit_costs=self._user_unit_costs,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def checkpoint(self, path) -> None:
        """Persist the full streaming state to ``path`` (a directory).

        Subscriptions are not persisted (they close over live session
        objects); re-subscribe after :meth:`resume`. Everything else —
        watermark, CMDN weights, diff arrays, inference blocks, score
        cache, ledgers, drift state — round-trips, so the resumed
        session re-serves its watermark with zero Phase-1 oracle calls.
        """
        self._ensure_bootstrap()
        state = self._checkpoint_state()
        write_checkpoint(
            path,
            state,
            metadata={
                "video_name": self.video.name,
                "udf_name": self.scoring.name,
                "watermark": self.watermark,
                "segments": len(self.video.segments),
                "diverged": self.diverged,
            },
        )

    def _checkpoint_state(self) -> Dict[str, object]:
        """The pickled state dict (subclasses add their own fields)."""
        return {
            "video": self.video,
            "scoring": self.scoring,
            "config": self.config,
            "user_unit_costs": self._user_unit_costs,
            "streaming": self.streaming,
            "autosave_path": self.autosave_path,
            "incremental": self._incremental,
            "cache": self._cache,
            "stats": self.stats,
            "append_log": self._append_log,
        }

    def _restore_extra(self, state: Dict[str, object]) -> None:
        """Splice subclass-only checkpoint fields back in (hook)."""

    @classmethod
    def resume(cls, path) -> "StreamingSession":
        """Warm-start a session from a checkpoint directory."""
        state, _manifest = read_checkpoint(path)
        try:
            video = state["video"]
            scoring = state["scoring"]
            config = state["config"]
        except KeyError as error:  # pragma: no cover - corrupt state
            raise CheckpointError(
                f"checkpoint state is missing field {error}") from error
        if cls is StreamingSession:
            # A checkpointed windowed session resumes as one even when
            # restored through the base class.
            from ..windowed.session import WindowedSession
            from ..windowed.view import WindowedVideo

            if isinstance(video, WindowedVideo):
                cls = WindowedSession
        session = cls(
            video,
            scoring,
            config=config,
            unit_costs=state.get("user_unit_costs"),
            streaming=state.get("streaming"),
            autosave_path=state.get("autosave_path"),
        )
        # Splice the persisted components back in. The pickle graph
        # preserved identity between them (the maintainer's label
        # oracle shares the score cache), so rewiring is by reference.
        session._cache = state["cache"]
        session._stats = state["stats"]
        session._incremental = state["incremental"]
        session._label_oracle = session._incremental.label_oracle
        session._append_log = list(state.get("append_log", []))
        session._restore_extra(state)
        session._entry = session._incremental.rebuild_entry()
        return session
