"""Incremental Phase-1 maintenance for streaming sessions (DESIGN.md §7).

A batch run pays Phase 1 — labelling, CMDN grid training, difference
detection, proxy inference — once per video. Under appends the naive
approach re-pays all of it per arrival. This module maintains the
Phase-1 artifacts *incrementally* while keeping them **bit-identical**
to a from-scratch batch run over the current prefix (under the pinned
``sample_prefix`` training policy), so the live engine inherits the
batch engine's guarantees verbatim:

* :class:`IncrementalDiff` re-runs the MSE detector only over clips
  that gained frames. Clips are aligned to global frame indices (as in
  the batch detector), so completed clips never change and the one
  *provisional* clip straddling the old watermark is reprocessed when
  it grows — its anchor frame moves, which can flip retain decisions.
* :class:`BlockInferenceCache` caches proxy inference per 512-frame
  block of the retained array. Blocks — not arbitrary deltas — because
  BLAS matmul accumulation differs across batch shapes: scoring a
  delta in a different batch than the batch engine would perturbs the
  mixtures in the last ulp and breaks bit-equivalence. 512 equals the
  network's internal prediction batch and divides the chunk size used
  by :func:`~repro.core.phase1.predict_mixtures_chunked`, so block
  boundaries coincide exactly with the batch engine's sub-batches.
* :class:`DriftTracker` audits a small oracle-labelled sample of each
  append and compares the proxy's NLL on it against the bootstrap
  holdout reference; sustained excess triggers a *warm retrain*
  (continue training the current weights on bootstrap + audited
  labels). Auditing and retraining charge the ledger honestly and mark
  the session as diverged from the batch reference.

The maintainer rebuilds the uncertain relation from cached mixtures on
every append (:func:`~repro.core.uncertain.build_relation` is a cheap
vectorized quantization; the expensive artifacts above are what is
cached) and replays the batch ledger via
:func:`~repro.core.phase1.replay_phase1_charges`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..config import EverestConfig
from ..core.phase1 import (
    _INFER_CHUNK,
    _sample_indices,
    Phase1Result,
    replay_phase1_charges,
)
from ..core.uncertain import build_relation
from ..errors import ConfigurationError
from ..models.mdn import GaussianMixture
from ..models.trainer import train_network, train_proxy_grid
from ..oracle.cost import CostModel
from ..video.diff import DiffResult, process_clip
from ..video.streaming import Segment, StreamingVideo

#: Inference cache granularity. Must equal the internal prediction
#: batch of :meth:`~repro.models.network.MixtureDensityNetwork.predict`
#: and divide the batch engine's inference chunk, so cached blocks are
#: byte-identical to the sub-batches a batch run computes.
INFER_BLOCK = 512

if _INFER_CHUNK % INFER_BLOCK != 0:  # not assert: survives python -O
    raise RuntimeError(
        "INFER_BLOCK must divide the batch inference chunk "
        f"({INFER_BLOCK} vs {_INFER_CHUNK}): block-cached mixtures "
        "would stop matching batch inference bit for bit")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs of the streaming maintainers (drift auditing off by default).

    With ``audit_fraction == 0`` a streaming session charges exactly
    what the batch engine charges and stays bit-equivalent to it; turn
    auditing on to detect drift at the price of extra ``oracle_label``
    work (and batch divergence once a retrain fires).
    """

    #: Fraction of each append's frames oracle-audited for drift.
    audit_fraction: float = 0.0
    #: Excess of audit NLL over the bootstrap holdout NLL that triggers
    #: a warm retrain; ``None`` disables retraining.
    drift_threshold: Optional[float] = None
    #: Epochs of a warm retrain (default: the Phase-1 ``epochs``).
    retrain_epochs: Optional[int] = None
    #: Rolling window of audited frames the drift statistic averages.
    audit_window: int = 256
    #: Minimum audited frames before drift is reported at all.
    min_audit_for_drift: int = 16
    #: Hard cap on audited frames per append.
    max_audit_per_append: int = 64
    #: Keep only the last N append results / subscription reports
    #: (``None`` = unbounded). Indefinite streams should bound this:
    #: the history (and hence every checkpoint) otherwise grows with
    #: each append. The latest report is always retained.
    max_history: Optional[int] = None

    def __post_init__(self) -> None:
        _require(0.0 <= self.audit_fraction <= 1.0,
                 "audit_fraction must be in [0, 1]")
        _require(self.retrain_epochs is None or self.retrain_epochs >= 1,
                 "retrain_epochs must be None or >= 1")
        _require(self.audit_window >= 1, "audit_window must be >= 1")
        _require(self.min_audit_for_drift >= 1,
                 "min_audit_for_drift must be >= 1")
        _require(self.max_audit_per_append >= 1,
                 "max_audit_per_append must be >= 1")
        _require(self.max_history is None or self.max_history >= 1,
                 "max_history must be None or >= 1")


@dataclass
class StreamingStats:
    """Physical (cache-miss) work counters for one streaming session.

    Reports carry batch-equivalent ledgers; these counters record what
    the session actually *paid* — the delta-sized work streaming exists
    to expose.
    """

    appends: int = 0
    fresh_label_calls: int = 0
    fresh_confirm_calls: int = 0
    fresh_inferred_frames: int = 0
    audited_frames: int = 0
    retrain_count: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "appends": self.appends,
            "fresh_label_calls": self.fresh_label_calls,
            "fresh_confirm_calls": self.fresh_confirm_calls,
            "fresh_inferred_frames": self.fresh_inferred_frames,
            "audited_frames": self.audited_frames,
            "retrain_count": self.retrain_count,
        }

    @property
    def fresh_oracle_calls(self) -> int:
        return self.fresh_label_calls + self.fresh_confirm_calls


class IncrementalDiff:
    """Difference detection maintained under appends.

    Clip boundaries are multiples of ``clip_size`` in global frame
    coordinates, exactly as in
    :class:`~repro.video.diff.DifferenceDetector`; a clip's decisions
    depend only on its own frames, so only clips intersecting the new
    frames — at most one provisional clip plus the arrivals — need
    reprocessing. ``extend`` returns the first frame index whose retain
    decision may have changed.
    """

    def __init__(self, config):
        self.config = config
        self.representative = np.zeros(0, dtype=np.int64)
        self.retained_mask = np.zeros(0, dtype=bool)
        self.processed = 0

    def extend(self, video: StreamingVideo, watermark: int) -> int:
        c = self.config.clip_size
        threshold = self.config.mse_threshold
        if watermark < self.processed:
            raise ConfigurationError("watermark cannot move backwards")
        grow = watermark - self.representative.size
        if grow > 0:
            self.representative = np.concatenate(
                [self.representative, np.zeros(grow, dtype=np.int64)])
            self.retained_mask = np.concatenate(
                [self.retained_mask, np.zeros(grow, dtype=bool)])
        # Reprocess from the start of the clip containing the old
        # watermark: that clip was provisional (its anchor can move).
        start = self.processed - self.processed % c
        for s in range(start, watermark, c):
            indices = np.arange(s, min(s + c, watermark), dtype=np.int64)
            keep = process_clip(video, indices, threshold)
            self.retained_mask[indices] = keep
            self.representative[indices] = np.where(
                keep, indices, indices[len(indices) // 2])
        self.processed = watermark
        return start

    def result(self) -> DiffResult:
        return DiffResult(
            retained=np.flatnonzero(self.retained_mask[:self.processed]),
            representative=self.representative[:self.processed].copy(),
            num_frames=self.processed,
        )


class BlockInferenceCache:
    """Proxy inference cached per 512-frame block of the retained array.

    A block is recomputed only when its frame-id contents change (new
    arrivals, or retain decisions flipped by a provisional clip); the
    tail partial block is naturally provisional until it fills. Cached
    blocks concatenate to the byte-identical mixture matrix the batch
    engine's chunked inference produces.
    """

    def __init__(self):
        self._blocks: Dict[int, Tuple[bytes, GaussianMixture]] = {}

    def clear(self) -> None:
        self._blocks.clear()

    def mixtures_for(
        self,
        proxy,
        video: StreamingVideo,
        retained: np.ndarray,
        stats: Optional[StreamingStats] = None,
    ) -> GaussianMixture:
        retained = np.asarray(retained, dtype=np.int64)
        if retained.size == 0:  # pragma: no cover - empty video guard
            empty = np.zeros((0, 1))
            return GaussianMixture(empty, empty.copy(), empty.copy())
        num_blocks = -(-retained.size // INFER_BLOCK)
        parts: List[GaussianMixture] = []
        for b in range(num_blocks):
            ids = retained[b * INFER_BLOCK:(b + 1) * INFER_BLOCK]
            key = ids.tobytes()
            cached = self._blocks.get(b)
            if cached is None or cached[0] != key:
                mixture = proxy.predict_mixtures(video.batch_pixels(ids))
                self._blocks[b] = (key, mixture)
                if stats is not None:
                    stats.fresh_inferred_frames += int(ids.size)
            else:
                mixture = cached[1]
            # Use the locally validated mixture, never a re-read: a
            # sibling session sharing this cache at a different
            # watermark may have replaced the slot in the meantime.
            parts.append(mixture)
        for b in [b for b in self._blocks if b >= num_blocks]:
            # pop, not del: a service-shared cache may see a sibling
            # session trim the same stale block concurrently.
            self._blocks.pop(b, None)
        return GaussianMixture(
            pi=np.concatenate([p.pi for p in parts]),
            mu=np.concatenate([p.mu for p in parts]),
            sigma=np.concatenate([p.sigma for p in parts]),
        )


class DriftTracker:
    """Rolling proxy-vs-oracle calibration error on audited frames.

    The statistic is the mean per-frame negative log-likelihood of
    recently audited oracle scores under the proxy, minus the
    bootstrap holdout NLL (the calibration level the model was
    selected at). Positive drift means the proxy has gone stale.
    """

    def __init__(self, reference_nll: float, *, window: int,
                 min_samples: int):
        self.reference_nll = float(reference_nll)
        self.min_samples = int(min_samples)
        self.recent: Deque[float] = deque(maxlen=int(window))
        #: Recent audited (frame -> oracle score), fuel for warm
        #: retrains. Bounded (insertion order, oldest evicted) so
        #: indefinite streams don't grow state and retrain cost with
        #: every audited append.
        self.audited: Dict[int, float] = {}
        self.max_audited = 4 * int(window)

    def observe(
        self, frames: np.ndarray, scores: np.ndarray, nlls: np.ndarray
    ) -> None:
        for frame, score in zip(frames, scores):
            self.audited.pop(int(frame), None)
            self.audited[int(frame)] = float(score)
        while len(self.audited) > self.max_audited:
            self.audited.pop(next(iter(self.audited)))
        self.recent.extend(float(v) for v in nlls)

    @property
    def drift(self) -> Optional[float]:
        if len(self.recent) < self.min_samples:
            return None
        return float(np.mean(self.recent)) - self.reference_nll

    def exceeds(self, threshold: Optional[float]) -> bool:
        drift = self.drift
        return threshold is not None and drift is not None \
            and drift > threshold

    def rebase(self, reference_nll: float) -> None:
        """Reset after a retrain: new reference, forget old residuals."""
        self.reference_nll = float(reference_nll)
        self.recent.clear()


@dataclass
class AppendOutcome:
    """What one watermark advance changed in the Phase-1 state."""

    #: First frame whose diff decision may have changed.
    invalidated_from: int
    #: Drift statistic after auditing this append (None if unknown).
    drift: Optional[float]
    #: Whether this append triggered a warm retrain.
    retrained: bool
    #: Frames oracle-audited during this append.
    audited: int


class IncrementalPhase1:
    """Maintains batch-equivalent Phase-1 artifacts under appends.

    ``bootstrap()`` mirrors :func:`~repro.core.phase1.run_phase1` step
    by step over the initial segment (the sampling, training and
    charging arithmetic is kept in lockstep with that function);
    ``advance()`` folds one append in. Both return a fresh
    :class:`~repro.api.session.Phase1Entry` whose ledger replays the
    charges a from-scratch batch run over the current prefix would
    make.
    """

    def __init__(
        self,
        video: StreamingVideo,
        scoring,
        config: EverestConfig,
        unit_costs: Dict[str, float],
        label_oracle,
        streaming: StreamingConfig,
        stats: StreamingStats,
    ):
        self.video = video
        self.scoring = scoring
        self.config = config
        self.unit_costs = dict(unit_costs)
        self.label_oracle = label_oracle
        self.streaming = streaming
        self.stats = stats

        self.diff = IncrementalDiff(config.diff)
        self.blocks = BlockInferenceCache()
        self.known_scores: Dict[int, float] = {}
        #: Audit/retrain work beyond the batch replay, aggregated per
        #: ledger key (a per-event list would grow with stream age).
        self.extra_charges: Dict[str, float] = {}
        self.retrained_segments: List[int] = []
        #: True once auditing/retraining charged work a batch run would
        #: not have — reports remain valid but stop being bit-equal.
        self.diverged = False
        self.grid_result = None
        self.proxy = None
        self.drift_tracker: Optional[DriftTracker] = None
        self.train_idx = np.zeros(0, dtype=np.int64)
        self.holdout_idx = np.zeros(0, dtype=np.int64)
        self._train_scores = np.zeros(0)
        self._holdout_scores = np.zeros(0)
        self.sample_epochs = 0

    # ------------------------------------------------------------------
    def adopt_inference_cache(self, shared: "BlockInferenceCache") -> None:
        """Share proxy-inference blocks with sibling sessions.

        The service layer keys shared caches by the full artifact
        (video content, UDF, *and* phase1 configuration), under which
        bootstrap proxies are bit-identical — so cached mixtures are
        interchangeable. A session that has warm-retrained holds a
        different proxy and must keep its private cache (see
        :meth:`_warm_retrain`), so adoption is refused after retrain.
        """
        if shared is self.blocks or self.diverged:
            return
        shared._blocks.update(self.blocks._blocks)
        self.blocks = shared

    # ------------------------------------------------------------------
    def bootstrap(self):
        """Phase 1 over the initial segment (run_phase1, incrementally).

        Each numbered step mirrors the same step of
        :func:`~repro.core.phase1.run_phase1`; the replayed ledger in
        :meth:`rebuild_entry` re-issues their charges.
        """
        video, config = self.video, self.config
        phase1 = config.phase1
        num_frames = len(video)
        rng = np.random.default_rng(config.seed)
        pool = phase1.sample_pool(num_frames)
        train_size = phase1.train_sample_size(pool)
        holdout_size = phase1.holdout_sample_size(pool)
        train_idx, holdout_idx = _sample_indices(
            rng, pool, train_size, holdout_size)

        # 1. Oracle-label the samples (fresh calls; cached thereafter).
        train_scores = self.label_oracle.score(video, train_idx)
        holdout_scores = self.label_oracle.score(video, holdout_idx)
        for idx, score in zip(train_idx, train_scores):
            self.known_scores[int(idx)] = float(score)
        for idx, score in zip(holdout_idx, holdout_scores):
            self.known_scores[int(idx)] = float(score)
        self.train_idx, self.holdout_idx = train_idx, holdout_idx
        self._train_scores = np.asarray(train_scores, dtype=np.float64)
        self._holdout_scores = np.asarray(holdout_scores, dtype=np.float64)

        # 2. Train the (g, h) grid; select by holdout NLL.
        self.grid_result = train_proxy_grid(
            video.batch_pixels(train_idx),
            train_scores,
            video.batch_pixels(holdout_idx),
            holdout_scores,
            config=phase1,
            input_hw=video.resolution,
            seed=config.seed,
        )
        self.proxy = self.grid_result.proxy
        self.sample_epochs = self.grid_result.sample_epochs
        self.drift_tracker = DriftTracker(
            self.grid_result.best_history.holdout_nll,
            window=self.streaming.audit_window,
            min_samples=self.streaming.min_audit_for_drift,
        )

        # 3 + 4 + 5 run inside rebuild_entry (diff, inference, relation).
        self.diff.extend(video, num_frames)
        return self.rebuild_entry()

    # ------------------------------------------------------------------
    def advance(self, segment: Segment):
        """Fold one append into the Phase-1 state; returns the entry."""
        audited = self._audit(segment)
        # Capture the statistic before a retrain rebases the tracker,
        # so the outcome reports the drift that triggered it.
        drift = self.drift_tracker.drift if self.drift_tracker else None
        retrained = False
        if self.drift_tracker is not None and \
                self.drift_tracker.exceeds(self.streaming.drift_threshold):
            self._warm_retrain(segment)
            retrained = True
        invalidated_from = self.diff.extend(self.video, len(self.video))
        entry = self.rebuild_entry()
        return entry, AppendOutcome(
            invalidated_from=invalidated_from,
            drift=drift,
            retrained=retrained,
            audited=audited,
        )

    # ------------------------------------------------------------------
    def rebuild_entry(self):
        """Assemble a batch-equivalent Phase1Entry for the prefix."""
        from ..api.session import Phase1Entry

        phase1 = self.config.phase1
        diff_result = self.diff.result()
        retained = diff_result.retained
        mixtures = self.blocks.mixtures_for(
            self.proxy, self.video, retained, self.stats)
        step = phase1.quantization_step
        if step is None:
            step = self.scoring.step
        relation = build_relation(
            retained,
            mixtures,
            floor=self.scoring.score_floor,
            step=step,
            known_scores=self.known_scores,
            truncate_sigmas=phase1.truncate_sigmas,
        )
        cost_model = CostModel(self.unit_costs)
        replay_phase1_charges(
            cost_model,
            train_labels=int(self.train_idx.size),
            holdout_labels=int(self.holdout_idx.size),
            sample_epochs=self.sample_epochs,
            num_frames=len(self.video),
            num_retained=int(retained.size),
        )
        for key in sorted(self.extra_charges):
            cost_model.charge(key, self.extra_charges[key])
        result = Phase1Result(
            relation=relation,
            proxy=self.proxy,
            grid_result=self.grid_result,
            diff_result=diff_result,
            known_scores=self.known_scores,
            mixtures=mixtures,
        )
        return Phase1Entry(
            result=result,
            oracle_calls=int(self.train_idx.size + self.holdout_idx.size),
            cost_model=cost_model,
        )

    # ------------------------------------------------------------------
    def _charge_extra(self, key: str, units: float) -> None:
        self.extra_charges[key] = \
            self.extra_charges.get(key, 0.0) + float(units)

    def _audit(self, segment: Segment) -> int:
        """Oracle-label a small sample of the append; track drift."""
        sc = self.streaming
        if sc.audit_fraction <= 0.0:
            return 0
        count = min(
            sc.max_audit_per_append,
            int(np.ceil(sc.audit_fraction * segment.num_frames)),
            segment.num_frames,
        )
        if count < 1:
            return 0
        rng = np.random.default_rng(
            (self.config.seed, 0xA0D17, segment.index))
        frames = segment.start + rng.choice(
            segment.num_frames, size=count, replace=False)
        scores = self.label_oracle.score(self.video, frames)
        # Honest accounting: auditing is extra Phase-1 work a batch run
        # does not pay — labelling, decoding, and the proxy inference
        # that produces the NLLs — charged on top of the replay and
        # recorded as divergence from the batch reference.
        self._charge_extra("oracle_label", count)
        self._charge_extra("decode", count)
        self._charge_extra("cmdn_infer", count)
        self.diverged = True
        nlls = -self.proxy.predict_mixtures(
            self.video.batch_pixels(frames)).log_likelihood(scores)
        self.stats.fresh_inferred_frames += count
        assert self.drift_tracker is not None
        self.drift_tracker.observe(frames, scores, nlls)
        self.stats.audited_frames += count
        return count

    def _warm_retrain(self, segment: Segment) -> None:
        """Continue training the current proxy on bootstrap + audits."""
        phase1 = self.config.phase1
        epochs = self.streaming.retrain_epochs or phase1.epochs
        tracker = self.drift_tracker
        assert tracker is not None
        audit_frames = np.asarray(sorted(tracker.audited), dtype=np.int64)
        frames = np.concatenate([self.train_idx, audit_frames])
        scores = np.concatenate([
            self._train_scores,
            np.asarray([tracker.audited[int(f)] for f in audit_frames]),
        ])
        train_network(
            self.proxy,
            self.video.batch_pixels(frames),
            scores,
            epochs=epochs,
            batch_size=phase1.batch_size,
            learning_rate=phase1.learning_rate,
            seed=self.config.seed + 0x9E7 + segment.index,
        )
        self._charge_extra("cmdn_train", frames.size * epochs)
        # Stale mixtures: the proxy changed, re-infer everything. A
        # *fresh private* cache, not clear(): when the cache is shared
        # at service scope, sibling sessions still hold the original
        # proxy and their cached mixtures stay valid — this session's
        # retrained proxy must never repopulate a shared cache.
        self.blocks = BlockInferenceCache()
        tracker.rebase(self.proxy.holdout_nll(
            self.video.batch_pixels(self.holdout_idx),
            self._holdout_scores,
        ))
        self.retrained_segments.append(segment.index)
        self.stats.retrain_count += 1
        self.diverged = True
