"""Persistent Phase-1 artifact store (DESIGN.md §7).

A checkpoint is a directory holding:

* ``state-<sha12>.pkl`` — the pickled session state: the streaming
  video view (source + watermark + segments), the scoring function,
  configurations, the incremental Phase-1 maintainer (trained CMDN
  weights, diff arrays, block inference cache, known scores, ledger
  replay inputs, drift state), the revealed-score cache, and the
  physical-work counters;
* ``manifest.json`` — human-readable metadata naming the state file
  and carrying its SHA-256, the format version, and identity fields
  (video, UDF, watermark) for inspection without unpickling.

Crash-recovery contract: the state blob is fully written, fsynced and
renamed into place *before* the manifest is atomically swapped to
point at it. A crash at any instant therefore leaves a manifest that
references a complete, checksum-verified blob — either the previous
checkpoint or the new one, never a torn mix. Superseded blobs are
garbage-collected only after the manifest swap.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..errors import CheckpointError

#: Bump when the pickled state layout changes incompatibly.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"


def _fsync_directory(path: Path) -> None:
    try:  # pragma: no cover - platform dependent, best effort
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp-file + fsync + rename."""
    tmp = path.with_name(f".tmp-{path.name}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def write_checkpoint(
    path,
    state: Dict[str, Any],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist ``state`` under the checkpoint directory ``path``.

    Returns the directory path. ``metadata`` entries are merged into
    the manifest (JSON-safe values only).
    """
    import repro

    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    # Sweep tmp files orphaned by a crash mid-write (the atomic rename
    # never happened, so they are garbage by construction).
    for orphan in directory.glob(".tmp-*"):
        try:
            orphan.unlink()
        except OSError:  # pragma: no cover - concurrent cleanup
            pass
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    state_name = f"state-{digest[:12]}.pkl"
    _atomic_write(directory / state_name, blob)

    manifest: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "state_file": state_name,
        "sha256": digest,
        "library_version": getattr(repro, "__version__", "unknown"),
    }
    manifest.update(metadata or {})
    _atomic_write(
        directory / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    # GC superseded blobs only now: the manifest no longer names them.
    for stale in directory.glob("state-*.pkl"):
        if stale.name != state_name:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
    return directory


def read_checkpoint(path) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load and verify a checkpoint; returns ``(state, manifest)``."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise CheckpointError(
            f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"unreadable checkpoint manifest {manifest_path}: {error}"
        ) from error
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {version!r} unsupported "
            f"(this library writes {FORMAT_VERSION})")
    state_path = directory / str(manifest.get("state_file", ""))
    if not state_path.is_file():
        raise CheckpointError(
            f"checkpoint state file missing: {state_path}")
    blob = state_path.read_bytes()
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest.get("sha256"):
        raise CheckpointError(
            f"checkpoint state {state_path.name} fails its checksum "
            f"(manifest {str(manifest.get('sha256'))[:12]}…, "
            f"file {digest[:12]}…)")
    try:
        state = pickle.loads(blob)
    except Exception as error:
        raise CheckpointError(
            f"checkpoint state {state_path.name} failed to unpickle: "
            f"{error}") from error
    return state, manifest
