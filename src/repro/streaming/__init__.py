"""Streaming subsystem: maintain top-k answers over growing videos.

This package turns the engine from "query a finished video" into
"maintain answers over a growing one" (DESIGN.md §7):

* :class:`~repro.streaming.session.StreamingSession` — the appendable
  session: ``Session.open_stream(...)`` → ``append`` / ``subscribe`` /
  ``checkpoint`` / ``resume``;
* :mod:`~repro.streaming.phase1_incremental` — incremental difference
  detection, block-cached proxy inference, drift auditing and warm
  retraining;
* :mod:`~repro.streaming.live_topk` — the cache-backed executor and
  per-query :class:`~repro.streaming.live_topk.LiveTopK` maintainers;
* :mod:`~repro.streaming.store` — the persistent Phase-1 artifact
  store with an atomic, checksum-verified manifest.
"""

from .live_topk import (
    CachingOracle,
    LiveTopK,
    ScoreCache,
    StreamingQueryExecutor,
)
from .phase1_incremental import (
    BlockInferenceCache,
    DriftTracker,
    IncrementalDiff,
    IncrementalPhase1,
    INFER_BLOCK,
    StreamingConfig,
    StreamingStats,
)
from .session import AppendResult, StreamingSession
from .store import (
    FORMAT_VERSION,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "AppendResult",
    "BlockInferenceCache",
    "CachingOracle",
    "DriftTracker",
    "FORMAT_VERSION",
    "INFER_BLOCK",
    "IncrementalDiff",
    "IncrementalPhase1",
    "LiveTopK",
    "ScoreCache",
    "StreamingConfig",
    "StreamingQueryExecutor",
    "StreamingSession",
    "StreamingStats",
    "read_checkpoint",
    "write_checkpoint",
]
