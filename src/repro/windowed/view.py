"""The sliding-window view over a streaming video.

A :class:`WindowedVideo` is a :class:`~repro.video.streaming.StreamingVideo`
with a second clock: alongside the **watermark** (frames that have
arrived), it tracks a **horizon** — the stream time up to which answers
must be current. The open window is ``[horizon - window, watermark)``:

* ``append(n)`` reveals frames and advances the horizon to the new
  watermark (inserts slide the window forward);
* ``tick(frames)`` advances the horizon *without* arrivals (pure
  expiry: old frames age out even when nothing new shows up).

Expiry is logical: aged-out frames remain readable (batch reference
runs over the full prefix still work; ledgers still charge for the
whole history, keeping them batch-equivalent), but they leave the
answer set, the maintained relation, and the block-inference cache.
See DESIGN.md §13 for the insert/expiry ordering and the retraction
path.
"""

from __future__ import annotations

from ..errors import ConfigurationError, VideoError
from ..video.streaming import StreamingVideo, window_frames_for
from ..video.synthetic import SyntheticVideo

__all__ = ["WindowedVideo", "window_frames_for"]


class WindowedVideo(StreamingVideo):
    """A streaming prefix whose frame set slides under a time window."""

    def __init__(
        self,
        source: SyntheticVideo,
        initial_frames: int,
        *,
        window_seconds: float,
        sealed: bool = False,
    ):
        super().__init__(source, initial_frames, sealed=sealed)
        self.window_seconds = float(window_seconds)
        self.window_frames = window_frames_for(window_seconds, self.fps)
        #: Stream clock, in frames; starts at the bootstrap watermark.
        self.horizon = self.num_frames

    # ------------------------------------------------------------------
    @property
    def window_lo(self) -> int:
        """First frame id inside the open window."""
        return max(0, self.horizon - self.window_frames)

    @property
    def window_size(self) -> int:
        """Frames currently inside ``[window_lo, watermark)``."""
        return self.num_frames - self.window_lo

    def append(self, num_frames: int):
        """Reveal frames and slide the horizon to the new watermark."""
        segment = super().append(num_frames)
        self.horizon = max(self.horizon, self.num_frames)
        return segment

    def tick(self, frames: int) -> int:
        """Advance the stream clock by ``frames`` without arrivals.

        Frames whose age exceeds the window expire. Refuses to advance
        past the point where the window would no longer contain any
        arrived frame (an empty window has no Top-K answer); returns
        the new horizon.
        """
        if self.sealed:
            raise VideoError(
                f"video {self.name!r} is a sealed snapshot; "
                f"tick the live stream instead")
        if not isinstance(frames, int) or isinstance(frames, bool) \
                or frames < 1:
            raise ConfigurationError(
                f"tick needs a positive integer frame count, got {frames!r}")
        new_horizon = self.horizon + frames
        if new_horizon - self.window_frames >= self.num_frames:
            raise VideoError(
                f"tick({frames}) would empty the window: horizon "
                f"{new_horizon} minus window {self.window_frames} passes "
                f"the watermark {self.num_frames}")
        self.horizon = new_horizon
        return self.horizon

    def snapshot(self) -> "WindowedVideo":
        """A sealed copy preserving watermark, horizon and window."""
        frozen = WindowedVideo(
            self.source,
            self.num_frames,
            window_seconds=self.window_seconds,
            sealed=True,
        )
        frozen._segments = list(self._segments)
        frozen.horizon = self.horizon
        return frozen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "sealed" if self.sealed else "live"
        return (
            f"WindowedVideo({self.name!r}, "
            f"window=[{self.window_lo}, {self.num_frames}), "
            f"horizon={self.horizon}, watermark={self.num_frames}/"
            f"{len(self.source)}, {state})"
        )
