"""Window-aware incremental Phase-1 maintenance (DESIGN.md §13).

The streaming maintainer (§7) keeps full-prefix Phase-1 artifacts
batch-equivalent under appends. The windowed maintainer adds the
*expiry* side: when the window slides past frames, their inference
blocks are retracted from the cache and the uncertain relation is
rebuilt over window rows only — while the quantization grid, the
difference-detector state and the replayed ledger all remain those of
the **full prefix**, because the batch reference for a windowed answer
is a from-scratch run over the whole prefix restricted to the window
(:func:`~repro.core.uncertain.restrict_relation`).

Reproducing the full-prefix grid without the full mixture matrix is
the trick: :class:`WindowedBlockCache` remembers one float per block —
``max(mu + truncate_sigmas * sigma)`` over the block's rows, keyed by
the block's frame-id bytes — so the global grid top (an exact max of
maxes) survives block eviction. If an *expired* block's contents later
change (a provisional clip straddling the window edge flips a retain
decision), its top is healed by one O(block) re-inference; that is the
only case where expiry costs inference, and it is delta-sized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.phase1 import Phase1Result, replay_phase1_charges
from ..core.uncertain import QuantizationGrid, build_relation
from ..models.mdn import GaussianMixture
from ..oracle.cost import CostModel
from ..streaming.phase1_incremental import (
    INFER_BLOCK,
    BlockInferenceCache,
    IncrementalPhase1,
    StreamingStats,
)
from .view import WindowedVideo

__all__ = ["WindowedBlockCache", "WindowedIncrementalPhase1"]


def _empty_mixture() -> GaussianMixture:
    empty = np.zeros((0, 1))
    return GaussianMixture(empty, empty.copy(), empty.copy())


def _slice_mixture(parts: List[GaussianMixture], offset: int) \
        -> GaussianMixture:
    if not parts:
        return _empty_mixture()
    return GaussianMixture(
        pi=np.concatenate([p.pi for p in parts])[offset:],
        mu=np.concatenate([p.mu for p in parts])[offset:],
        sigma=np.concatenate([p.sigma for p in parts])[offset:],
    )


class WindowedBlockCache(BlockInferenceCache):
    """A block cache that evicts expired blocks but keeps their tops.

    Blocks below the window hold no mixtures (that is the retraction —
    memory and recompute proportional to the live window, not the
    prefix); their grid tops persist, keyed by content, so the
    full-prefix quantization grid is still reproduced exactly.
    """

    def __init__(self):
        super().__init__()
        #: block index -> (frame-id bytes, max(mu + k*sigma) over rows).
        self._tops: Dict[int, Tuple[bytes, float]] = {}

    def clear(self) -> None:  # pragma: no cover - parity with base
        super().clear()
        self._tops.clear()

    @property
    def cached_blocks(self) -> List[int]:
        """Block indices currently holding mixtures (tests/debugging)."""
        return sorted(self._blocks)

    def window_state(
        self,
        proxy,
        video,
        retained: np.ndarray,
        cut: int,
        *,
        truncate_sigmas: float,
        stats: Optional[StreamingStats] = None,
    ) -> Tuple[GaussianMixture, Optional[float]]:
        """Mixtures for ``retained[cut:]`` plus the full-prefix grid top.

        ``cut`` is the number of leading retained rows outside the
        window. Returns ``(mixtures, top)`` where ``top`` equals
        ``float(np.max(mu + truncate_sigmas * sigma))`` over *all*
        retained rows — bitwise what :func:`~repro.core.uncertain.grid_for`
        computes from the full mixture matrix — or ``None`` when
        nothing is retained.
        """
        retained = np.asarray(retained, dtype=np.int64)
        if retained.size == 0:  # pragma: no cover - empty video guard
            return _empty_mixture(), None
        num_blocks = -(-retained.size // INFER_BLOCK)
        first_block = cut // INFER_BLOCK
        parts: List[GaussianMixture] = []
        top: Optional[float] = None
        for b in range(num_blocks):
            ids = retained[b * INFER_BLOCK:(b + 1) * INFER_BLOCK]
            key = ids.tobytes()
            mixture: Optional[GaussianMixture] = None
            if b >= first_block:
                cached = self._blocks.get(b)
                if cached is None or cached[0] != key:
                    mixture = proxy.predict_mixtures(video.batch_pixels(ids))
                    self._blocks[b] = (key, mixture)
                    if stats is not None:
                        stats.fresh_inferred_frames += int(ids.size)
                else:
                    mixture = cached[1]
                parts.append(mixture)
            cached_top = self._tops.get(b)
            if cached_top is not None and cached_top[0] == key:
                block_top = cached_top[1]
            else:
                if mixture is None:
                    # An expired block whose contents changed (or were
                    # never seen): one O(block) re-inference heals the
                    # top, and the mixture is dropped immediately.
                    mixture = proxy.predict_mixtures(video.batch_pixels(ids))
                    if stats is not None:
                        stats.fresh_inferred_frames += int(ids.size)
                block_top = float(
                    np.max(mixture.mu + truncate_sigmas * mixture.sigma))
                self._tops[b] = (key, block_top)
            top = block_top if top is None else max(top, block_top)
        # Retraction: expired blocks drop their mixtures, stale trailing
        # blocks (shrunk retained array) drop everything.
        for b in [b for b in self._blocks
                  if b < first_block or b >= num_blocks]:
            self._blocks.pop(b, None)
        for b in [b for b in self._tops if b >= num_blocks]:
            self._tops.pop(b, None)
        offset = cut - first_block * INFER_BLOCK
        return _slice_mixture(parts, offset), top


class WindowedIncrementalPhase1(IncrementalPhase1):
    """The §7 maintainer with expiry-side retraction.

    Differences from the base class, all in service of keeping the
    windowed answer byte-identical to ``restrict_relation`` over a
    batch run:

    * the relation is built over window rows only, on the *full-prefix*
      grid reproduced from cached block tops;
    * known scores outside the window leave the relation but still
      participate in the grid (exactly as they do in the batch grid);
    * the replayed ledger is untouched — it charges for the full
      prefix, because that is what the batch reference pays;
    * the block cache is always private (`adopt_inference_cache` is a
      no-op): a service-shared cache must never have blocks evicted
      under sibling full-prefix sessions.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not isinstance(self.video, WindowedVideo):
            raise TypeError(
                "WindowedIncrementalPhase1 requires a WindowedVideo")
        self.blocks = WindowedBlockCache()

    def adopt_inference_cache(self, shared) -> None:
        """Refused: window eviction must stay invisible to siblings."""
        return

    def _warm_retrain(self, segment) -> None:
        super()._warm_retrain(segment)
        # The base class installed a plain private cache; windowed
        # maintenance needs the top-tracking variant.
        self.blocks = WindowedBlockCache()

    def rebuild_entry(self):
        """A Phase1Entry whose relation covers the open window only."""
        from ..api.session import Phase1Entry

        phase1 = self.config.phase1
        diff_result = self.diff.result()
        retained = diff_result.retained
        lo = self.video.window_lo
        cut = int(np.searchsorted(retained, lo, side="left"))
        mixtures, tops_max = self.blocks.window_state(
            self.proxy,
            self.video,
            retained,
            cut,
            truncate_sigmas=phase1.truncate_sigmas,
            stats=self.stats,
        )
        step = phase1.quantization_step
        if step is None:
            step = self.scoring.step
        floor = self.scoring.score_floor
        # Reproduce grid_for over the full prefix, term for term: the
        # two-level minimum, the mixture upper envelope (max of block
        # maxes is the max), then every known score — expired or not.
        top = floor + step
        if tops_max is not None:
            top = max(top, tops_max)
        if self.known_scores:
            top = max(top, float(np.max(list(self.known_scores.values()))))
        grid = QuantizationGrid(
            floor=floor,
            step=step,
            num_levels=int(np.ceil((top - floor) / step)) + 1,
        )
        known_window = {
            f: s for f, s in self.known_scores.items() if f >= lo}
        relation = build_relation(
            retained[cut:],
            mixtures,
            floor=floor,
            step=step,
            known_scores=known_window,
            truncate_sigmas=phase1.truncate_sigmas,
            grid=grid,
        )
        cost_model = CostModel(self.unit_costs)
        replay_phase1_charges(
            cost_model,
            train_labels=int(self.train_idx.size),
            holdout_labels=int(self.holdout_idx.size),
            sample_epochs=self.sample_epochs,
            num_frames=len(self.video),
            num_retained=int(retained.size),
        )
        for key in sorted(self.extra_charges):
            cost_model.charge(key, self.extra_charges[key])
        result = Phase1Result(
            relation=relation,
            proxy=self.proxy,
            grid_result=self.grid_result,
            diff_result=diff_result,
            known_scores=self.known_scores,
            mixtures=mixtures,
        )
        return Phase1Entry(
            result=result,
            oracle_calls=int(self.train_idx.size + self.holdout_idx.size),
            cost_model=cost_model,
        )
