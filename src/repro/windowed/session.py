"""Sliding-window streaming sessions (DESIGN.md §13).

A :class:`WindowedSession` is a
:class:`~repro.streaming.session.StreamingSession` over a
:class:`~repro.windowed.view.WindowedVideo`: answers cover only the
last ``window_seconds`` of stream time. The window slides under two
kinds of events, each delivering one report per subscription:

* ``append(n)`` — inserts; inherited, the horizon rides the watermark;
* ``tick(frames)`` — expiries; advances the horizon without arrivals,
  retracting aged-out frames from the maintained relation and the
  block-inference cache (:class:`~repro.windowed.maintenance.\
WindowedIncrementalPhase1`).

Every windowed report is byte-identical to a fresh batch run over the
window snapshot: ``batch_session()`` seals the prefix (horizon
included), and a plain batch query over it compiles to the same
window-restricted plan. Ledgers replay full-prefix charges, because
that is what the batch reference pays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.result import QueryReport
from ..errors import QueryError
from ..streaming.live_topk import StreamingQueryExecutor
from ..streaming.session import StreamingSession
from ..trace import span as trace_span
from ..video.streaming import StreamingVideo
from .maintenance import WindowedIncrementalPhase1
from .view import WindowedVideo

__all__ = ["ExpiryResult", "WindowedSession", "WindowedQueryExecutor"]


@dataclass
class ExpiryResult:
    """Everything one expiry ``tick`` changed (the append-side twin of
    :class:`~repro.streaming.session.AppendResult`)."""

    #: Stream clock after the tick, in frames.
    horizon: int
    #: First frame id inside the window after the tick.
    window_lo: int
    #: How many frames the tick advanced the clock.
    ticked_frames: int
    watermark: int
    #: One refreshed report per live subscription, in subscribe order.
    reports: List[QueryReport] = field(default_factory=list)
    #: Physical (cache-miss) work this tick actually paid.
    fresh_confirm_calls: int = 0
    fresh_inferred_frames: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe summary (the gateway's ``/tick`` payload)."""
        return {
            "horizon": self.horizon,
            "window_lo": self.window_lo,
            "ticked_frames": self.ticked_frames,
            "watermark": self.watermark,
            "reports": [report.to_json() for report in self.reports],
            "fresh_confirm_calls": self.fresh_confirm_calls,
            "fresh_inferred_frames": self.fresh_inferred_frames,
            "wall_seconds": self.wall_seconds,
        }


class WindowedQueryExecutor(StreamingQueryExecutor):
    """Rejects window-less frame plans: the maintained relation only
    covers the open window, so executing an unrestricted plan against
    it would silently mislabel a windowed answer as a full-prefix one.
    The fluent builder windows every plan implicitly; this guard is for
    hand-built plans."""

    def execute_detailed(self, plan):
        if plan.mode == "frames" and plan.frame_ranges is None:
            raise QueryError(
                "plans on a windowed session must carry a sliding "
                "window; compile them with session.query() (the "
                "session window applies implicitly)")
        return super().execute_detailed(plan)


class WindowedSession(StreamingSession):
    """An appendable session whose answers slide with a time window."""

    def __init__(
        self,
        video,
        scoring,
        *,
        window_seconds: Optional[float] = None,
        initial_frames: Optional[int] = None,
        **kwargs,
    ):
        if isinstance(video, WindowedVideo):
            if window_seconds is not None \
                    and float(window_seconds) != video.window_seconds:
                raise QueryError(
                    f"window_seconds={window_seconds!r} conflicts with "
                    f"the WindowedVideo's window of "
                    f"{video.window_seconds:g}s; pass one or the other")
        elif isinstance(video, StreamingVideo):
            raise QueryError(
                "cannot window an existing StreamingVideo view; wrap "
                "the closed source (or pass a WindowedVideo)")
        else:
            if window_seconds is None:
                raise QueryError(
                    "a windowed session needs window_seconds")
            if initial_frames is None:
                raise QueryError(
                    "open_stream needs initial_frames: the bootstrap "
                    "segment Phase 1 trains on")
            video = WindowedVideo(
                video, initial_frames, window_seconds=window_seconds)
            initial_frames = None
        super().__init__(video, scoring,
                         initial_frames=initial_frames, **kwargs)
        # Swap in the window-aware maintainer (nothing is bootstrapped
        # yet, so this replaces state wholesale, not mid-flight).
        self._incremental = WindowedIncrementalPhase1(
            self.video, scoring, self.config, self._unit_costs,
            self._label_oracle, self.streaming, self._stats)
        self._expiry_log: List[ExpiryResult] = []

    # ------------------------------------------------------------------
    @property
    def window_seconds(self) -> float:
        return self.video.window_seconds

    @property
    def window_frames(self) -> int:
        return self.video.window_frames

    @property
    def horizon(self) -> int:
        return self.video.horizon

    @property
    def window_lo(self) -> int:
        return self.video.window_lo

    @property
    def expiry_log(self) -> List[ExpiryResult]:
        return list(self._expiry_log)

    # ------------------------------------------------------------------
    def tick(self, frames: int) -> ExpiryResult:
        """Advance the stream clock without arrivals; expire frames.

        The window's lower edge moves forward, evicted inference
        blocks are retracted, and every subscription is refreshed
        against the narrowed relation — one report per tick, under the
        same bookkeeping-before-reraise discipline as ``append``.
        """
        self._ensure_bootstrap()
        started = time.perf_counter()
        before = self.stats.snapshot()
        with trace_span(
                "expiry", category="streaming", frames=frames,
                horizon=self.video.horizon) as expiry_span:
            horizon = self.video.tick(frames)
            self._entry = self._incremental.rebuild_entry()
            if expiry_span is not None:
                expiry_span.set(
                    window_lo=self.video.window_lo,
                    watermark=self.watermark)
        if self.refresh_dispatcher is not None:
            try:
                reports, refresh_error = \
                    self.refresh_dispatcher(self._refresh_subscriptions)
            except Exception as error:
                reports, refresh_error = [], error
        else:
            reports, refresh_error = self._refresh_subscriptions()
        self._sync_label_stats()
        after = self._stats.snapshot()
        result = ExpiryResult(
            horizon=horizon,
            window_lo=self.video.window_lo,
            ticked_frames=frames,
            watermark=self.watermark,
            reports=reports,
            fresh_confirm_calls=(
                after["fresh_confirm_calls"]
                - before["fresh_confirm_calls"]),
            fresh_inferred_frames=(
                after["fresh_inferred_frames"]
                - before["fresh_inferred_frames"]),
            wall_seconds=time.perf_counter() - started,
        )
        self._expiry_log.append(result)
        self._trim_history()
        if self.autosave_path is not None:
            self.checkpoint(self.autosave_path)
        if refresh_error is not None:
            raise refresh_error
        return result

    # ------------------------------------------------------------------
    def _executor(self) -> WindowedQueryExecutor:
        return WindowedQueryExecutor(
            self, cache=self._cache, stats=self._stats)

    def _trim_history(self) -> None:
        super()._trim_history()
        limit = self.streaming.max_history
        if limit is not None:
            del self._expiry_log[:-limit]

    # ------------------------------------------------------------------
    def _checkpoint_state(self) -> Dict[str, object]:
        state = super()._checkpoint_state()
        state["expiry_log"] = self._expiry_log
        return state

    def _restore_extra(self, state: Dict[str, object]) -> None:
        self._expiry_log = list(state.get("expiry_log", []))
