"""Sliding-window standing queries over streams (DESIGN.md §13).

The window slides under inserts (appends) and expiries (ticks); answer
maintenance is O(delta) — the block-aligned incremental Phase 1 of §7
on the insert side, block retraction with cached grid tops on the
expiry side — while every report stays byte-identical to a fresh batch
run over the window snapshot.

    stream = Session.open_stream(video, "count[car]",
                                 initial_frames=5_000,
                                 window_seconds=300)
    live = stream.query().topk(10).guarantee(0.9).subscribe()
    stream.append(900)   # insert: one report, window slides forward
    stream.tick(300)     # expiry: one report, old frames age out
"""

from .maintenance import WindowedBlockCache, WindowedIncrementalPhase1
from .session import ExpiryResult, WindowedQueryExecutor, WindowedSession
from .view import WindowedVideo, window_frames_for

__all__ = [
    "ExpiryResult",
    "WindowedBlockCache",
    "WindowedIncrementalPhase1",
    "WindowedQueryExecutor",
    "WindowedSession",
    "WindowedVideo",
    "window_frames_for",
]
