"""Everest reproduction: Top-K deep video analytics with probabilistic
guarantees (Lai et al., SIGMOD 2021).

Quickstart
----------
>>> from repro import EverestConfig, Session
>>> from repro.video import TrafficVideo
>>> from repro.oracle import counting_udf
>>> video = TrafficVideo("demo", 2_000, seed=1)
>>> session = Session(video, counting_udf("car"),
...                   config=EverestConfig.fast())
>>> report = session.query().topk(5).guarantee(0.9).run()
>>> print(report.summary())  # doctest: +SKIP

A :class:`Session` caches Phase 1, so further queries on it
(``session.query().windows(size=30).topk(5).guarantee(0.9).run()``)
pay only for Phase 2 cleaning. Registered names work too:
``repro.api.open_session("taipei-bus", "count[car]")``.

Legacy note: the original imperative surface is still available —
``EverestEngine(video, counting_udf("car")).topk(k=5, thres=0.9)`` —
and is a thin facade over the same session machinery.

See DESIGN.md for the architecture and module inventory.
"""

from .config import (
    DiffDetectorConfig,
    EverestConfig,
    Phase1Config,
    Phase2Config,
    SelectCandidateConfig,
)
from .core import EverestEngine, QueryReport
from .api import (
    Query,
    QueryExecutor,
    QueryPlan,
    Session,
    open_session,
)
from .parallel import ParallelRunner, resolve_workers
from .corpus import (
    CorpusQuery,
    CorpusSubscription,
    FederatedTopK,
    VideoCorpus,
)
from .optimizer import CostEstimator, WorkloadPlanner
from .service import QueryFuture, QueryService
from .trace import NULL_TRACER, Trace, Tracer
from .streaming import StreamingConfig, StreamingSession
from .video.streaming import StreamingVideo
from .windowed import WindowedSession, WindowedVideo
from .errors import (
    AdmissionError,
    CheckpointError,
    ConfigurationError,
    CorpusError,
    ShardBudgetExceededError,
    GuaranteeUnreachableError,
    ModelError,
    OracleBudgetExceededError,
    OracleError,
    QueryError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    UncertainRelationError,
    VideoError,
)

__version__ = "1.0.0"

__all__ = [
    "Session",
    "Query",
    "QueryPlan",
    "QueryExecutor",
    "ParallelRunner",
    "resolve_workers",
    "QueryFuture",
    "QueryService",
    "CostEstimator",
    "WorkloadPlanner",
    "Tracer",
    "Trace",
    "NULL_TRACER",
    "StreamingSession",
    "StreamingConfig",
    "StreamingVideo",
    "WindowedSession",
    "WindowedVideo",
    "VideoCorpus",
    "CorpusQuery",
    "CorpusSubscription",
    "FederatedTopK",
    "open_session",
    "EverestEngine",
    "QueryReport",
    "EverestConfig",
    "Phase1Config",
    "Phase2Config",
    "DiffDetectorConfig",
    "SelectCandidateConfig",
    "ReproError",
    "CheckpointError",
    "ConfigurationError",
    "VideoError",
    "ModelError",
    "OracleError",
    "OracleBudgetExceededError",
    "ShardBudgetExceededError",
    "CorpusError",
    "UncertainRelationError",
    "QueryError",
    "GuaranteeUnreachableError",
    "ServiceError",
    "AdmissionError",
    "ServiceClosedError",
    "__version__",
]
