"""Everest reproduction: Top-K deep video analytics with probabilistic
guarantees (Lai et al., SIGMOD 2021).

Quickstart
----------
>>> from repro import EverestEngine, EverestConfig
>>> from repro.video import TrafficVideo
>>> from repro.oracle import counting_udf
>>> video = TrafficVideo("demo", 2_000, seed=1)
>>> engine = EverestEngine(video, counting_udf("car"),
...                        config=EverestConfig.fast())
>>> report = engine.topk(k=5, thres=0.9)
>>> print(report.summary())  # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .config import (
    DiffDetectorConfig,
    EverestConfig,
    Phase1Config,
    Phase2Config,
    SelectCandidateConfig,
)
from .core import EverestEngine, QueryReport
from .errors import (
    ConfigurationError,
    GuaranteeUnreachableError,
    ModelError,
    OracleBudgetExceededError,
    OracleError,
    QueryError,
    ReproError,
    UncertainRelationError,
    VideoError,
)

__version__ = "1.0.0"

__all__ = [
    "EverestEngine",
    "QueryReport",
    "EverestConfig",
    "Phase1Config",
    "Phase2Config",
    "DiffDetectorConfig",
    "SelectCandidateConfig",
    "ReproError",
    "ConfigurationError",
    "VideoError",
    "ModelError",
    "OracleError",
    "OracleBudgetExceededError",
    "UncertainRelationError",
    "QueryError",
    "GuaranteeUnreachableError",
    "__version__",
]
