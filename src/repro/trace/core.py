"""Per-query tracing: spans, traces, and the tracer (DESIGN.md §12).

A :class:`Trace` is the record of one query's (or append's) journey
through the stack — admission, queue wait, Phase-1 build/lease, lane
dispatch, cleaning-loop iterations, oracle confirmations — as a tree
of :class:`Span` objects carrying monotonic wall timings *and* the
ledger's simulated seconds. A :class:`Tracer` produces traces,
retains the most recent ones in a ring buffer, and optionally writes
every closed span to a rotated JSONL event log.

Two properties are load-bearing:

* **Zero overhead when off.** Instrumentation sites call the
  module-level :func:`span` / :func:`add_event` helpers; with no
  active trace on the calling thread they return a shared no-op
  context manager / return immediately — no allocation, no lock.
  Layers below the service never hold a tracer reference.
* **Observation only.** Tracing reads ledgers (snapshotting
  ``total_seconds`` around a span), never charges them, and never
  reorders work — reports and ledgers are byte/float-identical with
  tracing on or off (certified by the differential tests and
  ``benchmarks/bench_trace_overhead.py``).

Cross-thread and cross-process propagation is explicit: the service
carries the :class:`Trace` object in its scheduler payloads and
re-activates it on the worker thread (:func:`activate`); the process
lane ships span dumps back from pool workers and re-parents them
under the dispatching span (:meth:`Trace.adopt`).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "NULL_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "active_span",
    "active_trace",
    "add_event",
    "span",
]

#: The span the *calling thread* is currently inside (None = tracing
#: off for this thread — the fast path every instrumentation site
#: checks first).
_ACTIVE: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_trace_active_span", default=None)

#: Thread-local reentrancy guard for cProfile (CPython allows one
#: active profiler per thread; only the outermost span profiles).
_PROFILING = threading.local()


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are ``time.perf_counter()`` readings (exported
    relative to the trace origin); ``sim_seconds`` is the simulated
    ledger cost attributed to the span (the delta of the attached
    ledger's ``total_seconds()`` across the span, or whatever the
    instrumentation site assigns). ``events`` are instant annotations
    — e.g. one per oracle-confirm batch, with cache hit/miss counts.
    """

    __slots__ = (
        "trace", "span_id", "parent_id", "name", "category",
        "start", "end", "attrs", "events", "status",
        "sim_seconds", "_ledger", "_ledger_start", "_profile",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start: float,
        *,
        ledger=None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.events: List[Tuple[float, str, Dict[str, object]]] = []
        self.status = "ok"
        self.sim_seconds = 0.0
        self._ledger = ledger
        self._ledger_start = (
            ledger.total_seconds() if ledger is not None else 0.0)
        self._profile = None

    # ------------------------------------------------------------------
    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes (JSON-safe values); returns ``self``."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record an instant event inside this span."""
        self.events.append((time.perf_counter(), name, attrs))

    def finish(self, *, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent); snapshots the ledger delta."""
        if self.end is not None:
            return self
        self.end = time.perf_counter()
        if status is not None:
            self.status = status
        if self._ledger is not None:
            self.sim_seconds = (
                self._ledger.total_seconds() - self._ledger_start)
            self._ledger = None
        if self._profile is not None:
            self._stop_profile()
        return self

    # -- profiling -----------------------------------------------------
    def _start_profile(self) -> None:
        if getattr(_PROFILING, "active", False):
            return
        import cProfile

        self._profile = cProfile.Profile()
        _PROFILING.active = True
        self._profile.enable()

    def _stop_profile(self) -> None:
        import io
        import pstats

        profile, self._profile = self._profile, None
        profile.disable()
        _PROFILING.active = False
        stream = io.StringIO()
        stats = pstats.Stats(profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(10)
        self.attrs["profile"] = stream.getvalue()

    # ------------------------------------------------------------------
    def to_dict(self, *, origin: Optional[float] = None) -> Dict[str, object]:
        """A JSON-safe dump (times relative to ``origin`` if given)."""
        base = self.trace.origin if origin is None else origin
        end = self.end if self.end is not None else self.start
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start - base,
            "duration": end - self.start,
            "sim_seconds": self.sim_seconds,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [
                {"at": at - base, "name": name, "attrs": dict(attrs)}
                for at, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration * 1e3:.2f}ms"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Trace:
    """One traced request: a root span plus its descendants.

    Spans may be started from the submitting thread, a scheduler
    worker thread, and (via :meth:`adopt`) a pool worker — a lock
    guards the span list; the id counter is trace-local so ids are
    deterministic per trace regardless of scheduling.
    """

    def __init__(self, tracer: "Tracer", trace_id: str, name: str, attrs):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        #: Wall-clock epoch at begin (for display; perf_counter readings
        #: are meaningless across processes).
        self.started_epoch = time.time()
        #: perf_counter origin every exported time is relative to.
        self.origin = time.perf_counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: List[Span] = []
        self.finished = False
        self.root = self.start_span(
            name, category="request", parent=None, attrs=attrs)
        self.root.start = self.origin

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        category: str = "code",
        parent: Optional[Span] = None,
        ledger=None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Begin a span (explicit lifecycle; see also :func:`span`).

        ``parent=None`` parents under the root — except for the very
        first span, which *is* the root.
        """
        with self._lock:
            span_id = next(self._ids)
            parent_id = None
            if self.spans:  # the root exists; default-parent under it
                parent_id = (parent or self.root).span_id
            new = Span(
                self, span_id, parent_id, name, category,
                time.perf_counter(), ledger=ledger, attrs=attrs)
            self.spans.append(new)
        if self.tracer.profile and parent_id is not None:
            new._start_profile()
        return new

    def find_open(self, name: str) -> Optional[Span]:
        """The most recent still-open span with this name, if any."""
        with self._lock:
            for candidate in reversed(self.spans):
                if candidate.name == name and candidate.open:
                    return candidate
        return None

    def close_open(self, name: str, **attrs) -> Optional[Span]:
        """Finish the most recent open span with this name (by name —
        the cross-thread handoff used for ``queue_wait``)."""
        found = self.find_open(name)
        if found is not None:
            found.set(**attrs).finish()
        return found

    def adopt(
        self,
        dumps: Sequence[Dict[str, object]],
        *,
        parent: Span,
        process: str = "worker",
    ) -> List[Span]:
        """Re-parent span dumps recorded in another process.

        ``dumps`` is a list of ``Span.to_dict()`` records whose times
        are relative to their own (foreign) root. They are rebased so
        the foreign root aligns with ``parent``'s start, re-identified
        from this trace's counter, and attached under ``parent`` —
        worker clocks are unrelated to ours, so alignment (not
        absolute time) is the only meaningful mapping.
        """
        if not dumps:
            return []
        base = parent.start
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        with self._lock:
            for dump in dumps:
                span_id = next(self._ids)
                id_map[int(dump["span_id"])] = span_id
                old_parent = dump.get("parent_id")
                parent_id = (
                    id_map.get(int(old_parent))
                    if old_parent is not None else None)
                new = Span(
                    self, span_id,
                    parent_id if parent_id is not None else parent.span_id,
                    str(dump["name"]), str(dump["category"]),
                    base + float(dump["start"]),
                    attrs=dict(dump.get("attrs") or {}))
                new.end = new.start + float(dump["duration"])
                new.sim_seconds = float(dump.get("sim_seconds", 0.0))
                new.status = str(dump.get("status", "ok"))
                new.attrs.setdefault("process", process)
                new.events = [
                    (base + float(e["at"]), str(e["name"]),
                     dict(e.get("attrs") or {}))
                    for e in dump.get("events") or ()
                ]
                self.spans.append(new)
                adopted.append(new)
        return adopted

    # ------------------------------------------------------------------
    def finish(self, *, status: str = "ok") -> "Trace":
        """Close every open span, the root last (idempotent).

        The completeness guarantee — *every* submitted query yields a
        closed root span, whatever path it died on — rests on this
        being safe to call from any thread at any point.
        """
        if self.finished:
            return self
        with self._lock:
            still_open = [s for s in self.spans if s.open and s is not self.root]
        for open_span in reversed(still_open):
            open_span.finish(
                status=status if status != "ok" else "unclosed")
        self.root.finish(status=status)
        self.finished = True
        return self

    @property
    def duration(self) -> float:
        return self.root.duration

    def to_dict(self) -> Dict[str, object]:
        """The full trace as a JSON-safe dict (spans in start order)."""
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_epoch": self.started_epoch,
            "duration": self.duration,
            "status": self.root.status,
            "attrs": dict(self.root.attrs),
            "spans": [s.to_dict() for s in spans],
        }

    def summary(self) -> Dict[str, object]:
        """The small dict stats/result payloads embed."""
        with self._lock:
            n_spans = len(self.spans)
            sim = sum(s.sim_seconds for s in self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "status": self.root.status,
            "duration_seconds": self.duration,
            "sim_seconds": sim,
            "spans": n_spans,
            "attrs": dict(self.root.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.trace_id!r}, {self.name!r}, "
            f"spans={len(self.spans)}, "
            f"{'finished' if self.finished else 'open'})"
        )


# ----------------------------------------------------------------------
# Module-level instrumentation API (the only thing deep layers touch).
# ----------------------------------------------------------------------


class _NoopSpanContext:
    """Shared do-nothing context manager — the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopSpanContext()


class _SpanContext:
    """Context manager that opens a child of the active span."""

    __slots__ = ("_parent", "_name", "_category", "_ledger", "_attrs",
                 "_span", "_token")

    def __init__(self, parent, name, category, ledger, attrs):
        self._parent = parent
        self._name = name
        self._category = category
        self._ledger = ledger
        self._attrs = attrs
        self._span = None
        self._token = None

    def __enter__(self) -> Span:
        self._span = self._parent.trace.start_span(
            self._name, category=self._category, parent=self._parent,
            ledger=self._ledger, attrs=self._attrs)
        self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.reset(self._token)
        self._span.finish(
            status="ok" if exc_type is None
            else f"error:{exc_type.__name__}")
        return False


def span(name: str, *, category: str = "code", ledger=None, **attrs):
    """A context manager for one instrumented operation.

    With no active trace on this thread it returns a shared no-op
    (zero allocation); otherwise it opens a child span of the current
    one, makes it current for the block, and closes it on exit with
    ``status="error:<Type>"`` if the block raised. ``ledger`` (a
    :class:`~repro.oracle.cost.CostModel`) attributes the block's
    simulated-seconds delta to the span.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NOOP
    return _SpanContext(parent, name, category, ledger, attrs or None)


def add_event(name: str, **attrs) -> None:
    """Record an instant event on the active span (no-op when off)."""
    current = _ACTIVE.get()
    if current is not None:
        current.event(name, **attrs)


def active_span() -> Optional[Span]:
    """The span the calling thread is currently inside, if any."""
    return _ACTIVE.get()


def active_trace() -> Optional[Trace]:
    """The trace the calling thread is currently inside, if any."""
    current = _ACTIVE.get()
    return current.trace if current is not None else None


class activate:
    """Install a span (usually a trace's root) as the thread's current.

    The cross-thread propagation primitive: the scheduler worker
    executing a traced payload wraps the work in
    ``with activate(trace.root):`` so every :func:`span` call below
    lands in the right trace. ``activate(None)`` is a tolerated no-op
    — callers never need to branch on whether tracing is on.
    """

    __slots__ = ("_span", "_token")

    def __init__(self, target: Optional[Span]):
        self._span = target
        self._token = None

    def __enter__(self) -> Optional[Span]:
        if self._span is not None:
            self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False


# ----------------------------------------------------------------------
# The tracer.
# ----------------------------------------------------------------------


class Tracer:
    """Produces, retains, and exports traces.

    Parameters
    ----------
    ring:
        Completed traces retained in memory (oldest evicted first).
    jsonl_path:
        Optional structured event log: one JSON record per closed
        span plus one per completed trace, rotated at
        ``jsonl_max_bytes`` with ``jsonl_backups`` old files kept.
    profile:
        Opt-in cProfile capture per span (outermost span per thread;
        the formatted top-10 lands in ``span.attrs["profile"]``).
        Wall-clock cost is significant — never on by default.
    """

    enabled = True

    def __init__(
        self,
        *,
        ring: int = 256,
        jsonl_path=None,
        jsonl_max_bytes: int = 4 << 20,
        jsonl_backups: int = 3,
        profile: bool = False,
    ):
        from collections import deque

        from .exporters import JsonlTraceLog

        if ring < 1:
            raise ValueError(f"ring must be >= 1, got {ring}")
        self.profile = bool(profile)
        self._lock = threading.Lock()
        self._ring: "deque[Trace]" = deque(maxlen=ring)
        self._ids = itertools.count(1)
        self.log: Optional[JsonlTraceLog] = (
            JsonlTraceLog(
                jsonl_path, max_bytes=jsonl_max_bytes,
                backups=jsonl_backups)
            if jsonl_path is not None else None)
        #: Completed traces ever finished (ring evictions included).
        self.completed = 0

    # ------------------------------------------------------------------
    @staticmethod
    def from_env(env: Optional[Dict[str, str]] = None) -> "Tracer":
        """The ambient tracer ``REPRO_TRACE=1`` asks for.

        ``REPRO_TRACE_LOG`` names the JSONL event log path,
        ``REPRO_TRACE_PROFILE=1`` turns on per-span cProfile capture.
        Anything falsy (unset, ``0``, ``false``, ``no``) yields the
        shared :data:`NULL_TRACER`.
        """
        env = os.environ if env is None else env
        flag = str(env.get("REPRO_TRACE", "")).strip().lower()
        if flag in ("", "0", "false", "no"):
            return NULL_TRACER
        log = str(env.get("REPRO_TRACE_LOG", "")).strip()
        profile = str(env.get("REPRO_TRACE_PROFILE", "")).strip().lower()
        return Tracer(
            jsonl_path=log or None,
            profile=profile not in ("", "0", "false", "no"),
        )

    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs) -> Trace:
        """Start a new trace (its root span is open)."""
        trace_id = f"t{next(self._ids):08d}"
        return Trace(self, trace_id, name, attrs)

    def finish(self, trace: Trace, *, status: str = "ok") -> Trace:
        """Close a trace and retain/export it (idempotent)."""
        if trace.finished:
            return trace
        trace.finish(status=status)
        with self._lock:
            self._ring.append(trace)
            self.completed += 1
        if self.log is not None:
            data = trace.to_dict()
            for span_dump in data["spans"]:
                self.log.write({
                    "type": "span",
                    "trace_id": trace.trace_id,
                    **span_dump,
                })
            self.log.write({
                "type": "trace",
                **trace.summary(),
            })
        return trace

    class _TraceContext:
        __slots__ = ("_tracer", "_trace", "_inner")

        def __init__(self, tracer, name, attrs):
            self._tracer = tracer
            self._trace = tracer.begin(name, **attrs)
            self._inner = activate(self._trace.root)

        def __enter__(self) -> Trace:
            self._inner.__enter__()
            return self._trace

        def __exit__(self, exc_type, exc, tb) -> bool:
            self._inner.__exit__(exc_type, exc, tb)
            self._tracer.finish(
                self._trace,
                status="ok" if exc_type is None
                else f"error:{exc_type.__name__}")
            return False

    def trace(self, name: str, **attrs):
        """``with tracer.trace("my-op") as t:`` — begin + activate +
        finish around a block (the manual entry point examples use)."""
        return Tracer._TraceContext(self, name, attrs)

    # ------------------------------------------------------------------
    def traces(self) -> List[Trace]:
        """Retained completed traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def get(self, trace_id: str) -> Optional[Trace]:
        """A retained trace by id (None once evicted / unknown)."""
        with self._lock:
            for trace in self._ring:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def summaries(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Summaries of the most recent traces, newest first."""
        with self._lock:
            recent = list(self._ring)
        recent.reverse()
        if limit is not None:
            recent = recent[:limit]
        return [trace.summary() for trace in recent]

    def chrome(self, traces: Optional[Sequence[Trace]] = None):
        """Chrome ``trace_event`` JSON for retained (or given) traces."""
        from .exporters import chrome_trace

        return chrome_trace(self.traces() if traces is None else traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(retained={len(self._ring)}, completed={self.completed})"


class NullTracer:
    """The tracing-off tracer: every operation is a cheap no-op.

    ``begin`` returns ``None`` — service code threads that ``None``
    through payloads and every downstream hook (``activate(None)``,
    ``finish(None)``) tolerates it, so there is exactly one code path
    whether tracing is on or off.
    """

    enabled = False
    profile = False
    log = None
    completed = 0

    def begin(self, name: str, **attrs) -> None:
        return None

    def finish(self, trace, *, status: str = "ok") -> None:
        return None

    def trace(self, name: str, **attrs):
        return _NOOP

    def traces(self) -> List[Trace]:
        return []

    def get(self, trace_id: str) -> None:
        return None

    def summaries(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def chrome(self, traces=None) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTracer()"


#: The shared do-nothing tracer (tracing off).
NULL_TRACER = NullTracer()
