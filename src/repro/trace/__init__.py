"""Deterministic per-query tracing and structured events (DESIGN.md §12)."""

from .core import (
    NULL_TRACER,
    NullTracer,
    Span,
    Trace,
    Tracer,
    activate,
    active_span,
    active_trace,
    add_event,
    span,
)
from .exporters import JsonlTraceLog, chrome_trace, chrome_trace_events, read_jsonl

__all__ = [
    "NULL_TRACER",
    "JsonlTraceLog",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "active_span",
    "active_trace",
    "add_event",
    "chrome_trace",
    "chrome_trace_events",
    "read_jsonl",
    "span",
]
