"""Trace exporters: Chrome ``trace_event`` JSON and a rotated JSONL log.

Two consumers, two formats:

* :func:`chrome_trace` renders traces as the Chrome ``trace_event``
  format (load in ``about://tracing`` / Perfetto for a flamegraph).
  Each trace becomes one "process" row; spans are complete ("X")
  events in microseconds; span events become instant ("i") events.
* :class:`JsonlTraceLog` is the durable structured event log: one
  JSON object per line, size-rotated so a long-lived service cannot
  grow a log file without bound. ``scripts/trace_report.py`` reads
  this format back.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Sequence

__all__ = ["JsonlTraceLog", "chrome_trace", "chrome_trace_events", "read_jsonl"]


def chrome_trace_events(traces: Sequence) -> List[Dict[str, object]]:
    """Flatten traces into Chrome ``trace_event`` records.

    Timestamps/durations are microseconds relative to each trace's
    origin; ``pid`` is the trace's ordinal (one flamegraph row per
    trace), ``tid`` is the span depth-independent span id so nested
    spans stack by the viewer's own interval nesting.
    """
    events: List[Dict[str, object]] = []
    for pid, trace in enumerate(traces, start=1):
        data = trace.to_dict() if hasattr(trace, "to_dict") else trace
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{data['trace_id']} {data['name']}"},
        })
        for span in data["spans"]:
            start_us = float(span["start"]) * 1e6
            args = {
                "sim_seconds": span["sim_seconds"],
                "status": span["status"],
                **{
                    k: v for k, v in (span.get("attrs") or {}).items()
                    if k != "profile"
                },
            }
            events.append({
                "name": span["name"],
                "cat": span["category"],
                "ph": "X",
                "pid": pid,
                "tid": 1,
                "ts": start_us,
                "dur": float(span["duration"]) * 1e6,
                "args": args,
            })
            for event in span.get("events") or ():
                events.append({
                    "name": event["name"],
                    "cat": span["category"],
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": 1,
                    "ts": float(event["at"]) * 1e6,
                    "args": dict(event.get("attrs") or {}),
                })
    return events


def chrome_trace(traces: Sequence) -> Dict[str, object]:
    """The loadable top-level Chrome trace document."""
    return {
        "traceEvents": chrome_trace_events(traces),
        "displayTimeUnit": "ms",
    }


class JsonlTraceLog:
    """Append-only JSONL event log with size-bounded rotation.

    When the active file would exceed ``max_bytes`` it is rotated to
    ``<path>.1`` (existing backups shifting to ``.2`` … ``.backups``,
    the oldest dropped) — the standard logrotate discipline, with the
    rename done under the same lock as writes so records never split.
    """

    def __init__(self, path, *, max_bytes: int = 4 << 20, backups: int = 3):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self.written = 0

    def write(self, record: Dict[str, object]) -> None:
        """Append one record (thread-safe; rotates first if needed)."""
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        payload = line.encode("utf-8")
        with self._lock:
            size = (
                os.path.getsize(self.path)
                if os.path.exists(self.path) else 0)
            if size and size + len(payload) > self.max_bytes:
                self._rotate_locked()
            with open(self.path, "ab") as handle:
                handle.write(payload)
            self.written += 1

    def _rotate_locked(self) -> None:
        if self.backups == 0:
            os.remove(self.path)
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")

    def files(self) -> List[str]:
        """Existing log files, newest first (active file, then backups)."""
        found = []
        if os.path.exists(self.path):
            found.append(self.path)
        for index in range(1, self.backups + 1):
            backup = f"{self.path}.{index}"
            if os.path.exists(backup):
                found.append(backup)
        return found


def read_jsonl(paths: Iterable[str]) -> List[Dict[str, object]]:
    """Parse records back out of JSONL log files (oldest first when
    given a newest-first ``JsonlTraceLog.files()`` listing)."""
    records: List[Dict[str, object]] = []
    for path in reversed(list(paths)):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records
