"""Result-quality metrics (paper Section 4, "Evaluation Metrics").

Given a returned Top-K answer and the exact per-item ground-truth
scores, the paper reports:

* **precision** — the fraction of returned items that belong to the
  exact Top-K. Scores tie heavily (counts are small integers), so an
  item is counted correct when its true score reaches the K-th highest
  true score, i.e. when it belongs to *some* exact Top-K set. (Recall
  equals precision because both sets have K elements.)
* **rank distance** — normalized Spearman footrule between each
  returned item's position and its true (competition) rank, normalized
  by the worst-case displacement ``K * (n - K)``.
* **score error** — mean absolute difference between the true scores of
  the returned items and the true Top-K scores, compared rank by rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class QualityMetrics:
    """The paper's three answer-quality metrics for one query."""

    precision: float
    rank_distance: float
    score_error: float

    def as_row(self) -> str:
        return (
            f"precision={self.precision:.3f} "
            f"rank_dist={self.rank_distance:.5f} "
            f"score_err={self.score_error:.4f}"
        )


def kth_highest(true_scores: np.ndarray, k: int) -> float:
    """The K-th highest ground-truth score (the exact threshold)."""
    true_scores = np.asarray(true_scores, dtype=np.float64)
    if not 1 <= k <= true_scores.size:
        raise ConfigurationError(
            f"k={k} out of range for {true_scores.size} items")
    return float(np.partition(true_scores, -k)[-k])


def precision_at_k(
    answer_ids: Sequence[int],
    true_scores: np.ndarray,
    k: int,
    *,
    tolerance: float = 0.0,
) -> float:
    """Fraction of the answer belonging to an exact Top-K (tie-aware).

    ``tolerance`` widens the tie band: an item whose true score is
    within ``tolerance`` of the K-th highest also counts. Continuous
    UDFs operate at their quantization step's resolution (Section 3.2),
    so the harness passes the step as the tolerance there; counting
    queries use the strict default of 0.
    """
    if len(answer_ids) == 0:
        return 0.0
    if tolerance < 0:
        raise ConfigurationError("tolerance must be >= 0")
    threshold = kth_highest(true_scores, k) - tolerance
    true_scores = np.asarray(true_scores, dtype=np.float64)
    hits = [true_scores[int(i)] >= threshold for i in answer_ids]
    return float(np.mean(hits))


def rank_distance(
    answer_ids: Sequence[int], true_scores: np.ndarray, k: int
) -> float:
    """Normalized footrule between answer positions and true ranks.

    True rank uses competition ranking resolved in the answer's favour:
    an item's rank is the number of items with *strictly* greater true
    score (0-based), so ties never penalize the answer.
    """
    if len(answer_ids) == 0:
        return 1.0
    true_scores = np.asarray(true_scores, dtype=np.float64)
    n = true_scores.size
    sorted_desc = np.sort(true_scores)[::-1]
    displacement = 0.0
    for position, frame in enumerate(answer_ids):
        score = true_scores[int(frame)]
        best_rank = int(np.searchsorted(-sorted_desc, -score))
        # Ties: the most favourable rank within [best_rank, ...] that
        # does not precede the answer position.
        rank = max(best_rank, 0)
        displacement += max(0, rank - position) + max(0, position - (
            int(np.searchsorted(-sorted_desc, -score, side="right")) - 1))
    worst = len(answer_ids) * max(n - k, 1)
    return float(displacement / worst)


def score_error(
    answer_scores_true: Sequence[float], true_scores: np.ndarray, k: int
) -> float:
    """Mean |true score of answer at rank i - exact score at rank i|."""
    if len(answer_scores_true) == 0:
        return float("nan")
    true_scores = np.asarray(true_scores, dtype=np.float64)
    exact = np.sort(true_scores)[::-1][:k]
    got = np.asarray(answer_scores_true, dtype=np.float64)
    m = min(exact.size, got.size)
    return float(np.mean(np.abs(np.sort(got[:m])[::-1] - exact[:m])))


def evaluate_answer(
    answer_ids: Sequence[int],
    true_scores: np.ndarray,
    k: int,
    *,
    tolerance: float = 0.0,
) -> QualityMetrics:
    """All three metrics for an answer over item-indexed true scores."""
    true_scores = np.asarray(true_scores, dtype=np.float64)
    answer_true = [float(true_scores[int(i)]) for i in answer_ids]
    return QualityMetrics(
        precision=precision_at_k(
            answer_ids, true_scores, k, tolerance=tolerance),
        rank_distance=rank_distance(answer_ids, true_scores, k),
        score_error=score_error(answer_true, true_scores, k),
    )
