"""Evaluation metrics matching the paper's Section 4."""

from .quality import (
    QualityMetrics,
    evaluate_answer,
    kth_highest,
    precision_at_k,
    rank_distance,
    score_error,
)

__all__ = [
    "QualityMetrics",
    "evaluate_answer",
    "kth_highest",
    "precision_at_k",
    "rank_distance",
    "score_error",
]
