"""Difference detector (paper Section 3.5).

Everest discards frames that are too similar to a nearby retained
frame before building the uncertain relation. This (a) removes
uninformative frames and (b) approximates independence between the
retained frames, justifying the x-tuple model.

Following the paper (and NoScope), similarity is mean-squared-error
between pixel arrays. To parallelize, the video is split into clips of
``c`` frames; every frame in a clip is compared against the clip's
middle frame and discarded when the MSE falls below the threshold. The
middle frame is always retained and *represents* the discarded frames,
which is what the window aggregation (Section 3.4) builds its segments
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DiffDetectorConfig
from .synthetic import SyntheticVideo


@dataclass(frozen=True)
class DiffResult:
    """Output of the difference detector over one video.

    Attributes
    ----------
    retained:
        Sorted frame indices kept for the uncertain relation.
    representative:
        ``representative[i]`` is the retained frame index that stands in
        for frame ``i`` (``i`` itself when ``i`` is retained).
    num_frames:
        Total frames in the source video.
    """

    retained: np.ndarray
    representative: np.ndarray
    num_frames: int

    @property
    def num_retained(self) -> int:
        return int(self.retained.size)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of frames discarded, in ``[0, 1)``."""
        if self.num_frames == 0:
            return 0.0
        return 1.0 - self.num_retained / self.num_frames

    def segments(self) -> List[np.ndarray]:
        """Maximal runs of consecutive frames sharing a representative.

        The window model (Section 3.4) treats each segment as one
        independent retained frame weighted by the segment length.
        """
        if self.num_frames == 0:
            return []
        change = np.flatnonzero(np.diff(self.representative)) + 1
        return np.split(np.arange(self.num_frames), change)


def process_clip(
    video: SyntheticVideo, indices: np.ndarray, threshold: float
) -> np.ndarray:
    """Keep mask for one clip: MSE against the middle-frame anchor.

    The single per-clip kernel, shared by the batch detector and the
    streaming :class:`~repro.streaming.phase1_incremental
    .IncrementalDiff` — their bit-equality contract is structural, not
    a convention between two copies. A clip's decisions depend only on
    its own frames, which is what makes incremental maintenance exact.
    """
    pixels = video.batch_pixels(indices).astype(np.float64)
    mid = len(indices) // 2
    anchor = pixels[mid]
    errors = np.mean((pixels - anchor[None, :, :]) ** 2, axis=(1, 2))
    keep = errors >= threshold
    keep[mid] = True  # the anchor is always retained
    return keep


class DifferenceDetector:
    """MSE-based duplicate-frame suppressor with clip-level splitting."""

    def __init__(self, config: DiffDetectorConfig = DiffDetectorConfig()):
        self.config = config

    def mse(self, a: np.ndarray, b: np.ndarray) -> float:
        """Mean squared error between two equally shaped frames."""
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.mean(diff * diff))

    def _clip_bounds(self, num_frames: int) -> List[range]:
        c = self.config.clip_size
        return [range(s, min(s + c, num_frames)) for s in range(0, num_frames, c)]

    def run(self, video: SyntheticVideo) -> DiffResult:
        """Detect near-duplicate frames across the whole video.

        Each clip is processed independently (the paper runs clips in
        parallel; the computation is identical either way and this
        implementation is vectorized within a clip).
        """
        num_frames = len(video)
        representative = np.empty(num_frames, dtype=np.int64)
        retained_mask = np.zeros(num_frames, dtype=bool)
        threshold = self.config.mse_threshold

        for clip in self._clip_bounds(num_frames):
            indices = np.asarray(clip, dtype=np.int64)
            middle = int(indices[len(indices) // 2])
            keep = process_clip(video, indices, threshold)
            retained_mask[indices[keep]] = True
            representative[indices] = np.where(keep, indices, middle)

        retained = np.flatnonzero(retained_mask)
        return DiffResult(
            retained=retained,
            representative=representative,
            num_frames=num_frames,
        )
