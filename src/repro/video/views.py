"""Frame-range and concatenation views over deterministic videos.

Two read-only views back the corpus layer (DESIGN.md §9):

* :class:`VideoSlice` exposes a contiguous ``[start, stop)`` range of a
  parent video as a shard. Reads delegate straight to the parent, so
  frame ``i`` of a slice is *the parent's* frame ``start + i`` — pixels,
  ground truth, timestamp and all. That identity is what makes
  splitting an archive into shards exactly neutral: a federated query
  over the slices confirms the very frames the unsplit query would.
* :class:`ConcatVideo` exposes an ordered sequence of member videos as
  one logical video whose frame ``g`` is member ``m``'s frame
  ``g - offset[m]``. It is the reference substrate the corpus
  equivalence harness executes plain single-video queries against.

Neither view renders anything itself and neither is appendable; a
growing member is wrapped by :class:`~repro.video.streaming
.StreamingVideo` *before* it joins a corpus, and the concat view reads
its length dynamically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, FrameIndexError
from .frame import BoundingBox, Frame


class VideoSlice:
    """A contiguous ``[start, stop)`` shard view over a parent video.

    Frame ``i`` of the slice *is* the parent's frame ``start + i`` —
    the returned :class:`~repro.video.frame.Frame` keeps the parent's
    index and timestamp, so an oracle scoring through the slice sees
    bit-identical inputs to one scoring the parent directly.
    """

    def __init__(self, parent, start: int, stop: int,
                 *, name: Optional[str] = None):
        start, stop = int(start), int(stop)
        if not 0 <= start < stop <= len(parent):
            raise ConfigurationError(
                f"slice [{start}, {stop}) out of range for video "
                f"{parent.name!r} with {len(parent)} frames")
        self.parent = parent
        self.start = start
        self.stop = stop
        self.name = name if name is not None \
            else f"{parent.name}[{start}:{stop}]"
        self.resolution = parent.resolution
        self.fps = parent.fps
        self.signal_key = getattr(parent, "signal_key", "signal")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.stop - self.start

    def _check_index(self, index: int) -> int:
        index = int(index)
        if index < 0 or index >= len(self):
            raise FrameIndexError(index, len(self))
        return self.start + index

    def pixels(self, index: int) -> np.ndarray:
        return self.parent.pixels(self._check_index(index))

    def batch_pixels(self, indices: Iterable[int]) -> np.ndarray:
        return self.parent.batch_pixels(
            [self._check_index(i) for i in indices])

    def frame(self, index: int) -> Frame:
        return self.parent.frame(self._check_index(index))

    def __getitem__(self, index: int) -> Frame:
        return self.frame(index)

    def __iter__(self) -> Iterator[Frame]:
        for i in range(len(self)):
            yield self.frame(i)

    def objects(self, index: int) -> List[BoundingBox]:
        return self.parent.objects(self._check_index(index))

    def truth_array(self, key: Optional[str] = None) -> np.ndarray:
        return self.parent.truth_array(key)[self.start:self.stop]

    @property
    def duration_seconds(self) -> float:
        return len(self) / self.fps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VideoSlice({self.parent.name!r}, "
            f"[{self.start}:{self.stop}])"
        )


class ConcatVideo:
    """Member videos exposed as one logical concatenation.

    Global frame ``g`` belongs to the member ``m`` with the largest
    offset ``<= g`` and maps to its local frame ``g - offset[m]``; reads
    delegate to the member, so a plain oracle over the concat view
    scores exactly the frames a federated per-shard oracle would. The
    view reads member lengths on every access — a streaming member's
    appends are visible immediately.
    """

    def __init__(self, members: Sequence, *, name: str):
        if not members:
            raise ConfigurationError("ConcatVideo needs >= 1 member")
        self.members = list(members)
        self.name = name
        first = self.members[0]
        for member in self.members[1:]:
            if tuple(member.resolution) != tuple(first.resolution):
                raise ConfigurationError(
                    f"member {member.name!r} resolution "
                    f"{member.resolution} differs from "
                    f"{first.name!r} {first.resolution}")
        self.resolution = first.resolution
        self.fps = first.fps
        self.signal_key = getattr(first, "signal_key", "signal")

    # ------------------------------------------------------------------
    def offsets(self) -> np.ndarray:
        """Global id of each member's frame 0 (member order)."""
        lengths = [len(member) for member in self.members]
        return np.concatenate(([0], np.cumsum(lengths[:-1]))).astype(
            np.int64)

    def locate(self, index: int) -> Tuple[int, int]:
        """``(member_index, local_frame)`` owning global frame ``index``."""
        index = int(index)
        if index < 0 or index >= len(self):
            raise FrameIndexError(index, len(self))
        offsets = self.offsets()
        member = int(np.searchsorted(offsets, index, side="right")) - 1
        return member, index - int(offsets[member])

    def __len__(self) -> int:
        return sum(len(member) for member in self.members)

    def pixels(self, index: int) -> np.ndarray:
        member, local = self.locate(index)
        return self.members[member].pixels(local)

    def batch_pixels(self, indices: Iterable[int]) -> np.ndarray:
        frames = [self.pixels(i) for i in indices]
        if not frames:
            height, width = self.resolution
            return np.zeros((0, height, width), dtype=np.float32)
        return np.stack(frames).astype(np.float32)

    def frame(self, index: int) -> Frame:
        member, local = self.locate(index)
        return self.members[member].frame(local)

    def __getitem__(self, index: int) -> Frame:
        return self.frame(index)

    def __iter__(self) -> Iterator[Frame]:
        for i in range(len(self)):
            yield self.frame(i)

    def objects(self, index: int) -> List[BoundingBox]:
        member, local = self.locate(index)
        return self.members[member].objects(local)

    def truth_array(self, key: Optional[str] = None) -> np.ndarray:
        return np.concatenate(
            [member.truth_array(key) for member in self.members])

    @property
    def duration_seconds(self) -> float:
        return sum(member.duration_seconds for member in self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(member.name for member in self.members)
        return f"ConcatVideo({names}, {len(self)} frames)"
