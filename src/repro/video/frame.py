"""Frame and bounding-box value objects.

A :class:`Frame` couples a frame index with its rendered pixels and the
simulator's ground-truth annotations. Ground truth is carried on the
frame for the *oracle substrate only* — Everest's query pipeline never
reads it directly; it must pay the simulated oracle cost to observe it
(see :mod:`repro.oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box in pixel coordinates, ``(x, y)`` = top-left."""

    x: float
    y: float
    width: float
    height: float
    label: str = "object"

    @property
    def area(self) -> float:
        return max(self.width, 0.0) * max(self.height, 0.0)

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def intersection(self, other: "BoundingBox") -> float:
        """Area of overlap with ``other`` (0.0 when disjoint)."""
        left = max(self.x, other.x)
        top = max(self.y, other.y)
        right = min(self.x + self.width, other.x + other.width)
        bottom = min(self.y + self.height, other.y + other.height)
        if right <= left or bottom <= top:
            return 0.0
        return (right - left) * (bottom - top)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with ``other`` in ``[0, 1]``."""
        inter = self.intersection(other)
        union = self.area + other.area - inter
        if union <= 0.0:
            return 0.0
        return inter / union


@dataclass(frozen=True)
class Frame:
    """One video frame: pixels plus simulator ground truth.

    Attributes
    ----------
    index:
        Zero-based frame number within its video.
    pixels:
        Grayscale image as a ``(H, W)`` float array in ``[0, 1]``.
    timestamp:
        Seconds from the start of the video.
    truth:
        Ground-truth scalar signals (``"count"``, ``"distance"``,
        ``"happiness"``, ...). Only oracles should read this.
    objects:
        Ground-truth bounding boxes for the objects present.
    """

    index: int
    pixels: np.ndarray
    timestamp: float = 0.0
    truth: Dict[str, float] = field(default_factory=dict)
    objects: List[BoundingBox] = field(default_factory=list)

    @property
    def resolution(self) -> Tuple[int, int]:
        """The ``(height, width)`` of the pixel array."""
        return (int(self.pixels.shape[0]), int(self.pixels.shape[1]))

    def truth_value(self, key: str) -> float:
        """Return a ground-truth signal, raising ``KeyError`` if absent."""
        return self.truth[key]
