"""Dataset registry mirroring Table 7 of the paper.

The paper evaluates on five long real videos for object counting plus
two dashcam videos for the tailgating UDF. We register one synthetic
stand-in per video carrying the paper's metadata (object of interest,
fps, original frame count and duration) plus a *scale* knob that maps
the multi-million-frame originals onto CPU-friendly lengths while
keeping their relative sizes.

``build_dataset("taipei-bus")`` returns a ready
:class:`~repro.video.synthetic.SyntheticVideo`;
``dataset_table()`` prints the Table 7 analogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from .synthetic import DashcamVideo, SyntheticVideo, TrafficVideo

#: Default scale factor from paper frame counts to simulated ones.
DEFAULT_SCALE = 1.0 / 500.0

#: Floor on simulated video length so tiny scales stay meaningful (the
#: Phase 1 labelling floor must remain a small fraction of the video).
MIN_FRAMES = 12_000


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one Table 7 video plus its simulator recipe."""

    name: str
    kind: str  # "counting" | "dashcam"
    object_of_interest: str
    paper_resolution: Tuple[int, int]  # (width, height) as in Table 7
    fps: float
    paper_frames: int
    paper_hours: float
    seed: int
    #: Mean / burstiness knobs shaping the count process per video.
    base_level: float = 1.0
    burst_amplitude: float = 6.0
    num_bursts: int = 4
    max_objects: int = 12

    def scaled_frames(self, scale: float, min_frames: int = MIN_FRAMES) -> int:
        return max(min_frames, int(round(self.paper_frames * scale)))

    def build(
        self,
        scale: float = DEFAULT_SCALE,
        *,
        resolution: Tuple[int, int] = (24, 24),
        seed: Optional[int] = None,
        min_frames: int = MIN_FRAMES,
    ) -> SyntheticVideo:
        """Instantiate the synthetic stand-in for this dataset."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        num_frames = self.scaled_frames(scale, min_frames)
        video_seed = self.seed if seed is None else seed
        if self.kind == "counting":
            return TrafficVideo(
                self.name,
                num_frames,
                object_label=self.object_of_interest,
                resolution=resolution,
                fps=self.fps,
                seed=video_seed,
                base_level=self.base_level,
                burst_amplitude=self.burst_amplitude,
                num_bursts=self.num_bursts,
                max_objects=self.max_objects,
            )
        if self.kind == "dashcam":
            return DashcamVideo(
                self.name,
                num_frames,
                resolution=resolution,
                fps=self.fps,
                seed=video_seed,
            )
        raise ConfigurationError(f"unknown dataset kind: {self.kind!r}")


#: Table 7, first five rows: Top-K object counting videos.
COUNTING_DATASETS: Dict[str, DatasetSpec] = {
    "archie": DatasetSpec(
        name="archie", kind="counting", object_of_interest="car",
        paper_resolution=(1920, 1080), fps=30.0,
        paper_frames=2_130_000, paper_hours=19.7, seed=11,
        base_level=1.5, burst_amplitude=7.0, num_bursts=4, max_objects=14,
    ),
    "daxi-old-street": DatasetSpec(
        name="daxi-old-street", kind="counting", object_of_interest="person",
        paper_resolution=(1920, 1080), fps=30.0,
        paper_frames=8_640_000, paper_hours=80.0, seed=12,
        base_level=2.0, burst_amplitude=8.0, num_bursts=6, max_objects=16,
    ),
    "grand-canal": DatasetSpec(
        name="grand-canal", kind="counting", object_of_interest="boat",
        paper_resolution=(1920, 1080), fps=60.0,
        paper_frames=25_100_000, paper_hours=116.2, seed=13,
        base_level=0.8, burst_amplitude=5.0, num_bursts=5, max_objects=10,
    ),
    "irish-center": DatasetSpec(
        name="irish-center", kind="counting", object_of_interest="car",
        paper_resolution=(1920, 1080), fps=30.0,
        paper_frames=32_401_000, paper_hours=300.0, seed=14,
        base_level=1.2, burst_amplitude=6.5, num_bursts=7, max_objects=13,
    ),
    "taipei-bus": DatasetSpec(
        name="taipei-bus", kind="counting", object_of_interest="car",
        paper_resolution=(1920, 1080), fps=30.0,
        paper_frames=32_488_000, paper_hours=300.8, seed=15,
        base_level=1.8, burst_amplitude=7.5, num_bursts=8, max_objects=15,
    ),
}

#: Table 7, last two rows: dashcam videos for the tailgating UDF.
DASHCAM_DATASETS: Dict[str, DatasetSpec] = {
    "dashcam-california": DatasetSpec(
        name="dashcam-california", kind="dashcam", object_of_interest="car",
        paper_resolution=(1280, 720), fps=30.0,
        paper_frames=324_000, paper_hours=3.0, seed=21,
    ),
    "dashcam-greenport": DatasetSpec(
        name="dashcam-greenport", kind="dashcam", object_of_interest="car",
        paper_resolution=(1280, 720), fps=30.0,
        paper_frames=350_000, paper_hours=3.2, seed=22,
    ),
}

#: All Table 7 rows by name.
DATASETS: Dict[str, DatasetSpec] = {
    **COUNTING_DATASETS, **DASHCAM_DATASETS}


def build_dataset(
    name: str,
    scale: float = DEFAULT_SCALE,
    *,
    resolution: Tuple[int, int] = (24, 24),
    seed: Optional[int] = None,
    min_frames: int = MIN_FRAMES,
) -> SyntheticVideo:
    """Build the synthetic stand-in for a Table 7 dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ConfigurationError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None
    return spec.build(
        scale, resolution=resolution, seed=seed, min_frames=min_frames)


def dataset_table(scale: float = DEFAULT_SCALE) -> str:
    """Render the Table 7 analogue as aligned text rows."""
    header = (
        f"{'Video':<20} {'Object':<8} {'Paper res.':<12} {'FPS':>5} "
        f"{'Paper frames':>13} {'Hours':>7} {'Sim frames':>11}"
    )
    lines = [header, "-" * len(header)]
    for spec in DATASETS.values():
        width, height = spec.paper_resolution
        lines.append(
            f"{spec.name:<20} {spec.object_of_interest:<8} "
            f"{f'{width}x{height}':<12} {spec.fps:>5.0f} "
            f"{spec.paper_frames:>13,} {spec.paper_hours:>7.1f} "
            f"{spec.scaled_frames(scale):>11,}"
        )
    return "\n".join(lines)
