"""Deterministic, seeded scene simulators standing in for real videos.

Everest's pipeline needs three things from a video (see DESIGN.md §1,
"Video substrate", for the full rationale):

1. pixels that are *predictive but noisy* evidence of the ground-truth
   score, so a learned proxy produces calibrated, imperfect
   distributions;
2. an expensive oracle signal per frame (object count, lead-vehicle
   distance, happiness);
3. temporal locality, so the difference detector and tumbling windows
   behave like they do on real footage.

Each simulator here renders small grayscale frames on demand (random
access, no decode order constraint) from a per-video latent process
generated eagerly at construction. All randomness derives from the
constructor ``seed``; rendering frame ``i`` twice yields identical
pixels.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import signal as _signal

from ..errors import ConfigurationError, FrameIndexError
from .frame import BoundingBox, Frame


class ObjectCountProcess:
    """Integer object-count process with diurnal bursts.

    The latent intensity is a sum of a base level and Gaussian "rush
    hour" bumps; an AR(1) perturbation adds local variability. Counts
    are the rounded, clipped intensity. The result has strong temporal
    autocorrelation and a heavy right tail — peak frames are rare, which
    is exactly the regime where Top-K beats a full scan.
    """

    def __init__(
        self,
        num_frames: int,
        *,
        base_level: float = 1.0,
        num_bursts: int = 4,
        burst_amplitude: float = 6.0,
        burst_width_fraction: float = 0.02,
        ar_coefficient: float = 0.995,
        noise_scale: float = 0.15,
        max_objects: int = 12,
        seed: int = 0,
    ):
        if num_frames < 1:
            raise ConfigurationError("num_frames must be >= 1")
        if not 0.0 <= ar_coefficient < 1.0:
            raise ConfigurationError("ar_coefficient must be in [0, 1)")
        if max_objects < 1:
            raise ConfigurationError("max_objects must be >= 1")
        self.num_frames = num_frames
        self.max_objects = max_objects
        rng = np.random.default_rng(seed)

        t = np.arange(num_frames, dtype=np.float64)
        intensity = np.full(num_frames, base_level, dtype=np.float64)
        width = max(2.0, burst_width_fraction * num_frames)
        for _ in range(num_bursts):
            center = rng.uniform(0.05, 0.95) * num_frames
            amplitude = burst_amplitude * rng.uniform(0.5, 1.0)
            intensity += amplitude * np.exp(-0.5 * ((t - center) / width) ** 2)

        # AR(1) perturbation, vectorized through an IIR filter.
        eps = rng.normal(0.0, noise_scale, size=num_frames)
        perturbation = _signal.lfilter([1.0], [1.0, -ar_coefficient], eps)

        counts = np.rint(intensity + perturbation)
        self.counts = np.clip(counts, 0, max_objects).astype(np.int64)

    def __len__(self) -> int:
        return self.num_frames

    def __getitem__(self, index: int) -> int:
        return int(self.counts[index])


class SyntheticVideo:
    """Base class: a fixed-length, randomly accessible synthetic video.

    Subclasses implement :meth:`_render` (latent state -> pixels) and
    :meth:`_truth` (latent state -> ground-truth dict), and expose a
    :attr:`signal_key` naming the scalar an oracle would extract.
    """

    #: Name of the primary ground-truth signal (e.g. ``"count"``).
    signal_key: str = "signal"

    def __init__(
        self,
        name: str,
        num_frames: int,
        *,
        resolution: Tuple[int, int] = (24, 24),
        fps: float = 30.0,
        noise_level: float = 0.004,
        seed: int = 0,
    ):
        if num_frames < 1:
            raise ConfigurationError("num_frames must be >= 1")
        if resolution[0] < 4 or resolution[1] < 4:
            raise ConfigurationError("resolution must be at least 4x4")
        if fps <= 0:
            raise ConfigurationError("fps must be positive")
        self.name = name
        self.num_frames = num_frames
        self.resolution = (int(resolution[0]), int(resolution[1]))
        self.fps = float(fps)
        self.noise_level = float(noise_level)
        self.seed = int(seed)
        height, width = self.resolution
        # Static background with a gentle gradient; shared by all frames.
        yy, xx = np.mgrid[0:height, 0:width]
        self._background = (
            0.15 + 0.05 * (yy / max(height - 1, 1))
        ).astype(np.float64)
        self._grid = (yy.astype(np.float64), xx.astype(np.float64))

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def _render(self, index: int) -> np.ndarray:
        """Return the noiseless scene for frame ``index``."""
        raise NotImplementedError

    def _truth(self, index: int) -> dict:
        """Return the ground-truth signal dict for frame ``index``."""
        raise NotImplementedError

    def _objects(self, index: int) -> List[BoundingBox]:
        """Return ground-truth boxes; default none."""
        return []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self) -> Iterator[Frame]:
        for i in range(self.num_frames):
            yield self.frame(i)

    def _check_index(self, index: int) -> int:
        index = int(index)
        if index < 0 or index >= self.num_frames:
            raise FrameIndexError(index, self.num_frames)
        return index

    def pixels(self, index: int) -> np.ndarray:
        """Render frame ``index`` as a ``(H, W)`` float array in [0, 1]."""
        index = self._check_index(index)
        scene = self._render(index)
        noise_rng = np.random.default_rng((self.seed, index, 0x5EED))
        noisy = scene + noise_rng.normal(0.0, self.noise_level, scene.shape)
        return np.clip(noisy, 0.0, 1.0)

    def batch_pixels(self, indices: Iterable[int]) -> np.ndarray:
        """Render several frames into an ``(N, H, W)`` float32 array."""
        frames = [self.pixels(i) for i in indices]
        if not frames:
            height, width = self.resolution
            return np.zeros((0, height, width), dtype=np.float32)
        return np.stack(frames).astype(np.float32)

    def frame(self, index: int) -> Frame:
        """Return the full :class:`Frame` (pixels + ground truth)."""
        index = self._check_index(index)
        return Frame(
            index=index,
            pixels=self.pixels(index),
            timestamp=index / self.fps,
            truth=self._truth(index),
            objects=self._objects(index),
        )

    def __getitem__(self, index: int) -> Frame:
        return self.frame(index)

    def objects(self, index: int) -> List[BoundingBox]:
        """Ground-truth boxes for frame ``index`` without rendering it."""
        return self._objects(self._check_index(index))

    def truth_array(self, key: Optional[str] = None) -> np.ndarray:
        """Ground-truth signal for every frame as one array.

        Intended for oracles and for metric computation only; the query
        pipeline must access ground truth through an oracle so that the
        cost model charges for it.
        """
        key = key or self.signal_key
        return np.asarray(
            [self._truth(i)[key] for i in range(self.num_frames)],
            dtype=np.float64,
        )

    @property
    def duration_seconds(self) -> float:
        return self.num_frames / self.fps


def _blob(grid, cx: float, cy: float, sigma: float, amplitude: float):
    """A Gaussian intensity blob centred at ``(cx, cy)``."""
    yy, xx = grid
    return amplitude * np.exp(
        -((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * sigma * sigma)
    )


class TrafficVideo(SyntheticVideo):
    """A fixed-camera street scene whose score is the object count.

    ``max_objects`` slots carry smoothly moving objects; slot ``j`` is
    visible in frame ``t`` iff ``j < counts[t]``, so the visible count
    follows :class:`ObjectCountProcess` while motion stays continuous.

    Real 1080p footage confounds learned proxies far more than clean
    blobs would, so three realism confounders are on by default:

    * slow global *illumination drift* (time of day, clouds) whose
      brightness contribution rivals an object's;
    * *distractor* objects of a different class that are rendered but
      never counted (pedestrians in a car-counting query);
    * per-object *contrast variation* (some objects are faint).

    They make pixel evidence genuinely ambiguous — the regime in which
    the paper's comparisons between Everest and proxy-only baselines
    were run.
    """

    signal_key = "count"

    def __init__(
        self,
        name: str = "traffic",
        num_frames: int = 3_000,
        *,
        object_label: str = "car",
        resolution: Tuple[int, int] = (24, 24),
        fps: float = 30.0,
        noise_level: float = 0.004,
        seed: int = 0,
        count_process: Optional[ObjectCountProcess] = None,
        illumination_amplitude: float = 0.10,
        distractor_mean: float = 1.5,
        **count_kwargs,
    ):
        super().__init__(
            name,
            num_frames,
            resolution=resolution,
            fps=fps,
            noise_level=noise_level,
            seed=seed,
        )
        self.object_label = object_label
        if count_process is None:
            count_process = ObjectCountProcess(
                num_frames, seed=seed ^ 0xC0FFEE, **count_kwargs
            )
        if len(count_process) != num_frames:
            raise ConfigurationError(
                "count_process length must equal num_frames")
        self.count_process = count_process
        self.counts = count_process.counts

        max_objects = count_process.max_objects
        rng = np.random.default_rng((seed, 0xB10B))
        height, width = self.resolution
        # Per-slot trajectory parameters: objects drift across the scene
        # on low-frequency Lissajous paths, giving smooth inter-frame
        # motion (essential for the difference detector).
        self._speed_x = rng.uniform(0.02, 0.12, max_objects) / fps
        self._speed_y = rng.uniform(0.02, 0.12, max_objects) / fps
        self._phase_x = rng.uniform(0.0, 2 * np.pi, max_objects)
        self._phase_y = rng.uniform(0.0, 2 * np.pi, max_objects)
        self._amplitude = rng.uniform(0.55, 0.85, max_objects)
        self._contrast = rng.uniform(0.30, 0.70, max_objects)
        self._sigma = max(1.2, min(height, width) / 14.0)
        self._width = width
        self._height = height

        # Illumination drift: slow sinusoid plus an OU wobble.
        drift_period = max(600.0, num_frames / 4.0)
        t = np.arange(num_frames, dtype=np.float64)
        drift_phase = rng.uniform(0.0, 2 * np.pi)
        self._illumination = illumination_amplitude * (
            np.sin(2 * np.pi * t / drift_period + drift_phase)
            + 0.5 * _ou_process(
                num_frames, mean=0.0, reversion=0.01,
                volatility=0.02, seed=seed ^ 0x111)
        )

        # Distractors: a second object population never counted.
        if distractor_mean > 0:
            distractors = ObjectCountProcess(
                num_frames,
                base_level=distractor_mean,
                burst_amplitude=2.0 * distractor_mean,
                num_bursts=3,
                max_objects=max(2, int(np.ceil(3 * distractor_mean))),
                seed=seed ^ 0xD157,
            )
            self.distractor_counts = distractors.counts
            m = distractors.max_objects
            drng = np.random.default_rng((seed, 0xD157))
            self._d_speed_x = drng.uniform(0.02, 0.12, m) / fps
            self._d_speed_y = drng.uniform(0.02, 0.12, m) / fps
            self._d_phase_x = drng.uniform(0.0, 2 * np.pi, m)
            self._d_phase_y = drng.uniform(0.0, 2 * np.pi, m)
            self._d_amplitude = drng.uniform(0.55, 0.85, m)
            self._d_contrast = drng.uniform(0.30, 0.70, m)
        else:
            self.distractor_counts = np.zeros(num_frames, dtype=np.int64)

    def _positions(self, index: int, active: int) -> np.ndarray:
        """Centres of the ``active`` visible objects at frame ``index``."""
        j = np.arange(active)
        cx = self._width * 0.5 * (
            1.0
            + self._amplitude[j]
            * np.sin(2 * np.pi * self._speed_x[j] * index + self._phase_x[j])
        )
        cy = self._height * 0.5 * (
            1.0
            + self._amplitude[j]
            * np.sin(2 * np.pi * self._speed_y[j] * index + self._phase_y[j])
        )
        return np.stack([cx, cy], axis=1)

    def _distractor_positions(self, index: int, active: int) -> np.ndarray:
        j = np.arange(active)
        cx = self._width * 0.5 * (
            1.0
            + self._d_amplitude[j]
            * np.sin(2 * np.pi * self._d_speed_x[j] * index
                     + self._d_phase_x[j])
        )
        cy = self._height * 0.5 * (
            1.0
            + self._d_amplitude[j]
            * np.sin(2 * np.pi * self._d_speed_y[j] * index
                     + self._d_phase_y[j])
        )
        return np.stack([cx, cy], axis=1)

    def _render(self, index: int) -> np.ndarray:
        scene = self._background + self._illumination[index]
        active = int(self.counts[index])
        if active:
            for j, (cx, cy) in enumerate(self._positions(index, active)):
                scene = scene + _blob(
                    self._grid, cx, cy, self._sigma, self._contrast[j])
        n_distract = int(self.distractor_counts[index])
        if n_distract:
            positions = self._distractor_positions(index, n_distract)
            for j, (cx, cy) in enumerate(positions):
                scene = scene + _blob(
                    self._grid, cx, cy, self._sigma, self._d_contrast[j])
        return scene

    def _truth(self, index: int) -> dict:
        return {"count": float(self.counts[index])}

    def _objects(self, index: int) -> List[BoundingBox]:
        active = int(self.counts[index])
        radius = 2.0 * self._sigma
        boxes = [
            BoundingBox(
                x=float(cx - radius),
                y=float(cy - radius),
                width=float(2 * radius),
                height=float(2 * radius),
                label=self.object_label,
            )
            for cx, cy in self._positions(index, active)
        ]
        n_distract = int(self.distractor_counts[index])
        if n_distract:
            distractor_label = "person" if self.object_label != "person" \
                else "car"
            boxes.extend(
                BoundingBox(
                    x=float(cx - radius),
                    y=float(cy - radius),
                    width=float(2 * radius),
                    height=float(2 * radius),
                    label=distractor_label,
                )
                for cx, cy in self._distractor_positions(index, n_distract)
            )
        return boxes

    def true_count(self, index: int) -> int:
        return int(self.counts[self._check_index(index)])


def _ou_process(
    num_frames: int,
    *,
    mean: float,
    reversion: float,
    volatility: float,
    seed: int,
) -> np.ndarray:
    """Ornstein-Uhlenbeck path sampled once per frame (vectorized)."""
    rng = np.random.default_rng(seed)
    eps = rng.normal(0.0, volatility, num_frames)
    deviations = _signal.lfilter([1.0], [1.0, -(1.0 - reversion)], eps)
    return mean + deviations


class DashcamVideo(SyntheticVideo):
    """A dashcam scene scored by distance to the lead vehicle.

    The lead-vehicle distance follows a mean-reverting process with
    occasional close-approach episodes (tailgating). The rendered
    vehicle blob grows as distance shrinks, so pixels predict distance.
    """

    signal_key = "distance"

    def __init__(
        self,
        name: str = "dashcam",
        num_frames: int = 3_000,
        *,
        resolution: Tuple[int, int] = (24, 24),
        fps: float = 30.0,
        noise_level: float = 0.004,
        mean_distance: float = 30.0,
        min_distance: float = 2.0,
        max_distance: float = 60.0,
        num_episodes: int = 5,
        seed: int = 0,
    ):
        super().__init__(
            name,
            num_frames,
            resolution=resolution,
            fps=fps,
            noise_level=noise_level,
            seed=seed,
        )
        if not min_distance < mean_distance < max_distance:
            raise ConfigurationError(
                "require min_distance < mean_distance < max_distance")
        base = _ou_process(
            num_frames,
            mean=mean_distance,
            reversion=0.005,
            volatility=0.35,
            seed=seed ^ 0xD15,
        )
        # Close-approach episodes: smooth negative bumps toward the
        # minimum distance, the "dangerous tailgating moments".
        rng = np.random.default_rng((seed, 0xE915))
        t = np.arange(num_frames, dtype=np.float64)
        width = max(3.0, 0.01 * num_frames)
        for _ in range(num_episodes):
            center = rng.uniform(0.05, 0.95) * num_frames
            depth = rng.uniform(0.6, 1.0) * (mean_distance - min_distance)
            base -= depth * np.exp(-0.5 * ((t - center) / width) ** 2)
        # High-frequency jitter (road vibration, estimator noise): real
        # per-frame depth estimates are not silky smooth, and this
        # frame-level texture is what makes a frame-granular Top-K
        # well-posed.
        jitter = _ou_process(
            num_frames, mean=0.0, reversion=0.5, volatility=0.35,
            seed=seed ^ 0x7177)
        self.distances = np.clip(
            base + jitter, min_distance, max_distance)
        self.min_distance = min_distance
        self.max_distance = max_distance
        height, width_px = self.resolution
        self._cx = width_px / 2.0
        self._cy = height * 0.6
        # Scrolling road/scenery texture: dashcam footage is never
        # static, so consecutive frames genuinely differ and the
        # difference detector keeps per-frame resolution.
        self._scroll_speed = 0.8  # pixels per frame
        self._texture_period = max(4.0, height / 4.0)

    def _render(self, index: int) -> np.ndarray:
        scene = self._background.copy()
        yy, _ = self._grid
        phase = 2 * np.pi * (
            yy + self._scroll_speed * index) / self._texture_period
        scene = scene + 0.05 * np.sin(phase)
        distance = float(self.distances[index])
        # Apparent size scales inversely with distance.
        sigma = max(0.8, 18.0 / distance) * min(self.resolution) / 24.0
        scene = scene + _blob(self._grid, self._cx, self._cy, sigma, 0.7)
        return scene

    def _truth(self, index: int) -> dict:
        return {"distance": float(self.distances[index])}

    def true_distance(self, index: int) -> float:
        return float(self.distances[self._check_index(index)])


class SentimentVideo(SyntheticVideo):
    """A vlog-like video scored by per-frame happiness in ``[0, 1]``.

    Happiness is a logistic-squashed OU path; rendering maps happiness
    to overall brightness plus a fixed "face" pattern whose intensity
    tracks the signal, so pixels predict the score.
    """

    signal_key = "happiness"

    def __init__(
        self,
        name: str = "vlog",
        num_frames: int = 3_000,
        *,
        resolution: Tuple[int, int] = (24, 24),
        fps: float = 30.0,
        noise_level: float = 0.004,
        seed: int = 0,
    ):
        super().__init__(
            name,
            num_frames,
            resolution=resolution,
            fps=fps,
            noise_level=noise_level,
            seed=seed,
        )
        latent = _ou_process(
            num_frames,
            mean=0.0,
            reversion=0.004,
            volatility=0.08,
            seed=seed ^ 0x5E17,
        )
        self.happiness = 1.0 / (1.0 + np.exp(-latent))
        height, width = self.resolution
        self._pattern = _blob(
            self._grid, width * 0.5, height * 0.4,
            max(1.5, min(height, width) / 8.0), 1.0,
        )

    def _render(self, index: int) -> np.ndarray:
        h = float(self.happiness[index])
        return self._background + 0.25 * h + 0.4 * h * self._pattern

    def _truth(self, index: int) -> dict:
        return {"happiness": float(self.happiness[index])}

    def true_happiness(self, index: int) -> float:
        return float(self.happiness[self._check_index(index)])
