"""Video substrate: synthetic videos, dataset registry, difference detection.

The paper evaluates on hours-long real videos decoded with Decord. This
environment has neither the videos nor a decoder, so the substrate
provides deterministic, seeded *scene simulators* whose rendered pixels
are noisy-but-predictive evidence of a ground-truth signal (object
count, lead-vehicle distance, happiness). See DESIGN.md §1 for why the
substitution preserves the behaviour Everest's algorithms depend on.
"""

from .frame import BoundingBox, Frame
from .synthetic import (
    DashcamVideo,
    ObjectCountProcess,
    SentimentVideo,
    SyntheticVideo,
    TrafficVideo,
)
from .datasets import DATASETS, DatasetSpec, build_dataset, dataset_table
from .visual_road import visual_road_video, visual_road_suite
from .diff import DifferenceDetector, DiffResult
from .reader import VideoReader
from .streaming import Segment, StreamingVideo
from .views import ConcatVideo, VideoSlice

__all__ = [
    "BoundingBox",
    "Frame",
    "ObjectCountProcess",
    "SyntheticVideo",
    "TrafficVideo",
    "DashcamVideo",
    "SentimentVideo",
    "DATASETS",
    "DatasetSpec",
    "build_dataset",
    "dataset_table",
    "visual_road_video",
    "visual_road_suite",
    "DifferenceDetector",
    "DiffResult",
    "VideoReader",
    "Segment",
    "StreamingVideo",
    "ConcatVideo",
    "VideoSlice",
]
