"""Video reader with caching and priority prefetching (paper Section 3.5).

Decoding frames from disk is a real cost in Everest: the scan baseline
reads sequentially (easy to prefetch) whereas Phase 2's cleaning reads
in ψ-priority order. The paper prefetches batches of frames with the
highest ψ while the GPU computes. This reader reproduces the mechanism:

* every *cold* read charges decode latency to the cost model;
* :meth:`set_priority_order` declares the expected future access order;
* :meth:`prefetch` warms the cache along that order, so later reads are
  cache hits (charged once, at prefetch time — modelling overlap of
  decode with compute).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .synthetic import SyntheticVideo


class VideoReader:
    """LRU-cached random-access reader over a synthetic video."""

    def __init__(
        self,
        video: SyntheticVideo,
        *,
        cache_size: int = 4_096,
        cost_model: Optional[object] = None,
        decode_cost_key: str = "decode",
    ):
        if cache_size < 1:
            raise ConfigurationError("cache_size must be >= 1")
        self.video = video
        self.cache_size = cache_size
        self.cost_model = cost_model
        self.decode_cost_key = decode_cost_key
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._priority: list = []
        self._priority_pos = 0
        self.cold_reads = 0
        self.cache_hits = 0

    def __len__(self) -> int:
        return len(self.video)

    def _charge_decode(self, num_frames: int) -> None:
        if self.cost_model is not None:
            self.cost_model.charge(self.decode_cost_key, num_frames)

    def _insert(self, index: int, pixels: np.ndarray) -> None:
        self._cache[index] = pixels
        self._cache.move_to_end(index)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def read(self, index: int) -> np.ndarray:
        """Read one frame's pixels, charging decode cost on a miss."""
        if index in self._cache:
            self.cache_hits += 1
            self._cache.move_to_end(index)
            return self._cache[index]
        self.cold_reads += 1
        self._charge_decode(1)
        pixels = self.video.pixels(index)
        self._insert(index, pixels)
        return pixels

    def read_batch(self, indices: Iterable[int]) -> np.ndarray:
        """Read several frames as an ``(N, H, W)`` float32 array."""
        indices = list(indices)
        if not indices:
            return np.zeros((0,) + self.video.resolution, dtype=np.float32)
        return np.stack([self.read(i) for i in indices]).astype(np.float32)

    def set_priority_order(self, order: Sequence[int]) -> None:
        """Declare the expected future access order (descending ψ)."""
        self._priority = list(order)
        self._priority_pos = 0

    def prefetch(self, count: int) -> int:
        """Warm the cache with the next ``count`` priority frames.

        Returns the number of frames actually decoded. Mirrors the
        paper's overlap of decode with oracle compute: batches with the
        highest ψ are fetched ahead of the cleaning loop.
        """
        fetched = 0
        while fetched < count and self._priority_pos < len(self._priority):
            index = self._priority[self._priority_pos]
            self._priority_pos += 1
            if index in self._cache:
                continue
            self.cold_reads += 1
            self._charge_decode(1)
            self._insert(index, self.video.pixels(index))
            fetched += 1
        return fetched

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cold_reads
        return self.cache_hits / total if total else 0.0
