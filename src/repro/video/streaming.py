"""Appendable frame sources: the growing-video abstraction.

A :class:`StreamingVideo` wraps any closed frame source — a
:class:`~repro.video.synthetic.SyntheticVideo` subclass, a
:func:`~repro.video.datasets.build_dataset` stand-in, a Visual-Road
suite member — and exposes only a *prefix* of it. The wrapped source
plays the role of the future: frames beyond the **watermark** exist in
the simulator but have not "arrived" yet, and every read is
bounds-checked against the watermark, so downstream code (Phase 1,
cleaning, metrics) physically cannot peek ahead.

``append(num_frames)`` advances the watermark, revealing the next
frames of the source and recording one :class:`Segment` per append —
the unit the incremental Phase-1 maintainer re-scores and the live
top-k maintainer re-certifies. Because the source is deterministic,
frame ``i`` of a streaming video is bit-identical to frame ``i`` of
the closed source, which is what makes live answers comparable (and,
with a pinned training prefix, bit-identical) to batch re-runs.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..errors import ConfigurationError, VideoError
from .frame import BoundingBox, Frame
from .synthetic import SyntheticVideo


def window_frames_for(seconds: float, fps: float) -> int:
    """Sliding-window length in frames for ``seconds`` of video.

    The single rounding rule shared by every layer (query builder,
    windowed view, corpus clause), so a window given in seconds always
    resolves to the same frame count on both the live and the batch
    side of an equivalence check.
    """
    if isinstance(seconds, bool) or not isinstance(seconds, numbers.Real) \
            or not float(seconds) > 0.0 \
            or not float(seconds) < float("inf"):
        raise ConfigurationError(
            f"window seconds must be a positive finite number, "
            f"got {seconds!r}")
    return max(1, int(round(float(seconds) * float(fps))))


@dataclass(frozen=True)
class Segment:
    """One append: frames ``[start, end)`` arrived together."""

    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ConfigurationError(
                f"segment [{self.start}, {self.end}) is empty or negative")

    @property
    def num_frames(self) -> int:
        return self.end - self.start


class StreamingVideo(SyntheticVideo):
    """A growing prefix view over a closed, deterministic source.

    The view is itself a :class:`SyntheticVideo` — ``len()``, ``frame``,
    ``pixels``, ``batch_pixels`` and ``truth_array`` all work — but its
    length is the current watermark and grows with :meth:`append`.
    ``snapshot()`` freezes the current prefix into a sealed view for
    batch reference runs.
    """

    def __init__(
        self,
        source: SyntheticVideo,
        initial_frames: int,
        *,
        sealed: bool = False,
    ):
        if isinstance(source, StreamingVideo):
            raise ConfigurationError(
                "cannot nest StreamingVideo views; wrap the closed source")
        if not 1 <= initial_frames <= len(source):
            raise ConfigurationError(
                f"initial_frames must be in [1, {len(source)}], "
                f"got {initial_frames}")
        super().__init__(
            source.name,
            initial_frames,
            resolution=source.resolution,
            fps=source.fps,
            noise_level=source.noise_level,
            seed=source.seed,
        )
        self.source = source
        self.signal_key = source.signal_key
        self.sealed = bool(sealed)
        self._segments: List[Segment] = [
            Segment(index=0, start=0, end=initial_frames)]

    # ------------------------------------------------------------------
    # Watermark / segment bookkeeping
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Frames that have arrived so far (== ``len(self)``)."""
        return self.num_frames

    @property
    def remaining(self) -> int:
        """Source frames not yet revealed."""
        return len(self.source) - self.num_frames

    @property
    def segments(self) -> List[Segment]:
        """Arrival history, bootstrap segment first."""
        return list(self._segments)

    def append(self, num_frames: int) -> Segment:
        """Reveal the next ``num_frames`` source frames.

        Returns the new :class:`Segment`. Raises
        :class:`~repro.errors.VideoError` on a sealed snapshot or when
        the source is exhausted.
        """
        if self.sealed:
            raise VideoError(
                f"video {self.name!r} is a sealed snapshot; "
                f"append to the live stream instead")
        if num_frames < 1:
            raise ConfigurationError("append needs num_frames >= 1")
        if num_frames > self.remaining:
            raise VideoError(
                f"source {self.name!r} has {self.remaining} frames left, "
                f"cannot append {num_frames}")
        start = self.num_frames
        self.num_frames = start + num_frames
        segment = Segment(
            index=len(self._segments), start=start, end=self.num_frames)
        self._segments.append(segment)
        return segment

    def append_until(self, watermark: int) -> Segment:
        """Advance to an absolute watermark (convenience for replays)."""
        return self.append(watermark - self.num_frames)

    def snapshot(self) -> "StreamingVideo":
        """A sealed copy of the current prefix (for batch reference runs)."""
        frozen = StreamingVideo(self.source, self.num_frames, sealed=True)
        frozen._segments = list(self._segments)
        return frozen

    # ------------------------------------------------------------------
    # Frame access: delegate to the source below the watermark, so every
    # read is bit-identical to the closed video's.
    # ------------------------------------------------------------------
    def pixels(self, index: int) -> np.ndarray:
        return self.source.pixels(self._check_index(index))

    def frame(self, index: int) -> Frame:
        return self.source.frame(self._check_index(index))

    def objects(self, index: int) -> List[BoundingBox]:
        return self.source.objects(self._check_index(index))

    def _render(self, index: int) -> np.ndarray:  # pragma: no cover
        return self.source._render(index)

    def _truth(self, index: int) -> dict:
        return self.source._truth(index)

    def _objects(self, index: int) -> List[BoundingBox]:
        return self.source._objects(index)

    def truth_array(self, key: Optional[str] = None) -> np.ndarray:
        key = key or self.signal_key
        return np.asarray(
            [self.source._truth(i)[key] for i in range(self.num_frames)],
            dtype=np.float64,
        )

    def batch_pixels(self, indices: Iterable[int]) -> np.ndarray:
        indices = [self._check_index(i) for i in indices]
        return self.source.batch_pixels(indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "sealed" if self.sealed else "live"
        return (
            f"StreamingVideo({self.name!r}, watermark={self.num_frames}/"
            f"{len(self.source)}, segments={len(self._segments)}, {state})"
        )
