"""Visual-Road-style synthetic benchmark videos (paper Section 4.2.4).

The paper uses the Visual Road benchmark to control the *total number of
cars* in an otherwise identical scene, which is impossible with real
footage. We mirror that protocol: :func:`visual_road_suite` produces a
family of videos sharing one camera/scene seed where only the car
population differs (paper: 50 to 250 cars in the mini-city).

The paper could only generate 15-minute clips stably and concatenated
40 of them into each ten-hour video; we reproduce the concatenation by
re-seeding the count process per clip while keeping the scene constant.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .synthetic import ObjectCountProcess, TrafficVideo

#: The paper's car-population sweep.
PAPER_DENSITIES: Tuple[int, ...] = (50, 100, 150, 200, 250)

#: Number of concatenated clips per video (paper: 40 x 15 minutes).
PAPER_NUM_CLIPS = 40


class _ConcatenatedCountProcess(ObjectCountProcess):
    """Counts formed by concatenating independently seeded clips."""

    def __init__(
        self,
        num_frames: int,
        *,
        num_clips: int,
        seed: int,
        max_objects: int,
        **kwargs,
    ):
        if num_clips < 1:
            raise ConfigurationError("num_clips must be >= 1")
        # Build via the parent to validate args, then overwrite counts.
        super().__init__(
            num_frames, seed=seed, max_objects=max_objects, **kwargs)
        clip_len = max(1, num_frames // num_clips)
        pieces: List[np.ndarray] = []
        produced = 0
        clip_index = 0
        while produced < num_frames:
            length = min(clip_len, num_frames - produced)
            clip = ObjectCountProcess(
                length,
                seed=(seed, clip_index),
                max_objects=max_objects,
                **kwargs,
            )
            pieces.append(clip.counts)
            produced += length
            clip_index += 1
        self.counts = np.concatenate(pieces)[:num_frames]


def visual_road_video(
    total_cars: int,
    *,
    num_frames: int = 10_000,
    resolution: Tuple[int, int] = (24, 24),
    fps: float = 30.0,
    scene_seed: int = 7,
    num_clips: int = PAPER_NUM_CLIPS,
) -> TrafficVideo:
    """One Visual-Road-style video with ``total_cars`` in the mini-city.

    Only a fraction of the city's cars pass the fixed camera at any
    moment; the per-frame visible count scales with the population
    while the camera, angle, and object trajectories (``scene_seed``)
    stay identical across the sweep, as in the paper.
    """
    if total_cars < 1:
        raise ConfigurationError("total_cars must be >= 1")
    visible_mean = total_cars / 50.0  # ~1 visible car per 50 in the city
    max_visible = max(4, int(np.ceil(visible_mean * 4)))
    counts = _ConcatenatedCountProcess(
        num_frames,
        num_clips=num_clips,
        seed=scene_seed ^ (total_cars * 2654435761),
        base_level=visible_mean,
        burst_amplitude=2.0 * visible_mean,
        num_bursts=5,
        max_objects=max_visible,
    )
    return TrafficVideo(
        f"visual-road-{total_cars}",
        num_frames,
        object_label="car",
        resolution=resolution,
        fps=fps,
        seed=scene_seed,  # same scene/camera for every density
        count_process=counts,
    )


def visual_road_suite(
    densities: Sequence[int] = PAPER_DENSITIES,
    *,
    num_frames: int = 10_000,
    resolution: Tuple[int, int] = (24, 24),
    scene_seed: int = 7,
) -> List[TrafficVideo]:
    """The full density sweep used by Figure 8."""
    return [
        visual_road_video(
            cars,
            num_frames=num_frames,
            resolution=resolution,
            scene_seed=scene_seed,
        )
        for cars in densities
    ]
