"""The multi-tenant concurrent query service (DESIGN.md §8).

:class:`QueryService` is the front door for many queries in flight at
once::

    with QueryService(workers=4) as service:
        session = service.open_session("traffic", "count[car]",
                                       num_frames=2_000, seed=1,
                                       config=EverestConfig.fast())
        futures = [
            service.submit(session.query().topk(k).guarantee(0.9),
                           tenant="alice")
            for k in (5, 10, 25)
        ]
        reports = service.gather(futures)

Submissions return :class:`~repro.service.scheduler.QueryFuture`
handles immediately; a :class:`~repro.service.scheduler.FairScheduler`
applies admission control and per-tenant oracle-budget fairness, and
execution lands on either lane of :mod:`repro.service.backend`.
Cross-query optimization comes from the shared
:class:`~repro.service.artifacts.SharedArtifacts` layer: single-flight
Phase-1 builds, a bounded per-group score cache that turns one query's
cleaned tuples into every later query's warm start, and a warm-start
checkpoint tier.

Determinism contract: every submitted plan is normalized to
``deterministic_timing`` (exactly like the sweep runner), after which
service reports are **bit-identical** to plain serial ``Session``
execution — the differential harness certifies it. Ledger semantics
are per query: each report's Phase 2 charges land in their own ledger,
:meth:`merged_cost` adds each distinct Phase-1 ledger exactly once.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api.executor import ExecutionDetail, QueryExecutor
from ..api.plan import QueryPlan
from ..api.query import Query
from ..api.session import Session, phase1_key
from ..core.result import QueryReport
from ..errors import QueryError, ServiceClosedError, ServiceError
from ..oracle.cost import CostModel, merge_cost_models
from ..parallel.pool import PersistentPool, available_cpus, resolve_workers
from ..trace import Tracer, activate
from .artifacts import SharedArtifacts, group_key
from .backend import make_spec_blob, run_batch_in_pool
from .scheduler import FairScheduler, JobOutcome, QueryFuture


@dataclass
class ServiceStats:
    """A typed snapshot of service health counters.

    The export surface behind ``GET /metrics`` and ``GET /stats`` on
    the gateway (DESIGN.md §10): scheduler throughput counters
    (including per-tenant admission rejections, keyed by the
    :class:`~repro.errors.AdmissionError` reason code), shared-artifact
    cache effectiveness, and per-tenant fairness charges. Mapping-style
    ``stats["builds"]`` access is kept for existing callers.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Refused submissions (admission control / closed service).
    rejected: int = 0
    pending: int = 0
    workers: int = 0
    use_processes: bool = False
    # Shared-artifact layer (ArtifactStats plus registry sizes).
    builds: int = 0
    hits: int = 0
    single_flight_waits: int = 0
    warm_hits: int = 0
    warm_writes: int = 0
    evictions: int = 0
    resident_entries: int = 0
    score_cache_groups: int = 0
    cached_scores: int = 0
    #: Simulated seconds paid across every Phase-1 build incl. rebuilds.
    build_seconds: float = 0.0
    # Cost-based optimizer (DESIGN.md §11).
    #: The scheduler's ordering policy: ``"fifo"`` or ``"cost"``.
    ordering: str = "fifo"
    #: Queries submitted through a WorkloadPlan (submit_plan).
    planned: int = 0
    #: Completed queries with an estimated-vs-actual calibration pair.
    calibration_observed: int = 0
    #: Sum of predicted Phase-2 ledger seconds over observed queries.
    estimated_seconds: float = 0.0
    #: Sum of actual Phase-2 ledger seconds over the same queries.
    actual_seconds: float = 0.0
    #: Mean |estimated - actual| / actual over observed queries.
    calibration_error: float = 0.0
    #: tenant -> accumulated fairness charge (oracle seconds).
    tenants: Dict[str, float] = field(default_factory=dict)
    #: tenant -> reason code -> refused submissions.
    rejections: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Summaries of the most recently completed traces, newest first
    #: (empty with the no-op tracer). See DESIGN.md §12.
    recent_traces: List[Dict[str, object]] = field(default_factory=list)

    @property
    def phase1_hit_rate(self) -> float:
        """Fraction of Phase-1 leases served from the shared store."""
        served = self.hits + self.builds + self.warm_hits
        if served == 0:
            return 0.0
        return (self.hits + self.warm_hits) / served

    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (nested tenant maps copied)."""
        data = dataclasses.asdict(self)
        data["phase1_hit_rate"] = self.phase1_hit_rate
        return data

    def to_json(self, **dumps_kwargs) -> str:
        """Serialize the snapshot to a JSON string."""
        return json.dumps(self.as_dict(), **dumps_kwargs)

    # -- mapping-style compatibility -----------------------------------
    def __getitem__(self, key: str):
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and hasattr(self, key)

    def get(self, key: str, default=None):
        return getattr(self, key, default)


@dataclass
class QueryOutcome:
    """One completed query: its report, ledger and physical cost."""

    tenant: str
    report: QueryReport
    phase2_cost: CostModel
    #: Physical (cache-miss) confirmations; equals the report's
    #: confirmation count only when nothing was shared.
    fresh_confirm_calls: Optional[int]
    #: Submission order (ties ledger merging to a canonical order).
    seq: int = 0


@dataclass(frozen=True)
class _QueryTask:
    """Scheduler payload for one submitted plan."""

    session: Session
    plan: QueryPlan
    tenant: str
    seq: int
    #: The query's :class:`~repro.trace.Trace` (None when tracing off).
    trace: object = None


@dataclass(frozen=True)
class _StreamTask:
    """Scheduler payload for one streaming append's refresh pass."""

    refresh: object  # zero-arg callable -> (reports, first error)
    session: object
    trace: object = None


@dataclass(frozen=True)
class _CorpusTask:
    """Scheduler payload for one federated corpus query."""

    query: object  # repro.corpus.query.CorpusQuery
    tenant: str
    seq: int
    trace: object = None


class QueryService:
    """Accepts many concurrent queries and optimizes across them.

    Parameters
    ----------
    workers:
        Concurrent executions (scheduler threads; also the process
        pool's size). Defaults through ``REPRO_WORKERS``.
    use_processes:
        Ship Phase 2 to a persistent process pool. Default: automatic
        — on when more than one worker *and* more than one usable CPU.
    max_pending:
        Admission-control bound on queued (not yet running) queries.
    max_batch:
        Same-artifact queries dispatched as one batch.
    artifact_entries / score_cache_entries:
        LRU bounds for the shared artifact layer.
    warm_dir:
        Optional checkpoint directory for the warm-start tier.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        use_processes: Optional[bool] = None,
        max_pending: Optional[int] = 256,
        max_batch: int = 8,
        artifact_entries: Optional[int] = None,
        score_cache_entries: Optional[int] = None,
        warm_dir=None,
        start_method: Optional[str] = None,
        ordering: str = "fifo",
        estimator=None,
        tracer=None,
    ):
        if ordering not in ("fifo", "cost"):
            raise ServiceError(
                f"ordering must be 'fifo' or 'cost', got {ordering!r}")
        # Per-query tracing (DESIGN.md §12): defaults through
        # REPRO_TRACE to the shared no-op tracer, which costs nothing.
        self.tracer = tracer if tracer is not None else Tracer.from_env()
        self.workers = resolve_workers(workers)
        if use_processes is None:
            use_processes = self.workers > 1 and available_cpus() > 1
        self.use_processes = bool(use_processes)
        self.ordering = ordering
        self.artifacts = SharedArtifacts(
            max_entries=artifact_entries,
            score_cache_entries=score_cache_entries,
            warm_dir=warm_dir,
        )
        self._pool = PersistentPool(
            self.workers, start_method=start_method) \
            if self.use_processes else None
        self._lock = threading.Lock()
        self._submit_seq = itertools.count()
        self._outcomes: List[QueryOutcome] = []
        self._sessions: Dict[int, Session] = {}
        self._spec_blobs: Dict[tuple, bytes] = {}
        self._spec_ids: Dict[tuple, int] = {}
        #: Frame ids already shipped to the pool per spec_id, so each
        #: batch carries only the score-cache delta.
        self._shipped_scores: Dict[int, set] = {}
        #: Pool shard-scoring backends, one per submitted corpus.
        self._corpus_backends: Dict[int, object] = {}
        self._closed = False
        self._planned = 0
        # The cost estimator calibrates online from completed queries;
        # with a warm tier configured its history persists alongside
        # the Phase-1 checkpoints (saved on close, loaded on start).
        self._estimator = estimator
        if self._estimator is None and ordering == "cost":
            from ..optimizer import CostEstimator

            path = None
            if warm_dir is not None:
                from pathlib import Path

                path = Path(warm_dir) / "cost_estimator"
            self._estimator = CostEstimator(path=path)
        policy = None
        if ordering == "cost":
            from ..optimizer import CostOrderedPolicy

            policy = CostOrderedPolicy(self._task_cost)
        self._scheduler = FairScheduler(
            self._run_batch,
            workers=self.workers,
            max_pending=max_pending,
            max_batch=max_batch,
            policy=policy,
        )

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        video,
        scoring,
        *,
        config=None,
        unit_costs=None,
        **video_kwargs,
    ) -> Session:
        """A :class:`Session` wired into the shared artifact layer.

        Accepts objects or registry names like :meth:`Session.open`.
        The session's Phase-1 builds go through the single-flight
        store and its executors confirm through the service-scope
        score cache — including direct ``session.execute(...)`` calls
        that never touch the scheduler.
        """
        self._check_open()
        session = Session.open(
            video, scoring,
            config=config, unit_costs=unit_costs, **video_kwargs)
        return self.adopt_session(session)

    def adopt_session(self, session: Session) -> Session:
        """Bind an existing batch session to the shared artifact layer."""
        self._check_open()
        group = group_key(session.video, session.scoring)
        session.bind_service(
            self.artifacts, self.artifacts.score_cache(group))
        with self._lock:
            self._sessions[id(session)] = session
        return session

    def open_stream(
        self,
        video,
        scoring,
        *,
        initial_frames: Optional[int] = None,
        tenant: str = "stream",
        **kwargs,
    ):
        """Open a streaming session whose state the service hosts.

        The session's per-append subscription refreshes dispatch
        through the scheduler (admission + fairness against batch
        tenants), and its score / block-inference caches come from the
        shared artifact layer, so a later stream over the same (video,
        UDF, config) warm-starts instead of re-inferring. Accepts
        objects or registry names like :meth:`Session.open_stream`.
        """
        self._check_open()
        from ..api.registry import resolve_udf, resolve_video

        video_kwargs = kwargs.pop("video_kwargs", None) or {}
        if isinstance(video, str):
            video = resolve_video(video, **video_kwargs)
        elif video_kwargs:
            raise QueryError(
                "video_kwargs needs a registry name, not a video object")
        if isinstance(scoring, str):
            scoring = resolve_udf(scoring)
        stream = Session.open_stream(
            video, scoring, initial_frames=initial_frames,
            score_cache=self.artifacts.score_cache(
                group_key(video, scoring)),
            **kwargs)
        return self.attach_stream(stream, tenant=tenant)

    def attach_stream(self, stream, *, tenant: str = "stream"):
        """Route a streaming session's refreshes through the scheduler.

        Each ``append()`` submits one refresh pass as a scheduled job
        under ``tenant`` — admission control applies, and the physical
        confirmation work it causes is charged to the tenant's
        fairness account. The pass itself runs in the scheduler's
        worker thread (streaming state is single-process), never on
        the process pool. The shared block-inference cache for the
        stream's artifact is installed so sibling streams reuse proxy
        inference.
        """
        self._check_open()
        from ..streaming.session import StreamingSession

        if not isinstance(stream, StreamingSession):
            raise QueryError(
                "attach_stream expects a StreamingSession; open one "
                "with Session.open_stream(...) or service.open_stream")
        artifact = (
            group_key(stream.video, stream.scoring),
            phase1_key(stream.config),
        )
        stream.share_inference_cache(self.artifacts.block_cache(artifact))

        def dispatch(refresh):
            trace, admission = self._begin_trace(
                "stream_refresh", tenant=tenant,
                video=stream.video.name, udf=stream.scoring.name)
            try:
                future = self._scheduler.submit(
                    _StreamTask(
                        refresh=refresh, session=stream, trace=trace),
                    tenant=tenant,
                    batch_key=None,
                )
            except BaseException as error:  # noqa: BLE001 - re-raised
                self._trace_refused(trace, admission, error)
                raise
            self._trace_submitted(trace, admission, future)
            return future.result()

        stream.refresh_dispatcher = dispatch
        with self._lock:
            self._sessions[id(stream)] = stream
        return stream

    # ------------------------------------------------------------------
    # Trace bookkeeping (DESIGN.md §12). Every submitted request gets a
    # root span in submit, an open "admission" span across the
    # scheduler handoff, an open "queue_wait" span closed when a worker
    # picks the job up, and a done-callback that finishes the trace —
    # so even refused, crashed, or abandoned queries yield a closed
    # root span. All of it no-ops (trace is None) with the null tracer.
    # ------------------------------------------------------------------
    def _begin_trace(self, name: str, **attrs):
        """A new trace with its admission span open (``(None, None)``
        when tracing is off)."""
        trace = self.tracer.begin(name, **attrs)
        if trace is None:
            return None, None
        return trace, trace.start_span("admission", category="scheduler")

    def _trace_submitted(self, trace, admission, future) -> None:
        """The request was queued: admission over, queue wait begins."""
        if trace is None:
            return
        admission.finish()
        trace.start_span("queue_wait", category="scheduler")
        future.trace_id = trace.trace_id
        tracer = self.tracer

        def _finish(done_future: QueryFuture) -> None:
            error = done_future._error
            tracer.finish(
                trace,
                status="ok" if error is None
                else f"error:{type(error).__name__}")

        future.add_done_callback(_finish)

    def _trace_refused(self, trace, admission, error) -> None:
        """The scheduler refused the request (admission / closed)."""
        if trace is None:
            return
        status = f"error:{type(error).__name__}"
        admission.finish(status=status)
        self.tracer.finish(trace, status=status)

    @staticmethod
    def _trace_pickup(task, **attrs):
        """Close the task's queue wait, open its execute span (or None)."""
        trace = task.trace
        if trace is None:
            return None
        trace.close_open("queue_wait")
        return trace.start_span("execute", category="service", attrs=attrs)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query,
        *,
        session: Optional[Session] = None,
        tenant: str = "default",
    ) -> QueryFuture:
        """Queue one query; returns a future for its report.

        ``query`` is a fluent :class:`~repro.api.query.Query` (its
        session is implied) or a compiled
        :class:`~repro.api.plan.QueryPlan` (pass ``session=``). Plans
        are normalized to deterministic timing so results are
        bit-identical to serial execution regardless of scheduling.
        Raises :class:`~repro.errors.AdmissionError` beyond
        ``max_pending`` and :class:`~repro.errors.ServiceClosedError`
        after :meth:`close`; either refusal lands in the per-tenant
        rejection counters :meth:`stats` reports.
        """
        if self._closed:
            self._scheduler.count_rejection(tenant, "closed")
            raise ServiceClosedError("query service is closed")
        from ..corpus.query import CorpusQuery

        if isinstance(query, CorpusQuery):
            return self._submit_corpus(query, tenant=tenant)
        if isinstance(query, Query):
            if session is None:
                session = query.session
            plan = query.plan()
        elif isinstance(query, QueryPlan):
            if session is None:
                raise QueryError(
                    "submitting a compiled QueryPlan needs session=...")
            plan = query
        else:
            raise QueryError(
                f"submit expects a Query or QueryPlan, got {query!r}")
        if not plan.deterministic_timing:
            plan = dataclasses.replace(plan, deterministic_timing=True)
        # Plain batch sessions are adopted on first submission so their
        # Phase-1 builds go single-flight through the shared store and
        # their confirmations hit the group score cache. Streaming
        # sessions keep their own incremental machinery (attach_stream
        # wires them in explicitly).
        if session.artifacts is None and not hasattr(session, "append"):
            self.adopt_session(session)
        with self._lock:
            self._sessions.setdefault(id(session), session)
        trace, admission = self._begin_trace(
            "query", tenant=tenant, video=plan.video_name,
            udf=plan.udf_name, k=plan.k, thres=plan.thres)
        task = _QueryTask(
            session=session, plan=plan, tenant=tenant,
            seq=next(self._submit_seq), trace=trace)
        batch_key = (id(session), phase1_key(plan.config))
        try:
            future = self._scheduler.submit(
                task, tenant=tenant, batch_key=batch_key)
        except BaseException as error:  # noqa: BLE001 - re-raised
            self._trace_refused(trace, admission, error)
            raise
        self._trace_submitted(trace, admission, future)
        return future

    def _submit_corpus(self, query, *, tenant: str) -> QueryFuture:
        """Queue one federated corpus query (DESIGN.md §9).

        Member sessions are adopted into the shared artifact layer on
        first submission, so per-shard Phase-1 builds go single-flight
        through the store and shard confirmations hit each member's
        group score cache. The federated Phase-2 loop itself runs on a
        scheduler worker; shard confirmation scoring fans out on the
        service's lane — pool workers when the process lane is up,
        threads otherwise. The lane cannot change a report byte.
        """
        corpus = query.corpus
        for member in corpus.members:
            if not member.streaming and member.session.artifacts is None:
                self.adopt_session(member.session)
        if not query._deterministic_timing:
            query = dataclasses.replace(query, _deterministic_timing=True)
        trace, admission = self._begin_trace(
            "corpus_query", tenant=tenant,
            shards=len(corpus.members), udf=corpus.scoring.name)
        task = _CorpusTask(
            query=query, tenant=tenant, seq=next(self._submit_seq),
            trace=trace)
        with self._lock:
            self._sessions.setdefault(id(corpus), corpus)
        try:
            future = self._scheduler.submit(
                task, tenant=tenant, batch_key=None)
        except BaseException as error:  # noqa: BLE001 - re-raised
            self._trace_refused(trace, admission, error)
            raise
        self._trace_submitted(trace, admission, future)
        return future

    def _corpus_backend(self, corpus):
        """The shard-scoring backend for this service's lane.

        Streaming members pin the inline backend for the same reason
        plain streaming submissions never ship to the pool: the pool
        memoizes a pickled snapshot of each member's video per worker,
        and a stream's watermark advances between appends — a worker
        would score against a stale (shorter) copy while the inline
        backend reads the live view.
        """
        if self._pool is None or \
                any(member.streaming for member in corpus.members):
            return None  # FederatedTopK builds its own thread backend
        from ..corpus.federated import PoolShardBackend

        with self._lock:
            backend = self._corpus_backends.get(id(corpus))
            if backend is None:
                backend = PoolShardBackend(
                    self._pool,
                    [member.video for member in corpus.members],
                    corpus.scoring,
                )
                self._corpus_backends[id(corpus)] = backend
        return backend

    def _run_corpus(self, task: "_CorpusTask") -> JobOutcome:
        from ..corpus.federated import FederatedTopK

        query = task.query
        exec_span = self._trace_pickup(
            task, lane="process" if self._pool is not None else "inline")
        try:
            with activate(exec_span):
                engine = FederatedTopK(
                    query.corpus,
                    shard_workers=self.workers,
                    backend=self._corpus_backend(query.corpus),
                )
                outcome = engine.execute_detailed(
                    query.plan(),
                    shard_budgets=query._shard_budget_list(),
                )
        except BaseException as error:  # noqa: BLE001 - to the future
            if exec_span is not None:
                exec_span.finish(status=f"error:{type(error).__name__}")
            return JobOutcome(error=error)
        record = QueryOutcome(
            tenant=task.tenant,
            report=outcome.report,
            phase2_cost=outcome.phase2_cost,
            fresh_confirm_calls=outcome.fresh_confirm_calls,
            seq=task.seq,
        )
        with self._lock:
            self._outcomes.append(record)
        if exec_span is not None:
            exec_span.set(
                fresh_confirm_calls=outcome.fresh_confirm_calls,
                sim_seconds_total=outcome.phase2_cost.total_seconds(),
            ).finish()
        return JobOutcome(
            value=outcome.report,
            charge=outcome.phase2_cost.seconds("oracle_confirm"),
        )

    def submit_many(
        self,
        queries: Sequence,
        *,
        session: Optional[Session] = None,
        tenant: str = "default",
    ) -> List[QueryFuture]:
        """Submit a sequence of queries/plans (one future each)."""
        return [
            self.submit(query, session=session, tenant=tenant)
            for query in queries
        ]

    def gather(
        self,
        futures: Sequence[QueryFuture],
        *,
        timeout: Optional[float] = None,
    ) -> List[QueryReport]:
        """Reports for ``futures`` in submission order (blocking)."""
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    # Cost-based workload planning (DESIGN.md §11)
    # ------------------------------------------------------------------
    def estimator(self):
        """The service's :class:`~repro.optimizer.estimator.CostEstimator`.

        Created on first use when the service was not constructed with
        one (``ordering="cost"`` constructs it eagerly).
        """
        if self._estimator is None:
            from ..optimizer import CostEstimator

            self._estimator = CostEstimator()
        return self._estimator

    def plan_workload(
        self,
        queries: Sequence,
        *,
        session: Optional[Session] = None,
    ):
        """Plan a set of pending submissions cheapest-first.

        Returns a :class:`~repro.optimizer.planner.WorkloadPlan`:
        execution order, per-query cost predictions and lane choices,
        with same-artifact queries grouped so cache-warming queries
        run before the queries they warm. ``plan.explain()`` renders
        the decisions; :meth:`submit_plan` executes them.
        """
        self._check_open()
        from ..optimizer import WorkloadPlanner

        planner = WorkloadPlanner(self.estimator(), artifacts=self.artifacts)
        return planner.plan(
            queries, session=session, pool_available=self._pool is not None)

    def submit_plan(
        self,
        workload_plan,
        *,
        tenant: str = "default",
    ) -> List[QueryFuture]:
        """Submit a planned workload in its planned order.

        Returns futures aligned with the *original* submission list
        the plan was built from (``futures[i]`` answers ``queries[i]``
        no matter where the planner scheduled it).
        """
        futures: List[Optional[QueryFuture]] = \
            [None] * len(workload_plan.items)
        for item in workload_plan.items:
            futures[item.index] = self.submit(
                item.plan, session=item.session, tenant=tenant)
        with self._lock:
            self._planned += len(workload_plan.items)
        return futures  # type: ignore[return-value]

    def _predict(self, session: Session, plan: QueryPlan):
        """Estimate one task's cost under the current shared state."""
        from .artifacts import artifact_digest

        group = group_key(session.video, session.scoring)
        key = phase1_key(plan.config)
        artifact = (group, key)
        warm = session.phase1_cached(key=key) \
            or self.artifacts.resident(artifact)
        cache = session.shared_score_cache
        coverage = 0.0
        if cache is not None and plan.num_tuples > 0:
            coverage = min(1.0, len(cache) / plan.num_tuples)
        pool_ok = self._pool is not None \
            and not hasattr(session, "append")
        return self._estimator.predict(
            plan,
            group=group,
            digest=artifact_digest(artifact),
            warm=warm,
            cache_coverage=coverage,
            pool_available=pool_ok,
        )

    def _task_cost(self, payload) -> float:
        """The scheduler policy's pricing hook (physical seconds).

        Stream refreshes and corpus jobs price as 0.0 — they keep
        plain FIFO semantics within their tenant.
        """
        if not isinstance(payload, _QueryTask) or self._estimator is None:
            return 0.0
        return self._predict(
            payload.session, payload.plan).physical_seconds

    # ------------------------------------------------------------------
    # Execution (called on scheduler worker threads)
    # ------------------------------------------------------------------
    def _run_batch(self, payloads) -> List[JobOutcome]:
        first = payloads[0]
        if isinstance(first, _StreamTask):
            # Stream refreshes are submitted with batch_key=None, so
            # they arrive one per batch.
            return [self._run_stream(task) for task in payloads]
        if isinstance(first, _CorpusTask):
            # Corpus queries likewise arrive one per batch.
            return [self._run_corpus(task) for task in payloads]
        return self._run_queries(list(payloads))

    def _run_stream(self, task: _StreamTask) -> JobOutcome:
        exec_span = self._trace_pickup(task, lane="inline")
        before = task.session.stats.fresh_confirm_calls
        try:
            with activate(exec_span):
                value = task.refresh()
        except BaseException as error:  # noqa: BLE001 - to the future
            if exec_span is not None:
                exec_span.finish(status=f"error:{type(error).__name__}")
            return JobOutcome(error=error)
        confirm_unit = task.session.resolved_unit_costs() \
            .get("oracle_confirm", 0.0)
        fresh = task.session.stats.fresh_confirm_calls - before
        if exec_span is not None:
            exec_span.set(fresh_confirm_calls=fresh).finish()
        return JobOutcome(value=value, charge=fresh * confirm_unit)

    def _run_queries(self, tasks: List[_QueryTask]) -> List[JobOutcome]:
        from .artifacts import artifact_digest

        session = tasks[0].session
        outcomes: List[JobOutcome] = []
        estimator = self._estimator
        exec_spans = [
            self._trace_pickup(task, batch_size=len(tasks))
            for task in tasks
        ]
        # Predict before touching the shared store: the estimator must
        # see the same warm/cold state the policy priced, so the
        # calibration pair reflects the decision actually made.
        predictions = None
        if estimator is not None:
            try:
                predictions = [
                    self._predict(task.session, task.plan)
                    for task in tasks
                ]
            except Exception:  # noqa: BLE001 - prediction is advisory
                predictions = None
        # Phase 1 first: single-flight through the shared store (the
        # batch shares one artifact by construction of batch_key).
        # Each lease runs under its task's execute span, so the build
        # (or wait) lands in the paying query's trace while batchmates
        # record cache hits.
        try:
            entries = []
            for task, exec_span in zip(tasks, exec_spans):
                with activate(exec_span):
                    entries.append(
                        (task.plan.config,
                         session.phase1(task.plan.config)))
        except BaseException as error:  # noqa: BLE001 - to the futures
            for exec_span in exec_spans:
                if exec_span is not None:
                    exec_span.finish(
                        status=f"error:{type(error).__name__}")
            return [JobOutcome(error=error) for _ in tasks]
        group = group_key(session.video, session.scoring)
        if estimator is not None and entries:
            # One artifact per batch by construction of batch_key.
            estimator.observe_build(
                artifact_digest((group, phase1_key(tasks[0].plan.config))),
                entries[0][1].cost_model,
            )

        details: List[Optional[ExecutionDetail]] = []
        errors: List[Optional[BaseException]] = []
        # Streaming sessions always execute inline: the process lane
        # memoizes a pickled snapshot of the session per spec_id, and a
        # stream's video advances between appends — a worker would
        # answer over a stale watermark while the inline lane answers
        # over the live one. Batch sessions are immutable snapshots, so
        # only they may ship. The estimator can route a batch whose
        # predicted Phase-2 work does not clear the pool's observed
        # overhead back inline (lane never changes report bytes).
        use_pool = self._pool is not None and not hasattr(session, "append")
        if use_pool and predictions is not None:
            use_pool = any(p.lane == "process" for p in predictions)
        lane = "process" if use_pool else "inline"
        traced = any(span is not None for span in exec_spans)
        started = time.perf_counter()
        if use_pool:
            lane_spans = [
                None if span is None else task.trace.start_span(
                    "lane_dispatch", category="service",
                    parent=span, attrs={"lane": "process"})
                for task, span in zip(tasks, exec_spans)
            ]
            try:
                result = self._execute_remote(
                    session, [task.plan for task in tasks], entries,
                    traced=traced)
                details = list(result.details)
                errors = [None] * len(details)
                # Re-parent worker-side spans under each query's
                # lane-dispatch span (rebased to the parent clock).
                for task, lane_span, dumps in zip(
                        tasks, lane_spans,
                        result.spans or [None] * len(tasks)):
                    if lane_span is not None and dumps:
                        task.trace.adopt(dumps, parent=lane_span)
            except BaseException as error:  # noqa: BLE001
                details = [None] * len(tasks)
                errors = [error] * len(tasks)
            finally:
                for lane_span in lane_spans:
                    if lane_span is not None:
                        lane_span.finish()
        else:
            executor = QueryExecutor(session, workers=1)
            for task, exec_span in zip(tasks, exec_spans):
                try:
                    with activate(exec_span):
                        details.append(
                            executor.execute_detailed(task.plan))
                    errors.append(None)
                except BaseException as error:  # noqa: BLE001
                    details.append(None)
                    errors.append(error)
        elapsed = time.perf_counter() - started
        per_query_wall = elapsed / len(tasks) if tasks else 0.0

        for index, (task, detail, error) in enumerate(
                zip(tasks, details, errors)):
            exec_span = exec_spans[index]
            if error is not None or detail is None:
                if exec_span is not None:
                    exec_span.set(lane=lane).finish(
                        status=f"error:{type(error).__name__}"
                        if error is not None else "error:no-result")
                outcomes.append(JobOutcome(
                    error=error if error is not None
                    else ServiceError("query produced no result")))
                continue
            predicted = predictions[index] \
                if predictions is not None else None
            if estimator is not None:
                estimator.observe_query(
                    task.plan,
                    group=group,
                    phase2_cost=detail.phase2_cost,
                    wall_seconds=per_query_wall,
                    lane=lane,
                    predicted=predicted,
                )
            if exec_span is not None:
                # Estimated-vs-actual on the trace root: per-query
                # calibration error becomes inspectable in the export
                # (the estimate exists only under a cost estimator).
                task.trace.root.set(
                    actual_phase2_seconds=(
                        detail.phase2_cost.total_seconds()))
                if predicted is not None:
                    task.trace.root.set(
                        estimated_phase2_seconds=predicted.phase2_seconds,
                        estimated_lane=predicted.lane,
                    )
                exec_span.set(
                    lane=lane,
                    sim_seconds_total=detail.phase2_cost.total_seconds(),
                ).finish()
            outcome = QueryOutcome(
                tenant=task.tenant,
                report=detail.report,
                phase2_cost=detail.phase2_cost,
                fresh_confirm_calls=detail.fresh_confirm_calls,
                seq=task.seq,
            )
            with self._lock:
                self._outcomes.append(outcome)
            outcomes.append(JobOutcome(
                value=detail.report,
                charge=detail.phase2_cost.seconds("oracle_confirm"),
            ))
        return outcomes

    def _execute_remote(self, session, plans, entries, *, traced=False):
        key = (id(session), phase1_key(plans[0].config))
        with self._lock:
            blob = self._spec_blobs.get(key)
            if blob is None:
                blob = make_spec_blob(session, entries)
                self._spec_blobs[key] = blob
                self._spec_ids[key] = len(self._spec_ids)
            spec_id = self._spec_ids[key]
            shipped = self._shipped_scores.setdefault(spec_id, set())
        return run_batch_in_pool(
            self._pool,
            spec_id=spec_id,
            spec_blob=blob,
            plans=plans,
            shared_cache=session.shared_score_cache,
            shipped=shipped,
            traced=traced,
        )

    # ------------------------------------------------------------------
    # Accounting and introspection
    # ------------------------------------------------------------------
    def outcomes(self) -> List[QueryOutcome]:
        """Completed query outcomes, in completion order."""
        with self._lock:
            return list(self._outcomes)

    def merged_cost(self) -> CostModel:
        """One service-level ledger: Phase 1 once per key + every query.

        Mirrors :meth:`~repro.parallel.runner.SweepOutcome.merged_cost`:
        per-query Phase 2 ledgers merge key-wise and each distinct
        Phase-1 ledger is added exactly once, however many queries (or
        tenants) shared it. The merge order is canonical — Phase-1
        ledgers by artifact digest, Phase-2 by submission order — so
        the result is bit-identical run to run (float addition is not
        associative) and comparable against a serial reference merged
        the same way.
        """
        with self._lock:
            phase2 = [
                outcome.phase2_cost
                for outcome in sorted(self._outcomes, key=lambda o: o.seq)
            ]
        return merge_cost_models([*self.artifacts.phase1_ledgers(), *phase2])

    def tenant_charges(self) -> Dict[str, float]:
        """Accumulated fairness charge per tenant (oracle seconds)."""
        return self._scheduler.charges()

    def count_rejection(self, tenant: str, reason: str) -> None:
        """Record a submission refused *above* the service.

        The gateway counts its quota refusals (``"rate"`` /
        ``"max_inflight"``) here so :meth:`stats` carries one
        per-tenant rejection ledger across every backpressure layer —
        the reconciliation target for the metrics exporter.
        """
        self._scheduler.count_rejection(tenant, reason)

    def stats(self) -> ServiceStats:
        """A typed snapshot of service health counters.

        Returns a :class:`ServiceStats` (``to_json()``-able, with
        per-tenant admission-rejection counters); mapping-style access
        keeps working for callers written against the old dict.
        """
        snapshot = self.artifacts.snapshot()
        calibration = {}
        if self._estimator is not None:
            cal = self._estimator.calibration()
            calibration = dict(
                calibration_observed=cal.observed,
                estimated_seconds=cal.estimated_seconds,
                actual_seconds=cal.actual_seconds,
                calibration_error=cal.mean_abs_relative_error,
            )
        with self._lock:
            planned = self._planned
        return ServiceStats(
            submitted=self._scheduler.submitted,
            completed=self._scheduler.completed,
            failed=self._scheduler.failed,
            rejected=self._scheduler.rejected,
            pending=self._scheduler.pending(),
            workers=self.workers,
            use_processes=self.use_processes,
            tenants=self.tenant_charges(),
            rejections=self._scheduler.rejections(),
            ordering=self.ordering,
            planned=planned,
            recent_traces=self.tracer.summaries(limit=16),
            **calibration,
            **{key: snapshot[key] for key in (
                "builds", "hits", "single_flight_waits", "warm_hits",
                "warm_writes", "evictions", "resident_entries",
                "score_cache_groups", "cached_scores", "build_seconds")},
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("query service is closed")

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for all accepted work to finish. True on success."""
        return self._scheduler.drain(timeout)

    def close(self) -> None:
        """Stop accepting queries, finish accepted ones, free the pool."""
        if self._closed:
            return
        self._closed = True
        self._scheduler.close(wait=True)
        if self._pool is not None:
            self._pool.shutdown()
        if self._estimator is not None and self._estimator.path is not None:
            try:
                self._estimator.save()
            except Exception:  # noqa: BLE001 - persistence best-effort
                pass
        with self._lock:
            for session in self._sessions.values():
                if getattr(session, "refresh_dispatcher", None) is not None:
                    session.refresh_dispatcher = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lane = "processes" if self.use_processes else "threads"
        return (
            f"QueryService(workers={self.workers}, lane={lane}, "
            f"completed={self._scheduler.completed})"
        )
