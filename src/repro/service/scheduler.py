"""Admission, fairness, and dispatch for the query service.

:class:`FairScheduler` sits between ``QueryService.submit()`` and the
execution backends. It is deliberately generic — it moves opaque
payloads, the service supplies the ``run_batch`` callable that turns
them into results — so its three policies are testable in isolation:

* **Admission control.** At most ``max_pending`` payloads may be
  queued (running work does not count); a submission beyond that
  raises :class:`~repro.errors.AdmissionError` immediately instead of
  queueing without bound. A closed scheduler raises
  :class:`~repro.errors.ServiceClosedError`.
* **Per-tenant fairness.** Every tenant accumulates the *oracle
  charge* of its completed work (reported by ``run_batch``, in
  simulated oracle seconds). A free worker always serves the queued
  tenant with the smallest accumulated charge — deficit scheduling on
  the resource the paper actually meters — with FIFO order inside a
  tenant and arrival order breaking ties.
* **Batching.** When a worker picks a job it also drains immediately
  following jobs of the same tenant with the same ``batch_key`` (up
  to ``max_batch``), handing ``run_batch`` the whole list. The
  process backend turns this into one worker-pool round trip per
  batch instead of one per query.

Workers are threads; the heavy lifting inside ``run_batch`` either
releases the GIL (numpy kernels) or is shipped to the process pool by
the backend, so scheduler threads stay cheap.
"""

from __future__ import annotations

import copy
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..errors import AdmissionError, ServiceClosedError, ServiceError


class QueryFuture:
    """A handle to one submitted query's eventual report."""

    def __init__(self, seq: int, tenant: str):
        self.seq = seq
        self.tenant = tenant
        self._done = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None
        self._callback_lock = threading.Lock()
        self._callbacks: List[Callable[["QueryFuture"], None]] = []

    # -- producer side -------------------------------------------------
    def _resolve(self, value) -> None:
        self._value = value
        self._done.set()
        self._fire_callbacks()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()
        self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- consumer side -------------------------------------------------
    def add_done_callback(
        self, callback: Callable[["QueryFuture"], None]
    ) -> None:
        """Run ``callback(self)`` when the future resolves or fails.

        Fires immediately (in the calling thread) if already done;
        otherwise fires exactly once in the scheduler worker thread
        that finishes the job — the async gateway's completion hook,
        which is why futures never need polling threads. Callbacks
        must not block: they run on the worker that could be serving
        the next batch.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block for the result (raises what the query raised)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.seq} (tenant {self.tenant!r}) not done "
                f"after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.seq} (tenant {self.tenant!r}) not done "
                f"after {timeout}s")
        return self._error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"QueryFuture(seq={self.seq}, tenant={self.tenant!r}, {state})"


@dataclass
class Job:
    """One queued unit of work."""

    seq: int
    tenant: str
    batch_key: object
    payload: object
    future: QueryFuture


@dataclass
class JobOutcome:
    """What ``run_batch`` reports per job, aligned with its input.

    ``charge`` is the oracle cost (simulated seconds) this job added
    to its tenant's fairness account.
    """

    value: object = None
    error: Optional[BaseException] = None
    charge: float = 0.0


#: The service-supplied executor: payloads in, aligned outcomes out.
RunBatch = Callable[[Sequence[object]], List[JobOutcome]]


def _clone_error(error: BaseException) -> BaseException:
    """A private copy of ``error`` for one future in a failed batch.

    Every future of a failed batch used to share one exception
    *instance*; concurrent ``result()`` re-raises then mutated the
    shared ``__traceback__`` and cross-contaminated the tracebacks
    callers logged. Copies preserve type, ``args`` and attribute state
    (``copy.copy`` round-trips through ``__reduce_ex__``, the same
    path pickling uses) and inherit the original raise site's
    traceback, so each future re-raises independently. Falls back to
    the shared instance if the exception resists copying — worse
    tracebacks beat losing the error.
    """
    try:
        clone = copy.copy(error)
    except Exception:  # pragma: no cover - exotic uncopyable error
        return error
    if type(clone) is not type(error):  # pragma: no cover - odd __copy__
        return error
    clone.__traceback__ = error.__traceback__
    clone.__cause__ = error.__cause__
    clone.__context__ = error.__context__
    clone.__suppress_context__ = error.__suppress_context__
    return clone


class OrderingPolicy:
    """How a worker composes its next batch from a tenant's queue.

    The scheduler keeps cross-tenant fairness to itself (the deficit
    rule on accumulated charge is not pluggable — it is the service's
    isolation guarantee); what a policy *can* choose is which of the
    winning tenant's queued jobs run next and which ride along in the
    same batch. ``take_batch`` must remove the returned jobs from
    ``queue`` and return at least one job when the queue is non-empty.

    The default :class:`FifoPolicy` preserves submission order and
    batches only immediately adjacent same-``batch_key`` jobs; the
    cost-based optimizer (:mod:`repro.optimizer.policy`) reorders
    cheapest-first and gathers same-key jobs from anywhere in the
    queue.
    """

    def take_batch(
        self, queue: Deque[Job], max_batch: int
    ) -> List[Job]:  # pragma: no cover - interface
        raise NotImplementedError


class FifoPolicy(OrderingPolicy):
    """Submission order, adjacency-only batching (the default)."""

    def take_batch(self, queue: Deque[Job], max_batch: int) -> List[Job]:
        batch = [queue.popleft()]
        while (queue and len(batch) < max_batch
               and batch[0].batch_key is not None
               and queue[0].batch_key == batch[0].batch_key):
            batch.append(queue.popleft())
        return batch


class FairScheduler:
    """Thread-pool dispatch with admission and tenant fairness."""

    def __init__(
        self,
        run_batch: RunBatch,
        *,
        workers: int = 1,
        max_pending: Optional[int] = None,
        max_batch: int = 8,
        policy: Optional[OrderingPolicy] = None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ServiceError(
                f"max_pending must be None or >= 1, got {max_pending}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self._run_batch = run_batch
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.policy = policy if policy is not None else FifoPolicy()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[Job]] = {}
        self._charged: Dict[str, float] = {}
        self._pending = 0
        self._running = 0
        self._closed = False
        self._seq = itertools.count()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        #: tenant -> reason -> refused submissions (admission control
        #: and closed-service refusals; the raise carries the same
        #: reason code the counter is keyed by).
        self._rejections: Dict[str, Dict[str, int]] = {}
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        payload,
        *,
        tenant: str = "default",
        batch_key: object = None,
    ) -> QueryFuture:
        """Queue a payload; returns its future. May raise AdmissionError."""
        with self._lock:
            if self._closed:
                self._count_rejection(tenant, "closed")
                raise ServiceClosedError("scheduler is closed")
            if self.max_pending is not None and \
                    self._pending >= self.max_pending:
                self._count_rejection(tenant, "max_pending")
                raise AdmissionError(
                    f"{self._pending} queries already pending "
                    f"(max_pending={self.max_pending}); retry later",
                    reason="max_pending", tenant=tenant)
            future = QueryFuture(next(self._seq), tenant)
            job = Job(
                seq=future.seq, tenant=tenant,
                batch_key=batch_key, payload=payload, future=future)
            self._queues.setdefault(tenant, deque()).append(job)
            self._charged.setdefault(tenant, 0.0)
            self._pending += 1
            self.submitted += 1
            self._work_ready.notify()
            return future

    def _count_rejection(self, tenant: str, reason: str) -> None:
        """Record one refused submission (caller holds the lock)."""
        self.rejected += 1
        per_tenant = self._rejections.setdefault(tenant, {})
        per_tenant[reason] = per_tenant.get(reason, 0) + 1

    def count_rejection(self, tenant: str, reason: str) -> None:
        """Record a submission refused *before* reaching the scheduler.

        The service counts closed-service refusals here and the
        gateway counts quota refusals (``"rate"``/``"max_inflight"``),
        so one per-tenant rejection ledger covers every backpressure
        layer. Works on a closed scheduler — refusals after close are
        exactly the ones worth counting.
        """
        with self._lock:
            self._count_rejection(tenant, reason)

    def charges(self) -> Dict[str, float]:
        """Accumulated fairness charge per tenant (oracle seconds)."""
        with self._lock:
            return dict(self._charged)

    def rejections(self) -> Dict[str, Dict[str, int]]:
        """Refused submissions per tenant, keyed by reason code."""
        with self._lock:
            return {
                tenant: dict(reasons)
                for tenant, reasons in self._rejections.items()
            }

    def pending(self) -> int:
        with self._lock:
            return self._pending

    # ------------------------------------------------------------------
    def _next_batch(self) -> Optional[List[Job]]:
        """Pop the fairest next batch (caller holds the lock)."""
        best: Optional[str] = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            if best is None:
                best = tenant
                continue
            lhs = (self._charged[tenant], queue[0].seq)
            rhs = (self._charged[best], self._queues[best][0].seq)
            if lhs < rhs:
                best = tenant
        if best is None:
            return None
        queue = self._queues[best]
        batch = self.policy.take_batch(queue, self.max_batch)
        if not batch:  # pragma: no cover - policy contract violation
            raise ServiceError(
                f"{type(self.policy).__name__}.take_batch returned an "
                f"empty batch from a non-empty queue")
        self._pending -= len(batch)
        self._running += len(batch)
        return batch

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    batch = self._next_batch()
                    if batch is not None:
                        break
                    if self._closed:
                        return
                    self._work_ready.wait()
            self._finish(batch, self._execute(batch))

    def _execute(self, batch: List[Job]) -> List[JobOutcome]:
        try:
            outcomes = self._run_batch([job.payload for job in batch])
        except BaseException as error:  # noqa: BLE001 - forwarded to futures
            return self._spread_error(error, len(batch))
        if len(outcomes) != len(batch):  # pragma: no cover - backend bug
            error = ServiceError(
                f"run_batch returned {len(outcomes)} outcomes "
                f"for {len(batch)} jobs")
            return self._spread_error(error, len(batch))
        return outcomes

    @staticmethod
    def _spread_error(error: BaseException, count: int) -> List[JobOutcome]:
        """Fail a whole batch: the first future gets the original
        exception, every other future gets its own copy (see
        :func:`_clone_error`)."""
        return [
            JobOutcome(error=error if i == 0 else _clone_error(error))
            for i in range(count)
        ]

    def _finish(self, batch: List[Job], outcomes: List[JobOutcome]) -> None:
        with self._lock:
            for job, outcome in zip(batch, outcomes):
                self._charged[job.tenant] = \
                    self._charged.get(job.tenant, 0.0) + outcome.charge
                if outcome.error is not None:
                    self.failed += 1
                else:
                    self.completed += 1
        # Resolve outside the lock (result() callbacks must never be
        # able to deadlock against the scheduler) but BEFORE the batch
        # stops counting as running: drain() returning while futures
        # were still unresolved let a drained caller observe
        # done() == False and the gateway's add_done_callback result
        # capture miss its window.
        for job, outcome in zip(batch, outcomes):
            if outcome.error is not None:
                job.future._fail(outcome.error)
            else:
                job.future._resolve(outcome.value)
        with self._lock:
            self._running -= len(batch)
            self._idle.notify_all()

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued or running. True on success."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._pending == 0 and self._running == 0,
                timeout=timeout)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work; queued jobs still run to completion."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work_ready.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()
