"""Multi-tenant concurrent query service with cross-query sharing.

``QueryService`` accepts many queries at once (``submit``/``gather``
futures), schedules them with admission control and per-tenant
oracle-budget fairness, and optimizes *across* queries: single-flight
Phase-1 builds, a service-scope score cache that lets queries reuse
each other's cleaned tuples, and a warm-start checkpoint tier. See
DESIGN.md §8.
"""

from .artifacts import (
    ArtifactStats,
    SharedArtifacts,
    artifact_digest,
    group_key,
)
from .scheduler import FairScheduler, JobOutcome, QueryFuture
from .service import QueryOutcome, QueryService, ServiceStats

__all__ = [
    "ArtifactStats",
    "FairScheduler",
    "JobOutcome",
    "QueryFuture",
    "QueryOutcome",
    "QueryService",
    "ServiceStats",
    "SharedArtifacts",
    "artifact_digest",
    "group_key",
]
