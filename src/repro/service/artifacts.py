"""The service-scope shared artifact layer (DESIGN.md §8).

Everest's expensive state — Phase-1 artifacts (trained CMDN, diff
decisions, proxy mixtures, their ledger) and revealed exact scores —
is a pure function of ``(video, UDF, phase1 configuration)``. One
query paying for it should mean no concurrent or later query pays
again. :class:`SharedArtifacts` holds that state at *service* scope:

* **Single-flight Phase-1 builds.** ``lease()`` callers racing on the
  same :func:`~repro.api.session.phase1_key` block on one build; the
  winner's entry is shared by reference. Exactly one build per
  distinct key, no matter how many sessions, threads, or tenants ask.
* **Bounded LRU.** ``max_entries`` caps resident Phase-1 entries;
  evicted keys rebuild (or warm-load) on next use. Sessions pin the
  entries they have leased, so eviction bounds *service* memory
  without invalidating in-flight queries.
* **Warm-start tier.** With ``warm_dir`` set, built entries persist
  through the streaming artifact store
  (:mod:`repro.streaming.store`: pickled state + sha256-verified
  manifest), and a cold service warm-loads them instead of retraining.
  Ledgers ride along, so a warm-loaded entry charges exactly what its
  original build charged — Phase 1 has no wall-clock timers.
* **Score / inference cache registries.** One bounded
  :class:`~repro.oracle.cache.ScoreCache` and one streaming
  :class:`~repro.streaming.phase1_incremental.BlockInferenceCache`
  per artifact *group* (video content × UDF), shared by every session
  the service opens over that group.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.session import Phase1Entry, Phase1Key, build_phase1_entry
from ..errors import ConfigurationError, ServiceError
from ..oracle.cache import ScoreCache
from ..oracle.cost import CostModel
from ..trace import add_event, span as trace_span

#: Identity of the (video content, UDF) pair an artifact belongs to.
#: Synthetic videos are fully determined by (family, name, length,
#: seed); the UDF by its registered name.
GroupKey = Tuple[str, str, int, Optional[int], str]

#: Identity of one Phase-1 artifact: its group plus the explicit
#: (phase1, diff, seed) key.
ArtifactKey = Tuple[GroupKey, Phase1Key]


def group_key(video, scoring) -> GroupKey:
    """The artifact-group identity of a (video, scoring) pair.

    Streaming views are unwrapped to their closed source: the group
    names the underlying *content*, so a stream and a batch session
    over the same footage share one score cache, and the key does not
    drift as the stream's watermark advances.
    """
    while hasattr(video, "source"):
        video = video.source
    seed = getattr(video, "seed", None)
    return (
        type(video).__name__,
        str(video.name),
        len(video),
        None if seed is None else int(seed),
        str(scoring.name),
    )


def artifact_digest(key: ArtifactKey) -> str:
    """A stable filesystem-safe digest of an artifact key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]


@dataclass
class _Build:
    """One in-flight single-flight build."""

    done: threading.Event = field(default_factory=threading.Event)
    entry: Optional[Phase1Entry] = None
    error: Optional[BaseException] = None


@dataclass
class ArtifactStats:
    """Counters describing what the store did (monotonic)."""

    builds: int = 0
    hits: int = 0
    single_flight_waits: int = 0
    warm_hits: int = 0
    warm_writes: int = 0
    evictions: int = 0
    #: Simulated seconds paid across every build, *including* rebuilds
    #: of LRU-evicted keys — the physical Phase-1 spend, unlike the
    #: dedup'd ledger archive ``merged_cost`` folds.
    build_seconds: float = 0.0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class SharedArtifacts:
    """Service-scope Phase-1 entries and per-group caches."""

    def __init__(
        self,
        *,
        max_entries: Optional[int] = None,
        score_cache_entries: Optional[int] = None,
        warm_dir=None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be None or >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.score_cache_entries = score_cache_entries
        self.warm_dir = warm_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ArtifactKey, Phase1Entry]" = \
            OrderedDict()
        # Ledger archive: one Phase-1 ledger per key ever built or
        # warm-loaded, immune to LRU eviction (ledgers are tiny, and
        # merged_cost must keep charging evicted keys' builds). A
        # rebuild after eviction overwrites with bit-identical charges.
        self._ledgers: Dict[ArtifactKey, CostModel] = {}
        self._building: Dict[ArtifactKey, _Build] = {}
        self._score_caches: Dict[GroupKey, ScoreCache] = {}
        self._block_caches: Dict[ArtifactKey, object] = {}
        self.stats = ArtifactStats()

    # ------------------------------------------------------------------
    # Phase-1 entries
    # ------------------------------------------------------------------
    def lease(self, session, config, key: Phase1Key) -> Phase1Entry:
        """The shared Phase-1 entry for ``(session's group, key)``.

        Hit: returns the resident entry. Miss: exactly one caller
        builds (warm-loading first when a warm tier is configured)
        while every concurrent caller on the same key blocks and then
        shares the result. A failed build raises in every blocked
        caller and the key becomes buildable again.
        """
        artifact = (group_key(session.video, session.scoring), key)
        while True:
            with self._lock:
                entry = self._entries.get(artifact)
                if entry is not None:
                    self._entries.move_to_end(artifact)
                    self.stats.hits += 1
                    add_event(
                        "artifact_lease", outcome="hit",
                        digest=artifact_digest(artifact))
                    return entry
                build = self._building.get(artifact)
                if build is None:
                    build = _Build()
                    self._building[artifact] = build
                    break
                self.stats.single_flight_waits += 1
            with trace_span(
                    "artifact_wait", category="phase1",
                    digest=artifact_digest(artifact)):
                build.done.wait()
            if build.error is None:
                # The builder stored the entry before signalling; loop
                # to fetch it (and refresh its LRU position) normally.
                continue
            raise build.error

        try:
            with trace_span(
                    "artifact_build", category="phase1",
                    digest=artifact_digest(artifact)) as build_span:
                entry = self._load_warm(artifact)
                warm = entry is not None
                if entry is None:
                    entry = build_phase1_entry(
                        session.video, session.scoring,
                        session.resolved_unit_costs(), config)
                    with self._lock:
                        self.stats.builds += 1
                        self.stats.build_seconds += \
                            entry.cost_model.total_seconds()
                    self._store_warm(artifact, entry)
                if build_span is not None:
                    build_span.set(
                        warm=warm,
                        sim_seconds_total=entry.cost_model.total_seconds())
            self._admit(artifact, entry)
            build.entry = entry
        except BaseException as error:
            build.error = error
            raise
        finally:
            with self._lock:
                self._building.pop(artifact, None)
            build.done.set()
        return entry

    def _admit(self, artifact: ArtifactKey, entry: Phase1Entry) -> None:
        with self._lock:
            self._entries[artifact] = entry
            self._ledgers[artifact] = entry.cost_model
            self._entries.move_to_end(artifact)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def resident_keys(self) -> List[ArtifactKey]:
        with self._lock:
            return list(self._entries)

    def resident(self, artifact: ArtifactKey) -> bool:
        """Whether the artifact is resident right now (no LRU touch)."""
        with self._lock:
            return artifact in self._entries

    def phase1_ledgers(self) -> List[CostModel]:
        """One Phase-1 ledger per key ever built, in digest order.

        Drawn from the eviction-immune ledger archive — an LRU-evicted
        key's build still happened and must stay in the service-level
        merged ledger. Sorted by :func:`artifact_digest` rather than
        admission order: float addition is not associative, so a
        canonical merge order is what lets a service-level merged
        ledger equal a serial reference bit-for-bit regardless of
        scheduling races.
        """
        with self._lock:
            items = sorted(
                self._ledgers.items(),
                key=lambda kv: artifact_digest(kv[0]),
            )
        return [ledger for _, ledger in items]

    # ------------------------------------------------------------------
    # Warm-start tier (streaming artifact store)
    # ------------------------------------------------------------------
    def _warm_path(self, artifact: ArtifactKey):
        from pathlib import Path

        return Path(self.warm_dir) / artifact_digest(artifact)

    def _load_warm(self, artifact: ArtifactKey) -> Optional[Phase1Entry]:
        if self.warm_dir is None:
            return None
        from ..errors import CheckpointError
        from ..streaming.store import read_checkpoint

        path = self._warm_path(artifact)
        if not path.is_dir():
            return None
        try:
            state, _manifest = read_checkpoint(path)
            entry = state["entry"]
        except (CheckpointError, KeyError):
            # A torn or stale checkpoint is a miss, not a failure —
            # the build below overwrites it.
            return None
        if not isinstance(entry, Phase1Entry):
            return None
        with self._lock:
            self.stats.warm_hits += 1
        return entry

    def _store_warm(self, artifact: ArtifactKey, entry: Phase1Entry) -> None:
        if self.warm_dir is None:
            return
        from ..streaming.store import write_checkpoint

        write_checkpoint(
            self._warm_path(artifact),
            {"entry": entry},
            metadata={"artifact": repr(artifact)},
        )
        with self._lock:
            self.stats.warm_writes += 1

    # ------------------------------------------------------------------
    # Per-group caches
    # ------------------------------------------------------------------
    def score_cache(self, group: GroupKey) -> ScoreCache:
        """The shared exact-score cache for an artifact group."""
        with self._lock:
            cache = self._score_caches.get(group)
            if cache is None:
                cache = ScoreCache(max_entries=self.score_cache_entries)
                self._score_caches[group] = cache
            return cache

    def block_cache(self, artifact: ArtifactKey):
        """The shared streaming inference cache for an artifact.

        Keyed by the full artifact (group *and* phase1 key): cached
        mixtures embed the trained proxy's outputs, and only sessions
        under the same training configuration hold bit-identical
        proxies. A session that warm-retrains after drift must detach
        (it does — see ``IncrementalPhase1._warm_retrain``).
        """
        from ..streaming.phase1_incremental import BlockInferenceCache

        with self._lock:
            cache = self._block_caches.get(artifact)
            if cache is None:
                cache = BlockInferenceCache()
                self._block_caches[artifact] = cache
            return cache

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                **self.stats.as_dict(),
                "resident_entries": len(self._entries),
                "score_cache_groups": len(self._score_caches),
                "cached_scores": sum(
                    len(c) for c in self._score_caches.values()),
            }


__all__ = [
    "ArtifactKey",
    "ArtifactStats",
    "GroupKey",
    "SharedArtifacts",
    "ServiceError",
    "artifact_digest",
    "group_key",
]
