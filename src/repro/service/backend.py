"""Execution lanes: where a scheduled batch of plans actually runs.

Two lanes, chosen per service (``use_processes``):

* **Inline** — the scheduler's worker thread executes Phase 2 itself
  through a :class:`~repro.api.executor.QueryExecutor` bound to the
  service-scope score cache. Numpy releases the GIL in the hot
  kernels, so threads overlap; on a single usable CPU this lane also
  avoids every pickling cost.
* **Process** — Phase 2 is shipped to a persistent
  :class:`~repro.parallel.pool.PersistentPool` worker, mirroring the
  sweep protocol of :mod:`repro.parallel.runner`: the parent builds
  Phase 1 (single-flight, shared), a worker reconstructs the session
  once per artifact and runs only the cleaning loop. Two additions
  over the sweep protocol make it a *service* lane:

  1. **Session memoization.** Payloads carry a stable ``spec_id``; a
     worker unpickles the session spec the first time it sees the id
     and reuses it for every later batch, so steady-state traffic
     ships only plans.
  2. **Score-cache warm shipping.** Each batch carries the parent's
     current cache entries for the artifact group; the worker merges
     them into its local group cache before executing and returns its
     *new* revelations, which the parent folds back into the shared
     cache. Scores are deterministic per frame, so the merge is
     idempotent and reports stay bit-identical — only physical UDF
     work moves.

Determinism contract: identical to DESIGN.md §6 — plans are
deterministic-timing normalized upstream, so a report is a pure
function of (video, scoring, config, plan) and both lanes produce
byte-identical ``QueryReport.to_json()`` strings.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api.executor import ExecutionDetail, QueryExecutor
from ..oracle.cache import ScoreCache
from ..parallel.runner import _SessionSpec

# ----------------------------------------------------------------------
# Worker-side state and protocol. Module-level (pickled by reference)
# and rebuilt purely from payloads, exactly like the sweep runner.

#: spec_id -> (session, worker-local group ScoreCache).
_WORKER_SESSIONS: Dict[int, Tuple[object, ScoreCache]] = {}


@dataclass(frozen=True)
class BatchTask:
    """One scheduler batch, shipped to a pool worker."""

    spec_id: int
    #: Pickled ``_SessionSpec`` (entries included). The same ``bytes``
    #: object is reused for every batch on the artifact, so the parent
    #: pickles once; workers unpickle once thanks to the memo.
    spec_blob: bytes
    plans: Tuple[object, ...]
    #: Parent-side cache entries the worker may not have yet.
    cache_items: Tuple[Tuple[int, float], ...]
    #: Record per-plan spans in the worker and ship them back so the
    #: parent can re-parent them under its lane-dispatch span.
    traced: bool = False


@dataclass
class BatchResult:
    """Per-plan execution details plus the worker's new revelations."""

    details: List[ExecutionDetail]
    new_scores: Dict[int, float]
    #: Per-plan lists of ``Span.to_dict()`` dumps (``None`` untraced).
    #: Times are relative to each plan's worker-side root span.
    spans: Optional[List[List[dict]]] = None


def _service_worker_run(task: BatchTask) -> BatchResult:
    """Execute one batch in a pool worker (Phase 2 only)."""
    memo = _WORKER_SESSIONS.get(task.spec_id)
    if memo is None:
        spec: _SessionSpec = pickle.loads(task.spec_blob)
        memo = (spec.build_session(), ScoreCache())
        _WORKER_SESSIONS[task.spec_id] = memo
    session, cache = memo
    cache.merge(task.cache_items)
    before = set(cache.as_dict())
    executor = QueryExecutor(session, workers=1, score_cache=cache)
    spans: Optional[List[List[dict]]] = None
    if task.traced:
        # A throwaway worker-side tracer: one trace per plan, dumped to
        # plain dicts for the wire. Instrumentation sites below see an
        # active span exactly as they would in the inline lane; the
        # parent rebases the dumps under its own lane-dispatch span
        # (worker perf_counter epochs are unrelated to the parent's).
        from ..trace import Tracer

        tracer = Tracer(ring=len(task.plans) or 1)
        details = []
        spans = []
        for plan in task.plans:
            with tracer.trace("worker_execute") as trace:
                details.append(executor.execute_detailed(plan))
            dump = trace.to_dict()
            spans.append(list(dump["spans"]))
    else:
        details = [executor.execute_detailed(plan) for plan in task.plans]
    new_scores = {
        frame: score
        for frame, score in cache.as_dict().items()
        if frame not in before
    }
    return BatchResult(details=details, new_scores=new_scores, spans=spans)


# ----------------------------------------------------------------------
# Parent-side helpers.


def run_batch_inline(session, plans) -> List[ExecutionDetail]:
    """Execute a batch on the calling thread (the inline lane).

    The inline mirror of :func:`run_batch_in_pool`: same input shape
    (one session, a batch of plans), same output shape (per-plan
    :class:`~repro.api.executor.ExecutionDetail`), so the service's
    lane choice is a pure routing decision. A per-plan failure raises
    out of this function — the caller fans errors per task, exactly as
    it would for a pool-lane failure.
    """
    executor = QueryExecutor(session, workers=1)
    return [executor.execute_detailed(plan) for plan in plans]


def make_spec_blob(session, entries) -> bytes:
    """Pickle one worker-session spec (video + config + Phase 1)."""
    spec = _SessionSpec(
        video=session.video,
        scoring=session.scoring,
        config=session.config,
        unit_costs=session.resolved_unit_costs(),
        entries=list(entries),
    )
    return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)


def run_batch_in_pool(
    pool,
    *,
    spec_id: int,
    spec_blob: bytes,
    plans,
    shared_cache: Optional[ScoreCache],
    shipped: Optional[set] = None,
    traced: bool = False,
) -> BatchResult:
    """Ship a batch to the pool; fold revelations back into the cache.

    ``shipped`` is the caller-held set of frame ids already sent for
    this ``spec_id``: only newer parent-cache entries ship (per-batch
    cost tracks the *delta*, not the whole cache). Pool workers are
    routed arbitrarily, so a given worker may still miss entries a
    sibling received — harmless, it just re-reveals them physically;
    shipping is a cost optimization, never a correctness input.
    """
    items: Tuple[Tuple[int, float], ...] = ()
    if shared_cache is not None:
        snapshot = shared_cache.as_dict()
        if shipped is None:
            items = tuple(snapshot.items())
        else:
            items = tuple(
                (frame, score) for frame, score in snapshot.items()
                if frame not in shipped
            )
            shipped.update(snapshot)
    task = BatchTask(
        spec_id=spec_id,
        spec_blob=spec_blob,
        plans=tuple(plans),
        cache_items=items,
        traced=traced,
    )
    result: BatchResult = pool.submit(_service_worker_run, task).result()
    if shared_cache is not None and result.new_scores:
        shared_cache.merge(result.new_scores.items())
        if shipped is not None:
            # The executing worker holds its own revelations already;
            # siblings will re-reveal on demand (see above).
            shipped.update(result.new_scores)
    return result
