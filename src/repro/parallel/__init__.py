"""Parallel execution subsystem (DESIGN.md §6).

Two layers:

* :mod:`repro.parallel.pool` — worker-count resolution (the
  ``REPRO_WORKERS`` environment variable) and ordered thread mapping
  for in-process chunk parallelism (proxy inference).
* :mod:`repro.parallel.runner` — :class:`ParallelRunner`, the
  process-pool sweep executor: each (session, plan) grid point runs
  Phase 2 in a worker against a Phase 1 result that was built once in
  the parent, serialized, and shared, so workers never retrain the
  CMDN. Reports are bit-identical to the serial path (plans are forced
  to deterministic timing), which ``tests/test_parallel_equivalence.py``
  certifies.

The runner is imported lazily (PEP 562) so that low-level modules —
:mod:`repro.core.phase1` uses :func:`resolve_workers` — can import
this package without pulling in :mod:`repro.api` and creating a cycle.
"""

from __future__ import annotations

from .pool import WORKERS_ENV, resolve_workers, thread_map

_RUNNER_EXPORTS = (
    "ParallelRunner",
    "SweepOutcome",
    "run_plans",
)

__all__ = ["WORKERS_ENV", "resolve_workers", "thread_map",
           *_RUNNER_EXPORTS]


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
